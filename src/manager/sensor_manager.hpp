// SensorManager — the per-host agent (paper §2.2): "The sensor manager
// agent is responsible for starting and stopping the sensors, and keeping
// the sensor directory up to date. Sensors to be run are specified by a
// configuration file, which may be local or on a remote HTTP server.
// Sensors can be configured to run always, when requested by a sensor
// manager GUI, or when requested by the port monitor agent. There is
// typically one sensor manager per host."
//
// The manager is driven by Tick(): it polls due sensors, forwards their
// events to the host's event gateway, applies port-monitor triggering, and
// periodically re-fetches its configuration ("Every few minutes the sensor
// managers check for updates to the configuration file, and activate new
// sensors if necessary, publishing them in the sensor directory", §5.0).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "directory/replication.hpp"
#include "directory/schema.hpp"
#include "gateway/gateway.hpp"
#include "manager/port_monitor.hpp"
#include "resilience/supervisor.hpp"
#include "sensors/factory.hpp"

namespace jamm::manager {

enum class RunMode { kAlways, kOnRequest, kOnPort };

Result<RunMode> ParseRunMode(std::string_view text);

/// Manager-emitted ULM events (ISSUE 4). Lowercase so they cannot match
/// sensor-event globs like "PROC_*".
namespace event {
/// Config re-fetch failed; the manager keeps running on last-good config.
inline constexpr char kConfigStale[] = "mgr.config.stale";
/// A crash-looping sensor was quarantined and de-registered. Shares the
/// process monitor's event name so one consumer subscription sees every
/// quarantine in the system.
inline constexpr char kQuarantined[] = "proc.quarantined";
}  // namespace event

class SensorManager {
 public:
  struct Options {
    const Clock* clock = nullptr;
    sysmon::SimHost* host = nullptr;                 // machine being managed
    gateway::EventGateway* gateway = nullptr;        // events go here
    directory::DirectoryPool* directory = nullptr;   // optional publication
    directory::Dn directory_suffix;                  // e.g. ou=sensors,o=jamm
    std::string gateway_address;                     // published per sensor
    /// SNMP devices reachable from this manager (for kind=snmp sensors).
    std::map<std::string, const sysmon::SnmpAgent*> devices;
    /// How often Tick() re-fetches configuration; 0 disables.
    Duration config_refresh = 2 * kMinute;
    /// How long a port must stay quiet before port-triggered sensors stop.
    Duration port_idle_timeout = 5 * kSecond;
    /// Mint a TRACE.ID and stamp HOP.SENSOR/HOP.MANAGER on every event
    /// forwarded to the gateway, so the event's path through the system
    /// is reconstructable downstream (telemetry/trace.hpp).
    bool trace_events = true;
    /// Liveness (ISSUE 4): directory entries this manager publishes carry
    /// a lease of this TTL; Tick() renews them in a heartbeat batch every
    /// `heartbeat_interval`. A manager that stops Ticking (crashed host)
    /// stops renewing, and the directory's reaper tombstones its entries.
    /// lease_ttl = 0 disables leases (entries are immortal, pre-ISSUE-4
    /// behaviour).
    Duration lease_ttl = 30 * kSecond;
    Duration heartbeat_interval = 10 * kSecond;
    /// Supervision for sensors whose Poll() returns errors: backoff
    /// restarts, then crash-loop quarantine (de-registered from the
    /// directory, `proc.quarantined` event published).
    resilience::SupervisorPolicy sensor_restart;
    /// Manager-side authorization for gateway-relayed sensor control
    /// (ISSUE 10). Called with the sensor name, start/stop, and the
    /// requesting principal BEFORE the manager acts; null = allow all
    /// (the gateway's own access checker is then the only gate). Wire
    /// security::Authorizer::ManagerControlChecker here for Akenti-backed
    /// policy.
    std::function<Status(const std::string& sensor, bool start,
                         const std::string& principal)>
        control_access;
  };

  explicit SensorManager(Options options);

  // ------------------------------------------------------- configuration

  /// Replace the sensor set with the blocks in `config`: new [sensor]
  /// names are created, vanished names stopped and unpublished, changed
  /// blocks recreated.
  Status ApplyConfig(const Config& config);

  /// Where RefreshConfig() pulls text from — a local file reader or the
  /// rpc module's HTTP-sim fetch. The manager stores the last text and
  /// skips re-applying when unchanged.
  void SetConfigFetcher(std::function<Result<std::string>()> fetcher);
  Status RefreshConfig();

  // ------------------------------------------------------------ runtime

  /// One scheduler step: refresh config if due, apply port triggering,
  /// poll due sensors, forward events to the gateway. Call this every
  /// simulation step / loop iteration.
  void Tick();

  /// On-request control (the paper's sensor manager GUI, or a gateway
  /// relaying a consumer's start request).
  Status StartSensor(const std::string& name);
  Status StopSensor(const std::string& name);

  // ---------------------------------------------------------- inspection

  sensors::Sensor* FindSensor(const std::string& name);
  std::vector<std::string> SensorNames() const;
  std::vector<std::string> RunningSensors() const;
  PortMonitor& port_monitor() { return port_monitor_; }

  /// True if the named sensor has been quarantined by its supervisor.
  bool IsQuarantined(const std::string& name) const;

  struct Stats {
    std::uint64_t polls = 0;
    std::uint64_t events_forwarded = 0;
    std::uint64_t config_refreshes = 0;
    std::uint64_t port_triggers = 0;   // sensor starts caused by ports
    std::uint64_t port_stops = 0;      // sensor stops caused by idle ports
    std::uint64_t poll_errors = 0;     // non-OK sensor Polls
    std::uint64_t supervised_restarts = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t lease_renewals = 0;  // entries renewed via heartbeats
    std::uint64_t config_stale = 0;    // failed refreshes, last-good kept
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Managed {
    std::unique_ptr<sensors::Sensor> sensor;
    RunMode mode = RunMode::kAlways;
    std::vector<std::uint16_t> ports;
    TimePoint next_poll = 0;
    std::string config_fingerprint;  // to detect changed blocks
    // Supervision state (created lazily on the first poll failure).
    std::optional<resilience::Supervisor> supervisor;
    TimePoint restart_at = 0;
    bool restart_pending = false;
    bool quarantined = false;
  };

  void PublishSensor(const Managed& managed);
  void UnpublishSensor(const std::string& name);
  Status StartManaged(Managed& managed);
  Status StopManaged(Managed& managed);
  void HandlePollFailure(const std::string& name, Managed& managed,
                         const Status& status);
  void HeartbeatLeases(TimePoint now);
  void PublishManagerEvent(std::string_view event_name, std::string_view lvl,
                           std::string_view detail);

  Options options_;
  PortMonitor port_monitor_;
  std::map<std::string, Managed> sensors_;
  std::function<Result<std::string>()> config_fetcher_;
  std::string last_config_text_;
  TimePoint next_config_refresh_ = 0;
  TimePoint next_heartbeat_ = 0;
  /// Reusable flat conversion buffer for the poll→publish loop (ISSUE 7):
  /// each polled record is converted once, trace-stamped in place, and
  /// handed to the gateway by reference — zero steady-state allocation.
  ulm::FlatRecord publish_scratch_;
  Stats stats_;
};

}  // namespace jamm::manager
