#include "manager/sensor_manager.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace jamm::manager {

namespace {

// Process-wide self-telemetry for the manager's scheduling hot path.
struct ManagerTelemetry {
  telemetry::Counter& polls;
  telemetry::Counter& events_forwarded;
  telemetry::Counter& sensor_starts;
  telemetry::Counter& sensor_stops;
  telemetry::Counter& port_triggers;
  telemetry::Counter& port_stops;
  telemetry::Counter& config_refreshes;
  telemetry::Counter& config_stale;
  telemetry::Counter& poll_errors;
  telemetry::Counter& supervised_restarts;
  telemetry::Counter& quarantines;
  telemetry::Counter& lease_renewals;
  telemetry::Histogram& tick_us;
};

ManagerTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static ManagerTelemetry t{m.counter("manager.polls"),
                            m.counter("manager.events_forwarded"),
                            m.counter("manager.sensor_starts"),
                            m.counter("manager.sensor_stops"),
                            m.counter("manager.port_triggers"),
                            m.counter("manager.port_stops"),
                            m.counter("manager.config_refreshes"),
                            m.counter("manager.config_stale"),
                            m.counter("manager.poll_errors"),
                            m.counter("manager.supervised_restarts"),
                            m.counter("manager.quarantines"),
                            m.counter("manager.lease_renewals"),
                            m.histogram("manager.tick_us")};
  return t;
}

}  // namespace

Result<RunMode> ParseRunMode(std::string_view text) {
  if (text == "always" || text.empty()) return RunMode::kAlways;
  if (text == "on-request") return RunMode::kOnRequest;
  if (text == "on-port") return RunMode::kOnPort;
  return Status::InvalidArgument("unknown run mode '" + std::string(text) +
                                 "'");
}

SensorManager::SensorManager(Options options)
    : options_(std::move(options)),
      port_monitor_(*options_.clock, *options_.host,
                    options_.port_idle_timeout) {
  // §7.1: consumers start sensors "by a request to a gateway, which then
  // contacts a sensor manager" — wire that path up. The manager must
  // outlive the gateway's use of this hook (they share the host's
  // lifetime in every deployment here).
  if (options_.gateway) {
    options_.gateway->SetSensorControl(
        [this](const std::string& name, bool start,
               const std::string& principal) {
          if (options_.control_access) {
            JAMM_RETURN_IF_ERROR(
                options_.control_access(name, start, principal));
          }
          return start ? StartSensor(name) : StopSensor(name);
        });
  }
  // Sharded directory (ISSUE 9): cache chased referral routes no longer
  // than a lease — a shard layout change is visible to the pool at worst
  // one TTL after cutover, the same staleness bound leases already give.
  if (options_.directory && options_.clock && options_.lease_ttl > 0) {
    options_.directory->SetReferralCacheTtl(options_.lease_ttl,
                                            *options_.clock);
  }
}

Status SensorManager::ApplyConfig(const Config& config) {
  sensors::SensorContext context;
  context.clock = options_.clock;
  context.host = options_.host;
  context.devices = options_.devices;

  std::map<std::string, const ConfigSection*> wanted;
  for (const ConfigSection* section : config.SectionsNamed("sensor")) {
    const std::string name = section->GetString("name");
    if (name.empty()) {
      return Status::InvalidArgument("sensor block missing 'name'");
    }
    wanted[name] = section;
  }

  // Remove sensors no longer configured.
  for (auto it = sensors_.begin(); it != sensors_.end();) {
    if (!wanted.count(it->first)) {
      (void)StopManaged(it->second);
      UnpublishSensor(it->first);
      it = sensors_.erase(it);
    } else {
      ++it;
    }
  }

  // Add new / recreate changed sensors.
  for (const auto& [name, section] : wanted) {
    const std::string fingerprint = section->ToString();
    auto existing = sensors_.find(name);
    if (existing != sensors_.end() &&
        existing->second.config_fingerprint == fingerprint) {
      continue;  // unchanged
    }
    auto mode = ParseRunMode(section->GetString("mode", "always"));
    if (!mode.ok()) return mode.status();
    auto sensor = sensors::CreateSensor(*section, context);
    if (!sensor.ok()) return sensor.status();

    if (existing != sensors_.end()) {
      (void)StopManaged(existing->second);
      UnpublishSensor(name);
      sensors_.erase(existing);
    }
    Managed managed;
    managed.sensor = std::move(*sensor);
    managed.mode = *mode;
    managed.config_fingerprint = fingerprint;
    for (const auto& port_text : section->GetList("ports")) {
      auto port = ParseInt(port_text);
      if (!port.ok() || *port <= 0 || *port > 65535) {
        return Status::InvalidArgument("sensor '" + name + "': bad port '" +
                                       port_text + "'");
      }
      managed.ports.push_back(static_cast<std::uint16_t>(*port));
      port_monitor_.AddPort(static_cast<std::uint16_t>(*port));
    }
    if (managed.mode == RunMode::kOnPort && managed.ports.empty()) {
      return Status::InvalidArgument("sensor '" + name +
                                     "': mode on-port needs ports");
    }
    auto [it, inserted] = sensors_.emplace(name, std::move(managed));
    (void)inserted;
    if (it->second.mode == RunMode::kAlways) {
      JAMM_RETURN_IF_ERROR(StartManaged(it->second));
    }
  }
  return Status::Ok();
}

void SensorManager::SetConfigFetcher(
    std::function<Result<std::string>()> fetcher) {
  config_fetcher_ = std::move(fetcher);
}

Status SensorManager::RefreshConfig() {
  if (!config_fetcher_) return Status::Ok();
  auto text = config_fetcher_();
  if (!text.ok()) return text.status();
  ++stats_.config_refreshes;
  Instruments().config_refreshes.Increment();
  if (*text == last_config_text_) return Status::Ok();
  auto config = Config::ParseString(*text);
  if (!config.ok()) return config.status();
  JAMM_RETURN_IF_ERROR(ApplyConfig(*config));
  last_config_text_ = std::move(*text);
  return Status::Ok();
}

Status SensorManager::StartManaged(Managed& managed) {
  if (managed.sensor->running()) return Status::Ok();
  JAMM_RETURN_IF_ERROR(managed.sensor->Start());
  Instruments().sensor_starts.Increment();
  managed.next_poll = options_.clock->Now();
  PublishSensor(managed);
  return Status::Ok();
}

Status SensorManager::StopManaged(Managed& managed) {
  if (!managed.sensor->running()) return Status::Ok();
  JAMM_RETURN_IF_ERROR(managed.sensor->Stop());
  Instruments().sensor_stops.Increment();
  // Keep the directory entry but mark it stopped, so the Sensor Data GUI
  // still lists the sensor.
  if (options_.directory) {
    auto entry = options_.directory->Lookup(directory::schema::SensorDn(
        options_.directory_suffix, options_.host->host(),
        managed.sensor->name()));
    if (entry.ok()) {
      entry->Set(directory::schema::kAttrStatus, "stopped");
      (void)options_.directory->Upsert(*entry);
    }
  }
  return Status::Ok();
}

void SensorManager::PublishSensor(const Managed& managed) {
  if (!options_.directory) return;
  const std::string& host = options_.host->host();
  const TimePoint now = options_.clock->Now();
  // The host entry is the parent of every leased child and carries no
  // lease itself: the reaper reprieves non-leaf entries anyway, and an
  // immortal parent keeps re-registration cheap.
  (void)options_.directory->Upsert(directory::schema::MakeHostEntry(
      options_.directory_suffix, host));
  if (!options_.gateway_address.empty()) {
    auto gw_entry = directory::schema::MakeGatewayEntry(
        options_.directory_suffix, host, options_.gateway_address);
    if (options_.lease_ttl > 0) {
      directory::schema::StampLease(gw_entry, now + options_.lease_ttl);
    }
    (void)options_.directory->Upsert(gw_entry);
  }
  auto entry = directory::schema::MakeSensorEntry(
      options_.directory_suffix, host, managed.sensor->name(),
      managed.sensor->type(), options_.gateway_address,
      managed.sensor->interval() / kMillisecond, now);
  if (options_.lease_ttl > 0) {
    directory::schema::StampLease(entry, now + options_.lease_ttl);
  }
  (void)options_.directory->Upsert(entry);
}

void SensorManager::UnpublishSensor(const std::string& name) {
  if (!options_.directory) return;
  (void)options_.directory->Delete(directory::schema::SensorDn(
      options_.directory_suffix, options_.host->host(), name));
}

void SensorManager::Tick() {
  auto& tm = Instruments();
  telemetry::ScopedTimer tick_timer(&tm.tick_us);
  const TimePoint now = options_.clock->Now();

  // Periodic configuration refresh. A failed fetch is survivable: keep
  // running on the last-good configuration, but say so on the event
  // stream so operators notice a manager drifting stale (ISSUE 4).
  if (options_.config_refresh > 0 && config_fetcher_ &&
      now >= next_config_refresh_) {
    next_config_refresh_ = now + options_.config_refresh;
    Status s = RefreshConfig();
    if (!s.ok()) {
      JAMM_LOG(kWarn, "sensor-manager")
          << options_.host->host() << ": config refresh failed: "
          << s.ToString();
      ++stats_.config_stale;
      tm.config_stale.Increment();
      PublishManagerEvent(event::kConfigStale, ulm::level::kWarning,
                          s.ToString());
    }
  }

  // Supervised restarts whose backoff delay has elapsed.
  for (auto& [name, managed] : sensors_) {
    if (managed.restart_pending && !managed.quarantined &&
        now >= managed.restart_at) {
      managed.restart_pending = false;
      if (StartManaged(managed).ok()) {
        ++stats_.supervised_restarts;
        tm.supervised_restarts.Increment();
      }
    }
  }

  // Port-monitor triggering.
  for (auto& [name, managed] : sensors_) {
    if (managed.mode != RunMode::kOnPort || managed.quarantined) continue;
    const bool want_running = port_monitor_.AnyActive(managed.ports);
    if (want_running && !managed.sensor->running()) {
      if (StartManaged(managed).ok()) {
        ++stats_.port_triggers;
        tm.port_triggers.Increment();
      }
    } else if (!want_running && managed.sensor->running()) {
      if (StopManaged(managed).ok()) {
        ++stats_.port_stops;
        tm.port_stops.Increment();
      }
    }
  }

  // Poll due sensors; forward everything to the gateway. The manager is
  // where an event enters the pipeline, so this is where its trace is
  // minted: HOP.SENSOR carries the sensor's own emission timestamp,
  // HOP.MANAGER the forwarding time; downstream layers append their hops.
  std::vector<ulm::Record> events;
  for (auto& [name, managed] : sensors_) {
    if (!managed.sensor->running() || now < managed.next_poll) continue;
    managed.next_poll = now + managed.sensor->interval();
    events.clear();
    Status polled = managed.sensor->Poll(events);
    ++stats_.polls;
    tm.polls.Increment();
    // Events gathered before a failure are still forwarded. Each record
    // is converted into the reusable flat scratch once; tracing stamps it
    // in place and the gateway fans the same buffer out by reference.
    for (auto& rec : events) {
      publish_scratch_.AssignRecord(rec);
      if (options_.trace_events) {
        telemetry::EnsureTrace(publish_scratch_);
        telemetry::StampHop(publish_scratch_, "sensor", rec.timestamp());
        telemetry::StampHop(publish_scratch_, "manager", now);
      }
      if (options_.gateway) options_.gateway->PublishFlat(publish_scratch_);
      ++stats_.events_forwarded;
      tm.events_forwarded.Increment();
    }
    if (!polled.ok()) {
      HandlePollFailure(name, managed, polled);
    } else if (managed.supervisor) {
      managed.supervisor->OnSuccess();
    }
  }

  // Heartbeat: renew this manager's directory leases in one batch.
  if (options_.directory && options_.lease_ttl > 0 &&
      options_.heartbeat_interval > 0 && now >= next_heartbeat_) {
    next_heartbeat_ = now + options_.heartbeat_interval;
    HeartbeatLeases(now);
  }
}

void SensorManager::HandlePollFailure(const std::string& name,
                                      Managed& managed,
                                      const Status& status) {
  auto& tm = Instruments();
  ++stats_.poll_errors;
  tm.poll_errors.Increment();
  if (!managed.supervisor) {
    managed.supervisor.emplace(options_.sensor_restart, *options_.clock);
  }
  auto decision = managed.supervisor->OnFailure();
  if (decision.action == resilience::Supervisor::Action::kQuarantine) {
    managed.quarantined = true;
    managed.restart_pending = false;
    (void)StopManaged(managed);
    // De-register: a quarantined sensor must not look discoverable.
    UnpublishSensor(name);
    ++stats_.quarantines;
    tm.quarantines.Increment();
    JAMM_LOG(kWarn, "sensor-manager")
        << options_.host->host() << ": sensor '" << name
        << "' quarantined after repeated poll failures: "
        << status.ToString();
    PublishManagerEvent(event::kQuarantined, ulm::level::kAlert,
                        "sensor " + name + ": " + status.ToString());
    return;
  }
  // Restart the sensor: stop now, start when the backoff allows. The first
  // failure in a calm period restarts within this very Tick.
  (void)StopManaged(managed);
  if (decision.restart_at <= options_.clock->Now()) {
    if (StartManaged(managed).ok()) {
      ++stats_.supervised_restarts;
      tm.supervised_restarts.Increment();
    }
  } else {
    managed.restart_pending = true;
    managed.restart_at = decision.restart_at;
  }
}

void SensorManager::HeartbeatLeases(TimePoint now) {
  std::vector<directory::Dn> batch;
  const std::string& host = options_.host->host();
  for (const auto& [name, managed] : sensors_) {
    if (!managed.sensor->running() || managed.quarantined) continue;
    batch.push_back(directory::schema::SensorDn(options_.directory_suffix,
                                                host, name));
  }
  if (!options_.gateway_address.empty() && !batch.empty()) {
    batch.push_back(
        directory::schema::GatewayDn(options_.directory_suffix, host));
  }
  if (batch.empty()) return;
  const TimePoint expiry = now + options_.lease_ttl;
  std::vector<directory::Dn> missing;
  auto renewed = options_.directory->RenewLeases(batch, expiry, "", &missing);
  if (!renewed.ok()) return;  // pool down; retried next heartbeat
  stats_.lease_renewals += *renewed;
  Instruments().lease_renewals.Add(static_cast<std::int64_t>(*renewed));
  // Entries the directory lost (reaped during a partition, failed-over
  // replica missing our writes) are simply re-published.
  for (const auto& dn : missing) {
    const std::string dn_text = dn.ToString();
    for (const auto& [name, managed] : sensors_) {
      if (directory::schema::SensorDn(options_.directory_suffix, host, name)
              .ToString() == dn_text) {
        PublishSensor(managed);
        break;
      }
    }
    if (!options_.gateway_address.empty() &&
        directory::schema::GatewayDn(options_.directory_suffix, host)
                .ToString() == dn_text &&
        !sensors_.empty()) {
      PublishSensor(sensors_.begin()->second);  // re-publishes gateway too
    }
  }
}

void SensorManager::PublishManagerEvent(std::string_view event_name,
                                        std::string_view lvl,
                                        std::string_view detail) {
  if (!options_.gateway) return;
  ulm::Record rec(options_.clock->Now(), options_.host->host(),
                  "sensor-manager", std::string(lvl),
                  std::string(event_name));
  rec.SetField("DETAIL", detail);
  options_.gateway->Publish(rec);
}

Status SensorManager::StartSensor(const std::string& name) {
  auto it = sensors_.find(name);
  if (it == sensors_.end()) return Status::NotFound("no sensor " + name);
  // Manual start is the operator override that lifts quarantine.
  it->second.quarantined = false;
  it->second.restart_pending = false;
  if (it->second.supervisor) it->second.supervisor->Reset();
  return StartManaged(it->second);
}

Status SensorManager::StopSensor(const std::string& name) {
  auto it = sensors_.find(name);
  if (it == sensors_.end()) return Status::NotFound("no sensor " + name);
  return StopManaged(it->second);
}

bool SensorManager::IsQuarantined(const std::string& name) const {
  auto it = sensors_.find(name);
  return it != sensors_.end() && it->second.quarantined;
}

sensors::Sensor* SensorManager::FindSensor(const std::string& name) {
  auto it = sensors_.find(name);
  return it == sensors_.end() ? nullptr : it->second.sensor.get();
}

std::vector<std::string> SensorManager::SensorNames() const {
  std::vector<std::string> out;
  out.reserve(sensors_.size());
  for (const auto& [name, managed] : sensors_) out.push_back(name);
  return out;
}

std::vector<std::string> SensorManager::RunningSensors() const {
  std::vector<std::string> out;
  for (const auto& [name, managed] : sensors_) {
    if (managed.sensor->running()) out.push_back(name);
  }
  return out;
}

}  // namespace jamm::manager
