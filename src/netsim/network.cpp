#include "netsim/network.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace jamm::netsim {

Network::Network(Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

NodeId Network::AddNode(const std::string& name) {
  Node node;
  node.name = name;
  node.snmp = std::make_unique<sysmon::SnmpAgent>(name);
  nodes_.push_back(std::move(node));
  routes_dirty_ = true;
  return nodes_.size() - 1;
}

void Network::Connect(NodeId a, NodeId b, const LinkConfig& config) {
  assert(a < nodes_.size() && b < nodes_.size());
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    Link link;
    link.from = from;
    link.to = to;
    link.config = config;
    link.busy_until = 0;
    link.ifindex_at_from =
        static_cast<std::uint32_t>(nodes_[from].links.size() + 1);
    links_.push_back(link);
    nodes_[from].links.push_back(links_.size() - 1);
  }
  routes_dirty_ = true;
}

const std::string& Network::NodeName(NodeId node) const {
  return nodes_[node].name;
}

Result<NodeId> Network::FindNode(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return Status::NotFound("no node named " + name);
}

sysmon::SnmpAgent& Network::Snmp(NodeId node) { return *nodes_[node].snmp; }

void Network::SetReceiverModel(NodeId node, const ReceiverModel& model) {
  auto state = std::make_unique<ReceiverState>();
  state->model = model;
  state->window_start = sim_.Now();
  nodes_[node].receiver = std::move(state);
}

double Network::ReceiverCpuPct(NodeId node) const {
  const auto& receiver = nodes_[node].receiver;
  if (!receiver) return 0;
  // Busy fraction: blend the completed 1 s window with the in-progress one
  // for a smooth gauge (one CPU = 1e6 µs of service per second).
  const TimePoint now = sim_.Now();
  const Duration elapsed = now - receiver->window_start;
  if (elapsed <= 0) return receiver->last_window_pct;
  const double in_progress =
      100.0 * receiver->used_us_window / static_cast<double>(elapsed);
  if (elapsed >= kSecond) return std::min(100.0, in_progress);
  const double w = ToSeconds(elapsed);
  return std::min(100.0,
                  receiver->last_window_pct * (1 - w) + in_progress * w);
}

void Network::ComputeRoutes() {
  // BFS from every node (topologies are tiny: a dozen nodes).
  for (NodeId src = 0; src < nodes_.size(); ++src) {
    auto& table = nodes_[src].next_hop;
    table.clear();
    std::deque<NodeId> frontier{src};
    std::vector<std::size_t> via(nodes_.size(), SIZE_MAX);
    std::vector<bool> seen(nodes_.size(), false);
    seen[src] = true;
    while (!frontier.empty()) {
      NodeId at = frontier.front();
      frontier.pop_front();
      for (std::size_t link_idx : nodes_[at].links) {
        const Link& link = links_[link_idx];
        if (seen[link.to]) continue;
        seen[link.to] = true;
        via[link.to] = at == src ? link_idx : via[at];
        frontier.push_back(link.to);
      }
    }
    for (NodeId dst = 0; dst < nodes_.size(); ++dst) {
      if (dst != src && via[dst] != SIZE_MAX) table[dst] = via[dst];
    }
  }
  routes_dirty_ = false;
}

void Network::SendPacket(const Packet& packet) {
  if (routes_dirty_) ComputeRoutes();
  ++stats_.packets_sent;
  ForwardFrom(packet.src, packet);
}

void Network::ForwardFrom(NodeId node, const Packet& packet) {
  if (fault_hook_ && fault_hook_(node, packet)) {
    Drop(DropInfo::Cause::kInjected, node, packet);
    return;
  }
  if (node == packet.dst) {
    Deliver(node, packet);
    return;
  }
  auto it = nodes_[node].next_hop.find(packet.dst);
  if (it == nodes_[node].next_hop.end()) {
    Drop(DropInfo::Cause::kQueueFull, node, packet);  // unroutable
    return;
  }
  Link& link = links_[it->second];

  // Drop-tail queue: packets whose serialization hasn't finished count
  // against the queue depth.
  if (link.in_queue >= link.config.queue_packets) {
    Drop(DropInfo::Cause::kQueueFull, node, packet);
    return;
  }
  if (link.config.random_loss > 0 && rng_.Chance(link.config.random_loss)) {
    // Bit errors show up in the device's SNMP error counters (§6 monitored
    // "SNMP errors on the end switches and routers").
    nodes_[node].snmp->AddErrors(link.ifindex_at_from, 1, 1);
    Drop(DropInfo::Cause::kRandomLoss, node, packet);
    return;
  }

  const TimePoint now = sim_.Now();
  const Duration tx_time = static_cast<Duration>(
      static_cast<double>(packet.size) * 8.0 / link.config.bandwidth_bps *
      kSecond);
  const TimePoint start = std::max(now, link.busy_until);
  const TimePoint departs = start + std::max<Duration>(tx_time, 1);
  link.busy_until = departs;
  link.in_queue++;

  nodes_[node].snmp->AddTraffic(link.ifindex_at_from, 0,
                                static_cast<std::int64_t>(packet.size));

  Duration extra = 0;
  if (link.config.jitter > 0) {
    extra = rng_.Uniform(0, link.config.jitter);
  }
  const TimePoint arrives = departs + link.config.delay + extra;
  NodeId next = link.to;
  Link* link_ptr = &link;
  sim_.ScheduleAt(departs, [link_ptr] { link_ptr->in_queue--; });
  sim_.ScheduleAt(arrives, [this, next, packet, link_ptr] {
    nodes_[next].snmp->AddTraffic(
        // Inbound counter on the receiving side of the link: use the
        // reverse direction's ifindex if present, else 1.
        1, static_cast<std::int64_t>(packet.size), 0);
    (void)link_ptr;
    ForwardFrom(next, packet);
  });
}

void Network::Deliver(NodeId node, const Packet& packet) {
  ReceiverState* receiver = nodes_[node].receiver.get();
  if (!receiver || packet.is_ack) {
    // No host model (or an ACK, which bypasses the data path): hand the
    // packet to the endpoint immediately.
    HandOff(node, packet);
    return;
  }

  // NIC descriptor ring: overflow is dropped before any ACK is generated.
  if (receiver->in_ring >= receiver->model.ring_packets) {
    Drop(DropInfo::Cause::kReceiverOverload, node, packet);
    return;
  }
  ++receiver->in_ring;

  const TimePoint now = sim_.Now();
  // Roll the CPU usage window.
  if (now - receiver->window_start >= kSecond) {
    receiver->last_window_pct =
        std::min(100.0, 100.0 * receiver->used_us_window /
                            static_cast<double>(now - receiver->window_start));
    receiver->used_us_window = 0;
    receiver->window_start = now;
  }

  // Per-packet service cost grows with the number of OTHER hot sockets
  // (see the model rationale in the header). Hotness is sticky for
  // hot_dwell after the window shrinks.
  std::size_t other_hot = 0;
  for (auto& [flow, socket] : receiver->sockets) {
    if (socket.probe() > receiver->model.hot_window_bytes) {
      socket.last_hot = now;
    }
    if (flow != packet.flow && socket.last_hot >= 0 &&
        now - socket.last_hot <= receiver->model.hot_dwell) {
      ++other_hot;
    }
  }
  const double cost =
      receiver->model.base_cost_us +
      receiver->model.per_hot_socket_cost_us * static_cast<double>(other_hot);
  receiver->used_us_window += cost;

  // Single-server CPU: serve after whatever is already queued.
  const TimePoint start = std::max(now, receiver->busy_until);
  const TimePoint done = start + std::max<Duration>(
                                     static_cast<Duration>(cost), 1);
  receiver->busy_until = done;
  sim_.ScheduleAt(done, [this, node, packet] {
    ReceiverState* r = nodes_[node].receiver.get();
    if (r && r->in_ring > 0) --r->in_ring;
    HandOff(node, packet);
  });
}

void Network::HandOff(NodeId node, const Packet& packet) {
  ++stats_.packets_delivered;
  auto it = handlers_.find({node, packet.flow});
  if (it != handlers_.end()) it->second(packet);
}

void Network::Drop(DropInfo::Cause cause, NodeId at, const Packet& packet) {
  switch (cause) {
    case DropInfo::Cause::kQueueFull: ++stats_.drops_queue; break;
    case DropInfo::Cause::kRandomLoss: ++stats_.drops_loss; break;
    case DropInfo::Cause::kReceiverOverload: ++stats_.drops_receiver; break;
    case DropInfo::Cause::kInjected: ++stats_.drops_injected; break;
  }
  if (drop_tap_) drop_tap_({cause, at, packet});
}

void Network::RegisterSocketWindow(NodeId node, std::uint64_t flow,
                                   WindowProbe probe) {
  if (nodes_[node].receiver) {
    nodes_[node].receiver->sockets[flow].probe = std::move(probe);
  }
}

void Network::UnregisterSocketWindow(NodeId node, std::uint64_t flow) {
  if (nodes_[node].receiver) {
    nodes_[node].receiver->sockets.erase(flow);
  }
}

void Network::SetDeliverHandler(NodeId node, std::uint64_t flow,
                                DeliverHandler handler) {
  handlers_[{node, flow}] = std::move(handler);
}

void Network::ClearDeliverHandler(NodeId node, std::uint64_t flow) {
  handlers_.erase({node, flow});
}

}  // namespace jamm::netsim
