#include "netsim/tcp.hpp"

#include <algorithm>

#include "common/id.hpp"

namespace jamm::netsim {

TcpFlow::TcpFlow(Network& net, NodeId src, NodeId dst, TcpConfig config)
    : net_(net),
      src_(src),
      dst_(dst),
      config_(config),
      flow_id_(NextId()),
      rto_(config.min_rto) {
  offered_ = config_.total_bytes;
  cwnd_ = config_.init_cwnd_pkts * static_cast<double>(config_.mss);
  ssthresh_ = config_.max_cwnd_pkts * static_cast<double>(config_.mss);
  net_.SetDeliverHandler(src_, flow_id_,
                         [this](const Packet& p) { OnSenderPacket(p); });
  net_.SetDeliverHandler(dst_, flow_id_,
                         [this](const Packet& p) { OnReceiverPacket(p); });
  net_.RegisterSocketWindow(dst_, flow_id_, [this] { return cwnd_; });
}

TcpFlow::~TcpFlow() {
  net_.ClearDeliverHandler(src_, flow_id_);
  net_.ClearDeliverHandler(dst_, flow_id_);
  net_.UnregisterSocketWindow(dst_, flow_id_);
  // Invalidate any in-flight RTO timer.
  ++rto_generation_;
}

void TcpFlow::Start() {
  if (started_) return;
  started_ = true;
  stats_.start_time = net_.sim().Now();
  TrySend();
}

void TcpFlow::OfferBytes(std::uint64_t n) {
  offered_ += n;
  if (started_) TrySend();
}

bool TcpFlow::complete() const {
  return config_.total_bytes > 0 && stats_.bytes_acked >= config_.total_bytes;
}

double TcpFlow::ThroughputBps() const {
  const TimePoint end =
      complete() ? stats_.complete_time : net_.sim().Now();
  const Duration elapsed = end - stats_.start_time;
  if (elapsed <= 0) return 0;
  return static_cast<double>(stats_.bytes_acked) * 8.0 / ToSeconds(elapsed);
}

void TcpFlow::SetCwnd(double bytes) {
  const double max_bytes =
      config_.max_cwnd_pkts * static_cast<double>(config_.mss);
  const double min_bytes = static_cast<double>(config_.mss);
  bytes = std::clamp(bytes, min_bytes, max_bytes);
  if (bytes != cwnd_) {
    cwnd_ = bytes;
    if (on_window_change) on_window_change(cwnd_);
  }
}

void TcpFlow::TrySend() {
  if (!started_) return;
  while (next_seq_ < offered_ &&
         static_cast<double>(next_seq_ - snd_una_) + config_.mss <= cwnd_) {
    SendSegment(next_seq_, /*is_retransmit=*/false);
    next_seq_ += std::min<std::uint64_t>(config_.mss, offered_ - next_seq_);
  }
  if (next_seq_ > snd_una_) ArmRtoTimer();
}

void TcpFlow::SendSegment(std::uint64_t seq, bool is_retransmit) {
  Packet pkt;
  pkt.flow = flow_id_;
  pkt.seq = seq;
  const std::uint64_t payload =
      std::min<std::uint64_t>(config_.mss, offered_ - seq);
  pkt.size = static_cast<std::size_t>(payload) + config_.header_bytes;
  pkt.is_ack = false;
  pkt.src = src_;
  pkt.dst = dst_;
  ++stats_.segments_sent;
  if (is_retransmit) {
    ++stats_.retransmits;
    retransmitted_.insert(seq);
    if (on_retransmit) on_retransmit(net_.sim().Now());
  } else {
    send_times_.emplace(seq, net_.sim().Now());
  }
  net_.SendPacket(pkt);
}

int TcpFlow::RetransmitHoles(int budget) {
  if (!config_.enable_sack) {
    // Plain NewReno: only the head-of-line hole is known to the sender.
    if (rexmitted_in_recovery_.count(snd_una_)) return 0;
    SendSegment(snd_una_, /*is_retransmit=*/true);
    rexmitted_in_recovery_.insert(snd_una_);
    return 1;
  }
  int sent = 0;
  for (std::uint64_t seq = snd_una_; seq < recover_ && sent < budget;
       seq += config_.mss) {
    if (out_of_order_.count(seq) || seq < rcv_next_) continue;  // delivered
    if (rexmitted_in_recovery_.count(seq)) continue;            // in flight
    SendSegment(seq, /*is_retransmit=*/true);
    rexmitted_in_recovery_.insert(seq);
    ++sent;
  }
  return sent;
}

void TcpFlow::UpdateRtt(Duration sample) {
  const double s = static_cast<double>(sample);
  if (srtt_ == 0) {
    srtt_ = s;
    rttvar_ = s / 2;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - s);
    srtt_ = 0.875 * srtt_ + 0.125 * s;
  }
  rto_ = std::clamp<Duration>(static_cast<Duration>(srtt_ + 4 * rttvar_),
                              config_.min_rto, config_.max_rto);
}

void TcpFlow::OnSenderPacket(const Packet& ack) {
  if (!ack.is_ack) return;
  const std::uint64_t acked = ack.ack_seq;
  if (acked > snd_una_) {
    // New data acknowledged.
    const std::uint64_t newly = acked - snd_una_;
    // RTT sample from the most recent newly-acked, never-retransmitted
    // segment (Karn's algorithm).
    for (auto it = send_times_.begin();
         it != send_times_.end() && it->first < acked;) {
      if (!retransmitted_.count(it->first)) {
        UpdateRtt(net_.sim().Now() - it->second);
      }
      retransmitted_.erase(it->first);
      it = send_times_.erase(it);
    }
    snd_una_ = acked;
    stats_.bytes_acked += newly;
    dupacks_ = 0;
    if (in_recovery_ && acked < recover_) {
      // Partial ack during recovery: keep repairing the scoreboard.
      // (NewReno mode: the partial ack exposes a new head hole, so the
      // in-flight marker for the old head no longer blocks us.)
      if (!config_.enable_sack) rexmitted_in_recovery_.clear();
      RetransmitHoles(2);
    } else {
      if (in_recovery_) {
        in_recovery_ = false;  // full ack: recovery done
        rexmitted_in_recovery_.clear();
      }
      if (cwnd_ < ssthresh_) {
        SetCwnd(cwnd_ + static_cast<double>(config_.mss));  // slow start
      } else {
        SetCwnd(cwnd_ + static_cast<double>(config_.mss) *
                            static_cast<double>(config_.mss) / cwnd_);  // CA
      }
    }
    rto_ = std::max(rto_ / 2, config_.min_rto);  // decay backoff on progress
    if (complete()) {
      if (stats_.complete_time == 0) {
        stats_.complete_time = net_.sim().Now();
        ++rto_generation_;  // disarm timer
        if (on_complete) on_complete();
      }
      return;
    }
    ArmRtoTimer();
    TrySend();
    return;
  }
  if (acked == snd_una_ && next_seq_ > snd_una_) {
    // Duplicate ACK while data is outstanding.
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      ++stats_.fast_retransmits;
      in_recovery_ = true;
      recover_ = next_seq_;
      rexmitted_in_recovery_.clear();
      ssthresh_ = std::max(static_cast<double>(next_seq_ - snd_una_) / 2,
                           2.0 * static_cast<double>(config_.mss));
      SetCwnd(ssthresh_);
      RetransmitHoles(2);
      ArmRtoTimer();
    } else if (dupacks_ > 3 && in_recovery_) {
      // Each further dupack signals another delivery: repair more holes.
      RetransmitHoles(1);
    }
  }
}

void TcpFlow::OnReceiverPacket(const Packet& data) {
  if (data.is_ack) return;
  const std::uint64_t payload =
      data.size > config_.header_bytes ? data.size - config_.header_bytes : 0;
  if (data.seq == rcv_next_) {
    rcv_next_ += payload;
    std::uint64_t delivered = payload;
    // Drain any buffered out-of-order segments that are now in order.
    auto it = out_of_order_.find(rcv_next_);
    while (it != out_of_order_.end()) {
      const std::uint64_t seg_payload =
          std::min<std::uint64_t>(config_.mss, offered_ - *it);
      rcv_next_ += seg_payload;
      delivered += seg_payload;
      out_of_order_.erase(it);
      it = out_of_order_.find(rcv_next_);
    }
    stats_.bytes_delivered += delivered;
    if (on_deliver) on_deliver(delivered, net_.sim().Now());
  } else if (data.seq > rcv_next_) {
    out_of_order_.insert(data.seq);
  }
  // Cumulative ACK for every arriving data segment (dupacks included).
  SendAck();
}

void TcpFlow::SendAck() {
  Packet ack;
  ack.flow = flow_id_;
  ack.is_ack = true;
  ack.ack_seq = rcv_next_;
  ack.size = config_.header_bytes;
  ack.src = dst_;
  ack.dst = src_;
  net_.SendPacket(ack);
}

void TcpFlow::ArmRtoTimer() {
  const std::uint64_t generation = ++rto_generation_;
  rto_armed_ = true;
  net_.sim().Schedule(rto_, [this, generation] { OnRtoFire(generation); });
}

void TcpFlow::OnRtoFire(std::uint64_t generation) {
  if (generation != rto_generation_ || !rto_armed_) return;
  if (snd_una_ >= next_seq_) return;  // nothing outstanding
  ++stats_.timeouts;
  in_recovery_ = true;
  recover_ = next_seq_;
  rexmitted_in_recovery_.clear();
  ssthresh_ = std::max(cwnd_ / 2, 2.0 * static_cast<double>(config_.mss));
  SetCwnd(static_cast<double>(config_.mss));
  dupacks_ = 0;
  rto_ = std::min<Duration>(rto_ * 2, config_.max_rto);  // Karn backoff
  SendSegment(snd_una_, /*is_retransmit=*/true);
  rexmitted_in_recovery_.insert(snd_una_);
  ArmRtoTimer();
}

}  // namespace jamm::netsim
