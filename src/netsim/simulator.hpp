// Discrete-event simulation engine. Everything time-driven in the netsim,
// ntp, and matisse modules runs on this: events execute in timestamp order
// (FIFO for ties), advancing a SimClock that the rest of jamm (sensors,
// gateways, managers) reads — so a whole monitored "grid" runs
// deterministically inside one process.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"

namespace jamm::netsim {

class Simulator {
 public:
  explicit Simulator(TimePoint start = 0) : clock_(start) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The simulation clock; pass it to any component needing "now".
  SimClock& clock() { return clock_; }
  const Clock& clock() const { return clock_; }
  TimePoint Now() const { return clock_.Now(); }

  /// Schedule `fn` to run `delay` from now (>= 0).
  void Schedule(Duration delay, std::function<void()> fn);
  /// Schedule at an absolute time (>= Now()).
  void ScheduleAt(TimePoint when, std::function<void()> fn);

  /// Run the next event; false when the queue is empty.
  bool Step();

  /// Run events until the queue drains or the clock passes `until`.
  /// The clock lands exactly on `until` if the simulation outlives it.
  void RunUntil(TimePoint until);
  /// Convenience: RunUntil(Now() + span).
  void RunFor(Duration span);
  /// Drain the queue completely.
  void RunAll();

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace jamm::netsim
