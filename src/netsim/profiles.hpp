// Canned topologies and calibrated parameters for the paper's evaluation
// environment (Figure 5): the Matisse testbed — DPSS storage cluster at
// LBNL, DARPA Supernet (OC-12 access, OC-48 core, ~60 ms RTT coast to
// coast), compute cluster / visualization host at ISI East — plus a
// plain gigabit LAN for the §6 LAN comparison.
//
// Calibration notes (DESIGN.md §2):
//  * PaperTcpConfig caps the window at 1 MB (2000-era default socket
//    buffers); 1 MB / 60 ms ≈ 140 Mbit/s — the paper's single-stream
//    WAN figure.
//  * PaperReceiverModel gives the receiving host ~210 Mbit/s of
//    single-socket receive capacity (≈ the paper's 200 Mbit/s LAN figure)
//    which collapses when several megabyte-window sockets are hot.
#pragma once

#include "netsim/network.hpp"
#include "netsim/tcp.hpp"

namespace jamm::netsim {

struct MatisseTopology {
  std::vector<NodeId> dpss;  // storage servers (Berkeley)
  NodeId lbl_router = 0;
  NodeId supernet = 0;       // OC-48 core, modeled as one transit node
  NodeId isi_router = 0;
  NodeId compute = 0;        // compute cluster head (Arlington)
  NodeId viz = 0;            // visualization workstation / mems.cairn.net
};

/// Figure 5 environment. `dpss_servers` storage nodes (the demo used 4).
MatisseTopology BuildMatisseWan(Network& net, int dpss_servers = 4);

struct LanTopology {
  std::vector<NodeId> senders;
  NodeId ethernet_switch = 0;
  NodeId receiver = 0;
};

/// Gigabit LAN: senders and receiver on one switch (~0.2 ms RTT).
LanTopology BuildGigabitLan(Network& net, int senders = 4);

/// 2000-era TCP parameters: 1 MB max window.
TcpConfig PaperTcpConfig();

/// The receiving host of §6 (gigabit NIC, ~200 Mbit/s single-socket
/// receive capacity).
ReceiverModel PaperReceiverModel();

}  // namespace jamm::netsim
