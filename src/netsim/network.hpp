// Network topology model: nodes joined by full-duplex links with
// bandwidth, propagation delay, a drop-tail queue, and optional random
// loss; static shortest-path routing; per-node SNMP agents so JAMM network
// sensors can watch the simulated routers; and a receiver-side host model
// reproducing the paper's §6 observation that the receiving host's NIC /
// device driver becomes the bottleneck with multiple sockets.
//
// Receiver model (DESIGN.md §2): the receiving host's NIC/driver is a
// single-server queue. Each data packet waits in a ring of
// `ring_packets` descriptors (overflow → drop before the ACK) and takes
// `base_cost` µs of CPU to deliver, plus `per_hot_socket_cost` µs for
// every OTHER concurrently receiving socket whose congestion window
// exceeds `hot_window_bytes`. The ACK leaves only after service, so TCP
// is ack-paced by the host's real drain rate.
//
// This encodes the paper's §6 hypothesis — "the amount of load the
// gigabit ethernet card and device driver place on the system" grows when
// the kernel juggles several sockets with megabyte-scale windows per
// interrupt — and reproduces why the collapse "is only observed with
// wide-area transfers": WAN streams need big windows (BDP ≈ 1 MB at
// 140 Mbit/s × 60 ms) so parallel WAN sockets are all hot, while LAN
// windows stay small and never trip the penalty regardless of count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "netsim/simulator.hpp"
#include "sysmon/snmp.hpp"

namespace jamm::netsim {

using NodeId = std::size_t;

struct LinkConfig {
  double bandwidth_bps = 100e6;
  Duration delay = kMillisecond;
  std::size_t queue_packets = 64;  // drop-tail queue depth
  double random_loss = 0;          // bit-error style loss probability
  /// Per-packet uniform random extra delay in [0, jitter] — models router
  /// processing variance; the asymmetry it introduces is what degrades
  /// NTP accuracy across hops (paper §4.3).
  Duration jitter = 0;
};

struct ReceiverModel {
  /// µs of CPU to deliver one packet when this is the only busy socket.
  double base_cost_us = 55;
  /// Extra µs per OTHER receiving socket whose window is "hot".
  double per_hot_socket_cost_us = 70;
  /// A socket is hot when its congestion window exceeds this many bytes
  /// (WAN windows ≈ MB are hot; LAN windows ≈ KB are not).
  double hot_window_bytes = 64 * 1024;
  /// Hysteresis: a socket stays hot this long after its window shrinks
  /// (the kernel's per-socket buffers don't deflate the instant cwnd
  /// does), so the penalty persists through WAN loss recovery.
  Duration hot_dwell = 30 * kSecond;
  /// NIC descriptor ring depth; arrivals beyond it are dropped.
  std::size_t ring_packets = 64;
};

struct Packet {
  std::uint64_t flow = 0;     // flow id (also the "socket")
  std::uint64_t seq = 0;      // first byte index
  std::size_t size = 1500;    // bytes on the wire
  bool is_ack = false;
  std::uint64_t ack_seq = 0;  // cumulative ack (next expected byte)
  NodeId src = 0;
  NodeId dst = 0;
  /// Small datagram payload for non-TCP protocols (NTP timestamps, RPC
  /// correlation ids); zero for TCP segments.
  std::int64_t aux = 0;
  std::uint64_t reply_to = 0;  // flow id replies should be addressed to
};

class Network {
 public:
  explicit Network(Simulator& sim, std::uint64_t seed = 1);

  // ----------------------------------------------------------- topology

  NodeId AddNode(const std::string& name);
  /// Adds a full-duplex link (two directions with the same config).
  void Connect(NodeId a, NodeId b, const LinkConfig& config);

  const std::string& NodeName(NodeId node) const;
  Result<NodeId> FindNode(const std::string& name) const;
  std::size_t node_count() const { return nodes_.size(); }

  /// SNMP agent for a node (router/switch MIB is fed by link traffic; the
  /// interface index is the link's index at that node, 1-based).
  sysmon::SnmpAgent& Snmp(NodeId node);

  // ------------------------------------------------------ receiver model

  void SetReceiverModel(NodeId node, const ReceiverModel& model);

  /// Fraction of receiver CPU used over the last second (0-100); 0 for
  /// nodes without a receiver model. Drives VMSTAT_SYS_TIME traces.
  double ReceiverCpuPct(NodeId node) const;

  /// TCP flows terminating at a modeled receiver register a probe the
  /// receiver uses to judge "hot" sockets (window > hot_window_bytes).
  using WindowProbe = std::function<double()>;  // current cwnd in bytes
  void RegisterSocketWindow(NodeId node, std::uint64_t flow,
                            WindowProbe probe);
  void UnregisterSocketWindow(NodeId node, std::uint64_t flow);

  // ----------------------------------------------------------- transport

  /// Inject a packet at its src; it is forwarded hop-by-hop to dst and, if
  /// it survives queues/loss/receiver CPU, handed to the deliver handler
  /// registered for (dst, flow).
  void SendPacket(const Packet& packet);

  using DeliverHandler = std::function<void(const Packet&)>;
  /// Register the endpoint handler for packets of `flow` arriving at
  /// `node` (both the data receiver and the ack receiver do this).
  void SetDeliverHandler(NodeId node, std::uint64_t flow,
                         DeliverHandler handler);
  void ClearDeliverHandler(NodeId node, std::uint64_t flow);

  // --------------------------------------------------------- observation

  struct DropInfo {
    enum class Cause { kQueueFull, kRandomLoss, kReceiverOverload, kInjected };
    Cause cause;
    NodeId at;
    Packet packet;
  };
  using DropTap = std::function<void(const DropInfo&)>;
  void SetDropTap(DropTap tap) { drop_tap_ = std::move(tap); }

  /// Deterministic fault injection (ISSUE 2): called for every packet as
  /// it is forwarded from a node; returning true drops it there (counted
  /// as Cause::kInjected). Lets resilience tests cut a specific path at a
  /// specific simulated time without touching link configs.
  using FaultHook = std::function<bool(NodeId at, const Packet& packet)>;
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t drops_queue = 0;
    std::uint64_t drops_loss = 0;
    std::uint64_t drops_receiver = 0;
    std::uint64_t drops_injected = 0;
  };
  const Stats& stats() const { return stats_; }

  Simulator& sim() { return sim_; }

 private:
  struct Link {
    NodeId from, to;
    LinkConfig config;
    TimePoint busy_until = 0;       // serialization tail
    std::size_t in_queue = 0;       // packets queued (incl. in service)
    std::uint32_t ifindex_at_from;  // SNMP interface index on `from`
  };

  struct ReceiverState {
    ReceiverModel model;
    std::size_t in_ring = 0;        // packets queued or in service
    TimePoint busy_until = 0;       // CPU service tail
    struct Socket {
      WindowProbe probe;
      TimePoint last_hot = -1;  // -1: never exceeded the threshold
    };
    std::map<std::uint64_t, Socket> sockets;  // flow → probe + hot stamp
    // CPU usage accounting over a rolling 1s window.
    double used_us_window = 0;
    TimePoint window_start = 0;
    double last_window_pct = 0;
  };

  struct Node {
    std::string name;
    std::unique_ptr<sysmon::SnmpAgent> snmp;
    std::vector<std::size_t> links;             // indices into links_
    std::map<NodeId, std::size_t> next_hop;     // dst → link index
    std::unique_ptr<ReceiverState> receiver;
  };

  void ComputeRoutes();
  void ForwardFrom(NodeId node, const Packet& packet);
  void Deliver(NodeId node, const Packet& packet);
  void HandOff(NodeId node, const Packet& packet);
  void Drop(DropInfo::Cause cause, NodeId at, const Packet& packet);

  Simulator& sim_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  bool routes_dirty_ = false;
  std::map<std::pair<NodeId, std::uint64_t>, DeliverHandler> handlers_;
  DropTap drop_tap_;
  FaultHook fault_hook_;
  Stats stats_;
};

}  // namespace jamm::netsim
