#include "netsim/profiles.hpp"

namespace jamm::netsim {

MatisseTopology BuildMatisseWan(Network& net, int dpss_servers) {
  MatisseTopology topo;
  topo.lbl_router = net.AddNode("lbl-router");
  topo.supernet = net.AddNode("supernet-core");
  topo.isi_router = net.AddNode("isi-router");
  topo.compute = net.AddNode("compute-cluster");
  topo.viz = net.AddNode("mems.cairn.net");

  // Storage cluster on gigabit ethernet into the LBL border router. Host
  // uplinks get deep queues: a sender's first hop is its own NIC/socket
  // buffer, which backpressures rather than dropping bursts.
  LinkConfig gigabit;
  gigabit.bandwidth_bps = 1e9;
  gigabit.delay = 50;  // 50 µs
  gigabit.queue_packets = 2048;
  for (int i = 0; i < dpss_servers; ++i) {
    const NodeId id = net.AddNode("dpss" + std::to_string(i + 1) + ".lbl.gov");
    net.Connect(id, topo.lbl_router, gigabit);
    topo.dpss.push_back(id);
  }

  // OC-12 access link into Supernet (Figure 5 labels the LBL side OC-12).
  LinkConfig oc12;
  oc12.bandwidth_bps = 622e6;
  oc12.delay = 2 * kMillisecond;
  oc12.queue_packets = 1024;  // ≈ BDP-sized router buffers
  net.Connect(topo.lbl_router, topo.supernet, oc12);

  // OC-48 core, coast to coast: the bulk of the ~60 ms RTT.
  LinkConfig oc48;
  oc48.bandwidth_bps = 2.4e9;
  oc48.delay = 26 * kMillisecond;
  oc48.queue_packets = 1024;
  net.Connect(topo.supernet, topo.isi_router, oc48);

  // ISI East campus: gigabit to the compute cluster and viz host.
  LinkConfig campus = gigabit;
  campus.delay = 2 * kMillisecond;
  net.Connect(topo.isi_router, topo.compute, campus);
  net.Connect(topo.compute, topo.viz, gigabit);

  // The receiving compute host is the one with the paper's NIC bottleneck.
  net.SetReceiverModel(topo.compute, PaperReceiverModel());
  return topo;
}

LanTopology BuildGigabitLan(Network& net, int senders) {
  LanTopology topo;
  topo.ethernet_switch = net.AddNode("lan-switch");
  topo.receiver = net.AddNode("lan-receiver");
  LinkConfig switch_port;  // shallow switch buffers (real 2000-era gear)
  switch_port.bandwidth_bps = 1e9;
  switch_port.delay = 50;  // 50 µs per hop → ~0.2 ms RTT
  switch_port.queue_packets = 128;
  net.Connect(topo.ethernet_switch, topo.receiver, switch_port);
  LinkConfig host_uplink = switch_port;  // host NIC: backpressured buffer
  host_uplink.queue_packets = 2048;
  for (int i = 0; i < senders; ++i) {
    const NodeId id = net.AddNode("lan-sender" + std::to_string(i + 1));
    net.Connect(id, topo.ethernet_switch, host_uplink);
    topo.senders.push_back(id);
  }
  net.SetReceiverModel(topo.receiver, PaperReceiverModel());
  return topo;
}

TcpConfig PaperTcpConfig() {
  TcpConfig config;
  config.mss = 1460;
  config.max_cwnd_pkts = 719;  // ≈ 1 MB window / 1460 B
  return config;
}

ReceiverModel PaperReceiverModel() {
  ReceiverModel model;
  // Calibrated against the §6 figures (see DESIGN.md and EXPERIMENTS.md):
  // with these values the simulator yields ≈132 Mbit/s for one WAN stream,
  // ≈30 Mbit/s aggregate for four, and ≈205 Mbit/s on the LAN for either —
  // the paper reports 140 / 30 / 200 / 200.
  model.base_cost_us = 55;            // ≈ 210 Mbit/s single-socket ceiling
  model.per_hot_socket_cost_us = 90;  // 4 hot sockets → ≈ 36 Mbit/s ceiling
  model.hot_window_bytes = 384 * 1024;   // < WAN windows, > LAN windows
  model.hot_dwell = 30 * kSecond;     // buffer pressure outlives cwnd dips
  model.ring_packets = 512;
  return model;
}

}  // namespace jamm::netsim
