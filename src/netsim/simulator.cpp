#include "netsim/simulator.hpp"

#include <cassert>

namespace jamm::netsim {

void Simulator::Schedule(Duration delay, std::function<void()> fn) {
  ScheduleAt(clock_.Now() + (delay < 0 ? 0 : delay), std::move(fn));
}

void Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  assert(when >= clock_.Now() && "scheduling into the past");
  queue_.push({when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  clock_.Set(event.when);
  ++executed_;
  event.fn();
  return true;
}

void Simulator::RunUntil(TimePoint until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    Step();
  }
  if (clock_.Now() < until) clock_.Set(until);
}

void Simulator::RunFor(Duration span) { RunUntil(clock_.Now() + span); }

void Simulator::RunAll() {
  while (Step()) {
  }
}

}  // namespace jamm::netsim
