// Reno-style TCP flow model over the netsim Network. Implements the
// congestion-control mechanics the paper's evaluation hinges on: slow
// start, congestion avoidance, triple-dupack fast retransmit, RTO with
// exponential backoff, and cumulative ACKs — enough for loss/RTT dynamics
// (Mathis-style throughput collapse on the 60 ms Supernet path) to emerge.
//
// Loss recovery is SACK-style: in recovery the sender walks the hole list
// (the scoreboard comes straight from the receiver's reorder buffer — both
// endpoints live in this object) and retransmits up to two holes per
// arriving ACK. Without this, a slow-start overshoot burst is repaired
// one hole per RTT (plain NewReno) and a 60 ms-RTT path collapses to
// near-zero goodput — far below how the paper's 2000-era SACK-capable
// stacks behaved.
//
// Documented simplifications: no delayed ACKs, byte-stream receiver with
// unbounded reorder buffer, simplified fast recovery (cwnd drops straight
// to ssthresh, no inflation).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "netsim/network.hpp"

namespace jamm::netsim {

struct TcpConfig {
  std::size_t mss = 1460;            // payload bytes per segment
  std::size_t header_bytes = 40;     // IP+TCP header on the wire
  std::uint64_t total_bytes = 0;     // 0 = application-driven (OfferBytes)
  double init_cwnd_pkts = 2;
  double max_cwnd_pkts = 1024;       // ~1.5 MB window cap
  Duration min_rto = 200 * kMillisecond;
  Duration max_rto = 60 * kSecond;
  /// SACK-style multi-hole recovery (see header comment). Disable to get
  /// plain NewReno (one hole per RTT) — used by the ablation bench to
  /// show how much of the WAN behaviour depends on the recovery model.
  bool enable_sack = true;
};

class TcpFlow {
 public:
  TcpFlow(Network& net, NodeId src, NodeId dst, TcpConfig config = {});
  ~TcpFlow();

  TcpFlow(const TcpFlow&) = delete;
  TcpFlow& operator=(const TcpFlow&) = delete;

  /// Begin transmitting (at the current simulation time).
  void Start();

  /// Application-driven mode (total_bytes == 0): make more bytes
  /// available to send.
  void OfferBytes(std::uint64_t n);

  bool complete() const;
  std::uint64_t flow_id() const { return flow_id_; }
  double cwnd_packets() const { return cwnd_ / static_cast<double>(config_.mss); }

  // ------------------------------------------------------- observation

  /// Sender performed a retransmission (fast or timeout) — the hook the
  /// NetLogger'd tcpdump sensor uses for TCPD_RETRANSMITS.
  std::function<void(TimePoint)> on_retransmit;
  /// In-order bytes handed to the receiving application.
  std::function<void(std::uint64_t bytes, TimePoint)> on_deliver;
  /// All of total_bytes acked.
  std::function<void()> on_complete;
  /// cwnd changed (TCPD_WINDOW_SIZE trace).
  std::function<void(double cwnd_bytes)> on_window_change;

  struct Stats {
    std::uint64_t bytes_acked = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmits = 0;       // fast + timeout
    std::uint64_t fast_retransmits = 0;
    std::uint64_t timeouts = 0;
    TimePoint start_time = 0;
    TimePoint complete_time = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Goodput in bits/s between Start() and now (or completion).
  double ThroughputBps() const;

 private:
  void TrySend();
  void SendSegment(std::uint64_t seq, bool is_retransmit);
  /// SACK-style: resend up to `budget` missing segments in
  /// [snd_una_, recover_). Returns how many were sent.
  int RetransmitHoles(int budget);
  void OnSenderPacket(const Packet& ack);
  void OnReceiverPacket(const Packet& data);
  void SendAck();
  void ArmRtoTimer();
  void OnRtoFire(std::uint64_t generation);
  void SetCwnd(double bytes);
  void UpdateRtt(Duration sample);

  Network& net_;
  NodeId src_, dst_;
  TcpConfig config_;
  std::uint64_t flow_id_;
  bool started_ = false;

  // Sender state (bytes).
  std::uint64_t offered_ = 0;    // app bytes available
  std::uint64_t snd_una_ = 0;    // lowest unacked
  std::uint64_t next_seq_ = 0;   // next new byte to send
  double cwnd_ = 0;              // congestion window, bytes
  double ssthresh_ = 0;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;    // recovery ends when acked past this
  std::set<std::uint64_t> rexmitted_in_recovery_;  // holes already resent
  std::map<std::uint64_t, TimePoint> send_times_;  // seq → first-send time
  std::set<std::uint64_t> retransmitted_;          // Karn's algorithm

  // RTT estimation (µs).
  double srtt_ = 0;
  double rttvar_ = 0;
  Duration rto_;
  std::uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;

  // Receiver state.
  std::uint64_t rcv_next_ = 0;
  std::set<std::uint64_t> out_of_order_;  // segment start seqs received early

  Stats stats_;
};

}  // namespace jamm::netsim
