// Event archive (paper §2.2): "It is important to archive event data in
// order to provide the ability to do historical analysis of system
// performance... While it may not be desirable to archive all monitoring
// data, it is necessary to archive a good sampling of both 'normal' and
// 'abnormal' system operation."
//
// ISSUE 5 rebuilt this as a segmented, time-partitioned store:
//
//   * ingest appends into lock-striped active segments, so multiple
//     ArchiverAgents (threads) ingest concurrently without contending;
//   * a segment seals when it hits a record-count or time-span bound;
//     sealed segments are immutable and carry min/max-time, event-name,
//     and host indexes, so QueryRange/QueryEvents/QueryHost prune to
//     covering segments instead of scanning everything;
//   * sealed segments compact by age tier — normal events are re-sampled
//     down (deterministic, hash-based), abnormal events are always kept;
//   * persistence is per-segment with checksummed headers (segment.hpp):
//     a corrupt segment is skipped on load, never fatal, and partial
//     loads are reported, never silent.
//
// Ingest-time sampling is unchanged from the seed: abnormal events
// (Error/Warning/Alert/Emergency) are always kept, normal events are kept
// at a configurable fraction (deterministic for a given seed).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "archive/segment.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "ulm/flat.hpp"
#include "ulm/record.hpp"

namespace jamm::archive {

/// Active-segment sealing bounds and the ingest lock-stripe count.
/// Configure before concurrent use; not thread-safe to change mid-ingest.
struct SegmentConfig {
  /// Seal when the active segment holds this many records.
  std::size_t max_records = 8192;
  /// Seal when the active segment's record-timestamp span reaches this.
  Duration max_span = kHour;
  /// Independent ingest stripes (each with its own lock and active
  /// segment). Threads are spread round-robin across stripes.
  std::size_t stripes = 8;
  /// Compress segments as they seal (ISSUE 8): the flat chunks are
  /// replaced by a dictionary + delta-varint blob; pruning indexes stay
  /// resident, queries decompress covering segments into a scratch batch.
  /// Off by default — flip it (or call CompressSealed) when the archive
  /// is read rarely enough that decode-on-scan beats resident bytes.
  bool compress_sealed = false;
};

/// One compaction tier: sealed segments whose newest record is older than
/// `older_than` keep only `keep_fraction` of their normal events
/// (abnormal events are always kept). Fractions are of the ORIGINAL
/// population and must decrease with age, so deeper tiers keep a subset
/// of shallower ones (the hash-based decision nests).
struct CompactionTier {
  Duration older_than = 0;
  double keep_fraction = 1.0;
};

struct CompactionPolicy {
  /// Ascending by `older_than`, descending by `keep_fraction`.
  std::vector<CompactionTier> tiers;

  /// 1 h → 25 %, 24 h → 5 % of normal events.
  static CompactionPolicy Default() {
    return {{{kHour, 0.25}, {24 * kHour, 0.05}}};
  }
};

/// Per-query pruning accounting (pass to any Query* to collect it).
struct QueryStats {
  std::size_t segments_total = 0;    // segments considered
  std::size_t segments_scanned = 0;  // covering segments actually read
  std::size_t segments_pruned = 0;   // skipped via min/max-time, event, host
  std::size_t records_returned = 0;
  /// Stored bytes of the segments actually scanned (Segment::StorageBytes:
  /// blob size for compressed segments, chunk footprint otherwise) — the
  /// pushdown economy measure: how much resting data this query touched.
  std::size_t bytes_scanned = 0;
};

/// What LoadFrom managed to read. The archive is complete only when
/// `ok()` — otherwise some segments were corrupt (skipped) or the file
/// was cut short (truncated), and callers must not treat the loaded data
/// as the whole archive.
struct LoadStats {
  std::size_t segments_loaded = 0;
  std::size_t segments_skipped = 0;  // corrupt blocks resynchronized past
  bool truncated = false;            // trailing bytes unreadable or missing

  bool ok() const { return segments_skipped == 0 && !truncated; }
};

class EventArchive {
 public:
  explicit EventArchive(std::string name, std::uint64_t sampling_seed = 1,
                        SegmentConfig config = {});

  EventArchive(EventArchive&&) = default;
  EventArchive& operator=(EventArchive&&) = default;

  const std::string& name() const { return name_; }
  const SegmentConfig& config() const { return config_; }

  /// Keep `normal_fraction` (0..1] of normal events; abnormal events
  /// (LVL in {Error, Warning, Alert, Emergency}) are always kept when
  /// `keep_abnormal` (default). Default policy keeps everything.
  /// Configure before concurrent ingest begins.
  void SetSamplingPolicy(double normal_fraction, bool keep_abnormal = true);

  /// Age-tiered re-sampling of sealed segments (see CompactionPolicy).
  /// Configure before concurrent use.
  void SetCompactionPolicy(CompactionPolicy policy);

  /// Store (subject to sampling). Never fails on policy drops — a dropped
  /// event is policy, not an error. Thread-safe: concurrent callers land
  /// on distinct lock stripes. The view form is the flat hot path (ISSUE
  /// 7): the keep decision is symbol compares and the kept record is one
  /// arena copy; the legacy form converts on the way in.
  void Ingest(const ulm::RecordView& view);
  void Ingest(const ulm::Record& rec);

  /// Batched ingest — the archiver's production path, since the gateway
  /// delivers events in batched frames (ISSUE 3). One stripe-lock
  /// acquisition covers the whole batch. The flat form splices the
  /// batch's arena into the active segment in O(1) when sampling is off
  /// (no per-record work at all); sampling applies per record in batch
  /// order, with keep decisions drawn from the same per-stripe rng stream
  /// as Ingest, so batched and record-at-a-time ingest of the same
  /// records keep exactly the same ones. `batch` is left empty. The
  /// segment seals after the batch lands, so the record-count bound is
  /// "at least" here. Thread-safe.
  void IngestBatch(ulm::FlatBatch&& batch);
  /// Legacy batched form: per-record conversion into a flat chunk.
  void IngestBatch(std::vector<ulm::Record>&& batch);

  /// Seal every non-empty active segment now (flush before save/handoff);
  /// returns segments sealed. Thread-safe.
  std::size_t SealActive();

  /// Apply the compaction policy to sealed segments older than its tiers;
  /// returns records removed. Deterministic: the keep decision hashes the
  /// record bytes with the sampling seed, so re-running — or running
  /// after a Save/Load round trip — removes exactly the same records.
  /// Thread-safe against concurrent ingest and queries. A compacted
  /// segment stays compressed if its source was (or compress_sealed is
  /// on).
  std::size_t Compact(TimePoint now);

  /// Compress every sealed, still-uncompressed segment (copy-swap, same
  /// idiom as Compact: in-flight queries keep their snapshot); returns
  /// segments compressed. Thread-safe against concurrent ingest, queries,
  /// and compaction — a segment Compact replaced mid-walk is left alone.
  std::size_t CompressSealed();

  /// Total resting bytes across all segments (Segment::StorageBytes) —
  /// the numerator/denominator of the compression-ratio bench gate.
  std::size_t StorageBytes() const;

  // -------------------------------------------------------------- queries
  //
  // All queries are thread-safe, return records time-ordered (ties broken
  // deterministically by segment id, then in-segment order), and prune
  // non-covering segments via the per-segment indexes.

  /// All stored records with t0 <= ts < t1.
  std::vector<ulm::Record> QueryRange(TimePoint t0, TimePoint t1,
                                      QueryStats* stats = nullptr) const;
  /// Range narrowed by NL.EVNT glob ("" = all).
  std::vector<ulm::Record> QueryEvents(const std::string& event_glob,
                                       TimePoint t0, TimePoint t1,
                                       QueryStats* stats = nullptr) const;
  /// Range narrowed by host.
  std::vector<ulm::Record> QueryHost(const std::string& host, TimePoint t0,
                                     TimePoint t1,
                                     QueryStats* stats = nullptr) const;

  // ---------------------------------------------------------- persistence

  /// Serialize every segment (sealed + active) — see segment.hpp for the
  /// checksummed per-segment wire format.
  std::string SaveToBytes() const;
  Status SaveTo(const std::string& path) const;

  /// Load an archive image. Corrupt segments are skipped, a truncated
  /// tail stops the load; both are reported via load_stats(), so partial
  /// data is never silently presented as complete. A malformed file
  /// header is an error. All loaded segments arrive sealed.
  static Result<EventArchive> LoadFromBytes(std::string name,
                                            std::string_view data,
                                            std::uint64_t sampling_seed = 1,
                                            SegmentConfig config = {});
  static Result<EventArchive> LoadFrom(const std::string& name,
                                       const std::string& path);

  /// Stats from the LoadFrom that produced this archive (all-ok for an
  /// archive born empty).
  const LoadStats& load_stats() const { return load_stats_; }

  // -------------------------------------------------------------- stats

  /// Records currently stored (after sampling and compaction).
  std::size_t size() const;
  std::uint64_t ingested() const;
  std::uint64_t dropped() const;
  /// Lifetime seals (the archiver refreshes its directory entry on this).
  std::uint64_t seal_count() const;
  /// Sealed segments + non-empty active segments.
  std::size_t segment_count() const;
  /// [min, max] record timestamp over all segments ({0, 0} when empty).
  std::pair<TimePoint, TimePoint> TimeSpan() const;

  /// "EVNT_A(120) EVNT_B(3) ..." — fills the archive directory entry's
  /// contents attribute ("creates an archive directory service entry
  /// indicating the contents of the archive").
  std::string ContentsSummary() const;

 private:
  /// One ingest stripe: its own lock, active segment, sampling rng, and
  /// counters, so concurrent ingest threads do not contend.
  struct Stripe {
    mutable std::mutex mu;
    std::shared_ptr<Segment> active;  // null until first kept record
    Rng rng;
    std::uint64_t ingested = 0;
    std::uint64_t dropped = 0;
  };

  /// Shared sealed-segment state. Lock order: Stripe::mu before
  /// Shared::mu (sealing nests); queries take them one at a time.
  struct Shared {
    mutable std::mutex mu;
    std::vector<std::shared_ptr<const Segment>> sealed;
    std::uint64_t seal_count = 0;
    std::uint64_t next_segment_id = 0;
    std::uint64_t loaded_records = 0;  // base for ingested() after a load
  };

  static bool IsAbnormal(const ulm::Record& rec);
  /// Symbol form — the flat ingest path's keep decision is four 4-byte
  /// compares against the pre-interned abnormal level symbols.
  static bool IsAbnormal(ulm::Symbol lvl);

  Stripe& StripeForThisThread() const;
  /// Move the stripe's active segment to the sealed list. Caller holds
  /// stripe.mu; takes shared_->mu nested.
  void SealLocked(Stripe& stripe);
  std::shared_ptr<Segment> NewSegment();
  /// Deterministic per-record sampling unit in [0, 1) for compaction.
  double HashUnit(const ulm::RecordView& view) const;
  /// Shared query walk: collect matching records from every covering
  /// segment, merged time-ordered. `covers`/`matches` close over the
  /// query's predicates; matching views are materialized into the result.
  std::vector<ulm::Record> Collect(
      TimePoint t0, TimePoint t1,
      const std::function<bool(const Segment&)>& covers,
      const std::function<bool(const ulm::RecordView&)>& matches,
      QueryStats* stats) const;

  /// Telemetry fold for one query walk (implemented in the .cpp, where
  /// the instruments live).
  void NoteQueryStats(const QueryStats& stats) const;

  /// The generic two-phase segment walk every query — record collection
  /// and the analysis engine's pushed-down partials alike — is built on:
  /// visit actives under their stripe locks, then the sealed snapshot;
  /// `scan(segment) -> Partial` runs once per covering segment, and a
  /// segment sealed between the phases overwrites its phase-one entry in
  /// the id-keyed map, so nothing ingested before the walk began is
  /// missed, duplicated, or double-counted in the stats. Returns the
  /// scanned partials in segment-id order (the deterministic merge order)
  /// and fills everything in `stats` except records_returned.
  template <typename Partial, typename CoversFn, typename ScanFn>
  std::vector<Partial> ScanPartials(TimePoint t0, TimePoint t1,
                                    const CoversFn& covers, const ScanFn& scan,
                                    QueryStats* stats) const {
    struct Entry {
      bool scanned = false;
      std::size_t bytes = 0;
      Partial partial{};
    };
    std::map<std::uint64_t, Entry> entries;
    auto visit = [&](const Segment& segment) {
      Entry entry;
      if (segment.CoversTime(t0, t1) && covers(segment)) {
        entry.scanned = true;
        entry.bytes = segment.StorageBytes();
        entry.partial = scan(segment);
      }
      entries[segment.id] = std::move(entry);
    };
    for (const auto& stripe : stripes_) {
      std::lock_guard lock(stripe->mu);
      if (stripe->active && !stripe->active->empty()) visit(*stripe->active);
    }
    std::vector<std::shared_ptr<const Segment>> sealed;
    {
      std::lock_guard lock(shared_->mu);
      sealed = shared_->sealed;
    }
    for (const auto& segment : sealed) visit(*segment);

    QueryStats local;
    std::vector<Partial> out;
    out.reserve(entries.size());
    for (auto& [id, entry] : entries) {
      (void)id;
      ++local.segments_total;
      if (entry.scanned) {
        ++local.segments_scanned;
        local.bytes_scanned += entry.bytes;
        out.push_back(std::move(entry.partial));
      } else {
        ++local.segments_pruned;
      }
    }
    NoteQueryStats(local);
    if (stats) *stats = local;
    return out;
  }

  /// The analysis engine (analysis.hpp) runs its pushed-down partial
  /// scans through ScanPartials directly.
  friend class AnalysisEngine;

  std::string name_;
  std::uint64_t sampling_seed_ = 1;
  SegmentConfig config_;
  double normal_fraction_ = 1.0;
  bool keep_abnormal_ = true;
  CompactionPolicy compaction_;
  LoadStats load_stats_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::unique_ptr<Shared> shared_;
};

}  // namespace jamm::archive
