// Event archive (paper §2.2): "It is important to archive event data in
// order to provide the ability to do historical analysis of system
// performance... While it may not be desirable to archive all monitoring
// data, it is necessary to archive a good sampling of both 'normal' and
// 'abnormal' system operation."
//
// The archive is an ingest-time-sampled, time-indexed store: abnormal
// events (Error/Warning/Alert/Emergency) are always kept, normal events
// are kept at a configurable sampling fraction (deterministic for a given
// seed). Queries select by time range, event-name glob, and host.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "ulm/record.hpp"

namespace jamm::archive {

class EventArchive {
 public:
  explicit EventArchive(std::string name, std::uint64_t sampling_seed = 1);

  const std::string& name() const { return name_; }

  /// Keep `normal_fraction` (0..1] of normal events; abnormal events
  /// (LVL in {Error, Warning, Alert, Emergency}) are always kept when
  /// `keep_abnormal` (default). Default policy keeps everything.
  void SetSamplingPolicy(double normal_fraction, bool keep_abnormal = true);

  /// Store (subject to sampling). Never fails on policy drops — a dropped
  /// event is policy, not an error.
  void Ingest(const ulm::Record& rec);

  // -------------------------------------------------------------- queries

  /// All stored records with t0 <= ts < t1, time-ordered.
  std::vector<ulm::Record> QueryRange(TimePoint t0, TimePoint t1) const;
  /// Range narrowed by NL.EVNT glob ("" = all).
  std::vector<ulm::Record> QueryEvents(const std::string& event_glob,
                                       TimePoint t0, TimePoint t1) const;
  /// Range narrowed by host.
  std::vector<ulm::Record> QueryHost(const std::string& host, TimePoint t0,
                                     TimePoint t1) const;

  // ---------------------------------------------------------- persistence

  Status SaveTo(const std::string& path) const;
  static Result<EventArchive> LoadFrom(const std::string& name,
                                       const std::string& path);

  // -------------------------------------------------------------- stats

  std::size_t size() const { return store_.size(); }
  std::uint64_t ingested() const { return ingested_; }
  std::uint64_t dropped() const { return dropped_; }

  /// "EVNT_A(120) EVNT_B(3) ..." — fills the archive directory entry's
  /// contents attribute ("creates an archive directory service entry
  /// indicating the contents of the archive").
  std::string ContentsSummary() const;

 private:
  static bool IsAbnormal(const ulm::Record& rec);

  std::string name_;
  Rng rng_;
  double normal_fraction_ = 1.0;
  bool keep_abnormal_ = true;
  std::multimap<TimePoint, ulm::Record> store_;
  std::map<std::string, std::uint64_t> event_counts_;
  std::uint64_t ingested_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace jamm::archive
