#include "archive/query.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "telemetry/metrics.hpp"
#include "ulm/binary.hpp"

namespace jamm::archive {

namespace {

struct ServiceTelemetry {
  telemetry::Counter& calls;
  telemetry::Counter& errors;
  telemetry::Counter& pages;
  telemetry::Counter& records;
};

ServiceTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static ServiceTelemetry t{m.counter("archive.service.calls"),
                            m.counter("archive.service.errors"),
                            m.counter("archive.service.pages"),
                            m.counter("archive.service.records")};
  return t;
}

Result<std::uint64_t> ParseNonNegative(const std::string& text,
                                       const char* what) {
  auto value = ParseInt(text);
  if (!value.ok() || *value < 0) {
    return Status::InvalidArgument(std::string("arch.query: bad ") + what +
                                   " '" + text + "'");
  }
  return static_cast<std::uint64_t>(*value);
}

}  // namespace

std::string ArchiveObjectName(const std::string& archive_name) {
  return "archive." + archive_name;
}

ArchiveQueryService::ArchiveQueryService(const EventArchive& archive,
                                         std::size_t default_page_records)
    : archive_(archive),
      default_page_records_(
          std::clamp<std::size_t>(default_page_records, 1, kMaxPageRecords)) {}

Result<std::string> ArchiveQueryService::Invoke(
    const std::string& method, const std::vector<std::string>& args) {
  auto& t = Instruments();
  t.calls.Increment();

  if (method == kStatsMethod) {
    const auto [span_min, span_max] = archive_.TimeSpan();
    return rpc::EncodeStrings({archive_.name(),
                               std::to_string(archive_.size()),
                               std::to_string(archive_.segment_count()),
                               std::to_string(archive_.ingested()),
                               std::to_string(archive_.dropped()),
                               std::to_string(span_min),
                               std::to_string(span_max),
                               archive_.ContentsSummary()});
  }
  if (method != kQueryMethod) {
    t.errors.Increment();
    return Status::NotFound("archive service: no method '" + method + "'");
  }
  if (args.size() < 4 || args.size() > 6) {
    t.errors.Increment();
    return Status::InvalidArgument(
        "arch.query wants [kind, t0, t1, predicate, offset?, limit?]");
  }

  const std::string& kind = args[0];
  auto t0 = ParseInt(args[1]);
  auto t1 = ParseInt(args[2]);
  if (!t0.ok() || !t1.ok()) {
    t.errors.Increment();
    return Status::InvalidArgument("arch.query: bad time bounds [" + args[1] +
                                   ", " + args[2] + ")");
  }
  const std::string& predicate = args[3];
  std::uint64_t offset = 0;
  if (args.size() > 4) {
    auto parsed = ParseNonNegative(args[4], "offset");
    if (!parsed.ok()) {
      t.errors.Increment();
      return parsed.status();
    }
    offset = *parsed;
  }
  std::size_t limit = default_page_records_;
  if (args.size() > 5 && !args[5].empty()) {
    auto parsed = ParseNonNegative(args[5], "limit");
    if (!parsed.ok()) {
      t.errors.Increment();
      return parsed.status();
    }
    if (*parsed > 0) {
      limit = std::min<std::size_t>(*parsed, kMaxPageRecords);
    }
  }

  // Analysis kinds (ISSUE 8): run the pushdown engine, page over encoded
  // elements, and append the server's QueryStats as a 4th reply part.
  if (kind == "lifeline" || kind == "loadline" || kind == "point" ||
      kind == "agg") {
    auto spec = ParseAnalysisSpec(predicate);
    if (!spec.ok()) {
      t.errors.Increment();
      return spec.status();
    }
    const AnalysisEngine engine(archive_);
    QueryStats qstats;
    std::vector<std::string> elements;
    if (kind == "lifeline") {
      for (const auto& l : engine.Lifelines(*spec, *t0, *t1, &qstats)) {
        elements.push_back(EncodeLifeline(l));
      }
    } else if (kind == "loadline") {
      for (const auto& b : engine.Loadline(*spec, *t0, *t1, &qstats)) {
        elements.push_back(EncodeLoadBucket(b));
      }
    } else if (kind == "point") {
      for (const auto& p : engine.Points(*spec, *t0, *t1, &qstats)) {
        elements.push_back(EncodePointSample(p));
      }
    } else {
      for (const auto& r : engine.Aggregate(*spec, *t0, *t1, &qstats)) {
        elements.push_back(EncodeAggRow(r));
      }
    }
    const std::size_t total = elements.size();
    const std::size_t begin = std::min<std::size_t>(offset, total);
    const std::size_t end = std::min(total, begin + limit);
    std::vector<std::string> page(
        std::make_move_iterator(elements.begin() + begin),
        std::make_move_iterator(elements.begin() + end));
    const std::string next =
        end < total && end > begin ? std::to_string(end) : std::string();
    t.pages.Increment();
    t.records.Add(page.size());
    return rpc::EncodeStrings({next, std::to_string(total),
                               rpc::EncodeStrings(page),
                               EncodeQueryStats(qstats)});
  }

  std::vector<ulm::Record> rows;
  if (kind == "range") {
    rows = archive_.QueryRange(*t0, *t1);
  } else if (kind == "events") {
    rows = archive_.QueryEvents(predicate, *t0, *t1);
  } else if (kind == "host") {
    rows = archive_.QueryHost(predicate, *t0, *t1);
  } else {
    t.errors.Increment();
    return Status::InvalidArgument("arch.query: unknown kind '" + kind + "'");
  }

  // Page [offset, offset + limit) of the deterministic full result. The
  // query order is stable across calls (time, then segment id, then
  // in-segment order), so successive pages tile without gaps or overlap
  // as long as the archive is not compacted mid-pagination.
  const std::size_t total = rows.size();
  std::string batch;
  std::size_t end = offset >= total
                        ? static_cast<std::size_t>(offset)
                        : std::min(total, static_cast<std::size_t>(offset) +
                                              limit);
  for (std::size_t i = offset; i < end; ++i) {
    ulm::EncodeBinary(rows[i], batch);
  }
  const std::string next =
      end < total ? std::to_string(end) : std::string();
  t.pages.Increment();
  t.records.Add(end > offset ? end - offset : 0);
  return rpc::EncodeStrings({next, std::to_string(total), std::move(batch)});
}

Status RegisterArchiveService(rpc::Registry& registry,
                              const EventArchive& archive,
                              std::size_t default_page_records) {
  return registry.RegisterResident(
      ArchiveObjectName(archive.name()),
      std::make_shared<ArchiveQueryService>(archive, default_page_records));
}

ArchiveClient::ArchiveClient(std::unique_ptr<transport::Channel> channel,
                             std::string object_name)
    : rpc_(std::move(channel)), object_(std::move(object_name)) {}

ArchiveClient::ArchiveClient(rpc::RpcClient::Dialer dialer,
                             std::string object_name,
                             resilience::RetryPolicy policy,
                             const Clock* clock)
    : rpc_(std::move(dialer), policy, clock),
      object_(std::move(object_name)) {}

Result<std::vector<ulm::Record>> ArchiveClient::QueryRange(TimePoint t0,
                                                           TimePoint t1) {
  return Query("range", "", t0, t1);
}

Result<std::vector<ulm::Record>> ArchiveClient::QueryEvents(
    const std::string& event_glob, TimePoint t0, TimePoint t1) {
  return Query("events", event_glob, t0, t1);
}

Result<std::vector<ulm::Record>> ArchiveClient::QueryHost(
    const std::string& host, TimePoint t0, TimePoint t1) {
  return Query("host", host, t0, t1);
}

Result<std::vector<ulm::Record>> ArchiveClient::Query(
    const std::string& kind, const std::string& predicate, TimePoint t0,
    TimePoint t1) {
  std::vector<ulm::Record> out;
  std::uint64_t offset = 0;
  while (true) {
    auto reply = rpc_.Call(
        object_, kQueryMethod,
        {kind, std::to_string(t0), std::to_string(t1), predicate,
         std::to_string(offset),
         page_records_ > 0 ? std::to_string(page_records_) : std::string()});
    if (!reply.ok()) return reply.status();
    auto parts = rpc::DecodeStrings(*reply);
    if (!parts.ok()) return parts.status();
    if (parts->size() != 3) {
      return Status::ParseError("arch.query reply wants 3 parts, got " +
                                std::to_string(parts->size()));
    }
    auto batch = ulm::DecodeBinaryStream((*parts)[2]);
    if (!batch.ok()) return batch.status();
    out.insert(out.end(), batch->begin(), batch->end());
    ++pages_fetched_;
    const std::string& next = (*parts)[0];
    if (next.empty()) break;
    auto next_offset = ParseNonNegative(next, "next_offset");
    if (!next_offset.ok()) return next_offset.status();
    if (*next_offset <= offset) {
      // A non-advancing cursor would loop forever; treat it as a broken
      // server rather than spinning.
      return Status::Internal("arch.query: pagination cursor did not advance");
    }
    offset = *next_offset;
  }
  return out;
}

Result<std::vector<std::string>> ArchiveClient::QueryElements(
    const std::string& kind, const AnalysisSpec& spec, TimePoint t0,
    TimePoint t1) {
  const std::string predicate = EncodeAnalysisSpec(spec);
  std::vector<std::string> out;
  std::uint64_t offset = 0;
  while (true) {
    auto reply = rpc_.Call(
        object_, kQueryMethod,
        {kind, std::to_string(t0), std::to_string(t1), predicate,
         std::to_string(offset),
         page_records_ > 0 ? std::to_string(page_records_) : std::string()});
    if (!reply.ok()) return reply.status();
    auto parts = rpc::DecodeStrings(*reply);
    if (!parts.ok()) return parts.status();
    if (parts->size() != 4) {
      return Status::ParseError("arch.query analysis reply wants 4 parts, "
                                "got " +
                                std::to_string(parts->size()));
    }
    auto elements = rpc::DecodeStrings((*parts)[2]);
    if (!elements.ok()) return elements.status();
    out.insert(out.end(), std::make_move_iterator(elements->begin()),
               std::make_move_iterator(elements->end()));
    auto qstats = DecodeQueryStats((*parts)[3]);
    if (!qstats.ok()) return qstats.status();
    last_query_stats_ = *qstats;
    ++pages_fetched_;
    const std::string& next = (*parts)[0];
    if (next.empty()) break;
    auto next_offset = ParseNonNegative(next, "next_offset");
    if (!next_offset.ok()) return next_offset.status();
    if (*next_offset <= offset) {
      // Same guard as the record path: a non-advancing cursor would loop
      // forever; treat it as a broken server rather than spinning.
      return Status::Internal("arch.query: pagination cursor did not advance");
    }
    offset = *next_offset;
  }
  return out;
}

namespace {

/// Decode every element of an analysis reply with `decode`; the first
/// malformed element fails the whole query (never a silent partial).
template <typename T, typename Decode>
Result<std::vector<T>> DecodeElements(
    Result<std::vector<std::string>> elements, const Decode& decode) {
  if (!elements.ok()) return elements.status();
  std::vector<T> out;
  out.reserve(elements->size());
  for (const auto& element : *elements) {
    auto decoded = decode(element);
    if (!decoded.ok()) return decoded.status();
    out.push_back(std::move(*decoded));
  }
  return out;
}

}  // namespace

Result<std::vector<TraceLifeline>> ArchiveClient::QueryLifelines(
    const AnalysisSpec& spec, TimePoint t0, TimePoint t1) {
  return DecodeElements<TraceLifeline>(QueryElements("lifeline", spec, t0, t1),
                                       DecodeLifeline);
}

Result<std::vector<LoadBucket>> ArchiveClient::QueryLoadline(
    const AnalysisSpec& spec, TimePoint t0, TimePoint t1) {
  return DecodeElements<LoadBucket>(QueryElements("loadline", spec, t0, t1),
                                    DecodeLoadBucket);
}

Result<std::vector<PointSample>> ArchiveClient::QueryPoints(
    const AnalysisSpec& spec, TimePoint t0, TimePoint t1) {
  return DecodeElements<PointSample>(QueryElements("point", spec, t0, t1),
                                     DecodePointSample);
}

Result<std::vector<AggRow>> ArchiveClient::QueryAggregate(
    const AnalysisSpec& spec, TimePoint t0, TimePoint t1) {
  return DecodeElements<AggRow>(QueryElements("agg", spec, t0, t1),
                                DecodeAggRow);
}

Result<ArchiveClient::RemoteStats> ArchiveClient::Stats() {
  auto reply = rpc_.Call(object_, kStatsMethod, {});
  if (!reply.ok()) return reply.status();
  auto parts = rpc::DecodeStrings(*reply);
  if (!parts.ok()) return parts.status();
  if (parts->size() != 8) {
    return Status::ParseError("arch.stats reply wants 8 parts, got " +
                              std::to_string(parts->size()));
  }
  RemoteStats stats;
  stats.name = (*parts)[0];
  const char* names[] = {"size", "segments", "ingested", "dropped"};
  std::uint64_t* fields[] = {&stats.size, &stats.segments, &stats.ingested,
                             &stats.dropped};
  for (std::size_t i = 0; i < 4; ++i) {
    auto value = ParseNonNegative((*parts)[i + 1], names[i]);
    if (!value.ok()) return value.status();
    *fields[i] = *value;
  }
  auto span_min = ParseInt((*parts)[5]);
  auto span_max = ParseInt((*parts)[6]);
  if (!span_min.ok() || !span_max.ok()) {
    return Status::ParseError("arch.stats: bad time span");
  }
  stats.span_min = *span_min;
  stats.span_max = *span_max;
  stats.contents = (*parts)[7];
  return stats;
}

}  // namespace jamm::archive
