// Archive segments (ISSUE 5): the unit of storage, pruning, compaction,
// and persistence for the segmented event archive.
//
// A segment is an append-only run of records covering a contiguous slice
// of ingest. While active it is guarded by its owning stripe's lock; once
// sealed it is immutable and shared freely between queries, compaction,
// and persistence. Every segment carries the indexes queries prune on:
// min/max record timestamp, per-event-name counts, and the host set — so
// a time/glob/host query touches only covering segments.
//
// Persistence is per-segment with a checksummed header (layout below), so
// one corrupt segment is skipped on load instead of poisoning the whole
// archive file.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "ulm/record.hpp"

namespace jamm::archive {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`. Used for the
/// segment header and payload checksums; self-contained so the archive
/// has no compression-library dependency.
std::uint32_t Crc32(std::string_view data);

/// One archive partition. Mutable only while active (under the owning
/// stripe's lock); sealed segments are immutable.
struct Segment {
  std::uint64_t id = 0;
  /// Deepest compaction tier already applied (0 = uncompacted).
  std::uint32_t tier = 0;
  TimePoint min_ts = 0;
  TimePoint max_ts = 0;
  /// Records in arrival order (roughly, but not strictly, time-ordered),
  /// stored as the chunks they arrived in: AppendFrame splices a whole
  /// owned batch in O(1) — no per-record moves, which is what makes the
  /// batched ingest path cheap — while per-record Append grows a tail
  /// chunk. Iteration order (chunk order, then in-chunk order) is exactly
  /// arrival order, so persisted payload bytes do not depend on which
  /// path the records took.
  std::vector<std::vector<ulm::Record>> chunks;
  /// Capacity hint for tail chunks the per-record Append path creates.
  std::size_t append_reserve = 0;
  /// NL.EVNT → count of records carrying it (the per-segment event index).
  /// Flat and linearly scanned: a monitoring stream carries a handful of
  /// distinct event names per segment, and the scan keeps the per-append
  /// index update off the tree-allocation path Ingest is benchmarked on.
  std::vector<std::pair<std::string, std::uint64_t>> event_counts;
  /// Records with an empty NL.EVNT (plain ULM without the extension).
  std::uint64_t unnamed_count = 0;
  /// HOST values present (the per-segment host index), same flat layout.
  std::vector<std::string> hosts;

  void Append(const ulm::Record& rec);
  /// Move form — the batched ingest path owns its records, so appending
  /// costs string moves, not string copies.
  void Append(ulm::Record&& rec);
  /// Splice a whole owned batch in as one chunk: O(1) in the records
  /// themselves, one index/min-max pass over them. Frame order becomes
  /// arrival order.
  void AppendFrame(std::vector<ulm::Record>&& frame);

  /// Visit every record in arrival order.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    for (const auto& chunk : chunks) {
      for (const auto& rec : chunk) fn(rec);
    }
  }

  bool empty() const { return record_count_ == 0; }
  std::size_t size() const { return record_count_; }

  /// True if [min_ts, max_ts] intersects the half-open query [t0, t1).
  bool CoversTime(TimePoint t0, TimePoint t1) const {
    return record_count_ != 0 && min_ts < t1 && max_ts >= t0;
  }
  /// True if some record's event name could match `glob` ("" = all).
  bool MayContainEvent(const std::string& glob) const;
  bool ContainsHost(const std::string& host) const {
    for (const auto& h : hosts) {
      if (h == host) return true;
    }
    return false;
  }

  /// Record span in microseconds (0 for empty/single-timestamp segments).
  Duration Span() const { return record_count_ == 0 ? 0 : max_ts - min_ts; }

 private:
  /// Fold one record into min/max-time and the event/host indexes and
  /// count it. Called exactly once per stored record, before storage.
  void IndexRecord(const ulm::Record& rec);

  std::size_t record_count_ = 0;
  /// Whether chunks.back() is a growable Append tail (false after an
  /// AppendFrame splice — spliced chunks are never grown).
  bool tail_open_ = false;
};

// ------------------------------------------------------------ wire format
//
// Archive file := file header, then one block per segment:
//
//   file header (16 bytes):
//     u32  magic   "JARC" (0x4352414A LE)
//     u32  version 1
//     u32  segment_count
//     u32  crc32 of the preceding 12 bytes
//
//   segment block := segment header (56 bytes) + payload:
//     u32  magic   "SEG1" (0x31474553 LE)
//     u32  tier
//     u64  id
//     u64  record_count
//     i64  min_ts
//     i64  max_ts
//     u64  payload_len            (bytes of payload that follow)
//     u32  payload_crc            (crc32 of the payload bytes)
//     u32  header_crc             (crc32 of the preceding 52 bytes)
//
//   payload := record_count self-delimiting binary ULM records
//              (ulm::EncodeBinary), concatenated.
//
// Every byte of the file is covered by exactly one of the three CRCs, so
// any single-bit corruption is detected. A bad payload CRC (or a payload
// that decodes to the wrong record count) skips that one segment — the
// header told us its length, so the loader resynchronizes at the next
// block. A bad header CRC means the length itself is untrustworthy: the
// loader stops there and reports the remainder as truncated.

inline constexpr std::uint32_t kArchiveMagic = 0x4352414Au;   // "JARC"
inline constexpr std::uint32_t kArchiveVersion = 1;
inline constexpr std::uint32_t kSegmentMagic = 0x31474553u;   // "SEG1"
inline constexpr std::size_t kFileHeaderBytes = 16;
inline constexpr std::size_t kSegmentHeaderBytes = 56;

/// Append the archive file header for `segment_count` blocks to `out`.
void AppendFileHeader(std::string& out, std::uint32_t segment_count);

/// Validate the file header; returns the segment count it promises.
Result<std::uint32_t> ReadFileHeader(std::string_view data);

/// Append one segment block (header + payload) to `out`.
void AppendSegmentBlock(const Segment& segment, std::string& out);

/// Outcome of reading one segment block at *offset.
enum class BlockOutcome {
  kLoaded,     // segment decoded; *offset past the block
  kSkipped,    // corrupt payload; *offset past the block (resynchronized)
  kTruncated,  // header unreadable/untrustworthy; *offset unchanged — stop
};

/// Read one segment block. On kLoaded, `out` holds the segment; on
/// kSkipped the block's bytes were consumed but its records are lost; on
/// kTruncated nothing more can be read from `data`.
BlockOutcome ReadSegmentBlock(std::string_view data, std::size_t* offset,
                              Segment* out);

}  // namespace jamm::archive
