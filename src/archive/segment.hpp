// Archive segments (ISSUE 5): the unit of storage, pruning, compaction,
// and persistence for the segmented event archive.
//
// A segment is an append-only run of records covering a contiguous slice
// of ingest. While active it is guarded by its owning stripe's lock; once
// sealed it is immutable and shared freely between queries, compaction,
// and persistence. Every segment carries the indexes queries prune on:
// min/max record timestamp, per-event-name counts, and the host set — so
// a time/glob/host query touches only covering segments.
//
// ISSUE 7 moved segment storage onto the flat record core (ulm/flat.hpp):
// records are held as FlatBatch chunks — one contiguous value arena and
// one field vector per chunk, with event/host/prog/lvl as interned
// symbols — so a stored record costs a dozen bytes of metadata plus its
// value bytes instead of a heap string per field, and the per-record
// index fold is 4-byte symbol compares instead of string compares.
// Iteration hands out RecordViews; the wire format below is unchanged
// (flat EncodeBinary is byte-identical to the legacy codec).
//
// Persistence is per-segment with a checksummed header (layout below), so
// one corrupt segment is skipped on load instead of poisoning the whole
// archive file.
//
// ISSUE 8 added a compressed resting state for sealed segments: the flat
// chunks are replaced by one dictionary + delta-varint blob (format below)
// while the pruning indexes (min/max time, event counts, host set) stay
// resident — so zone-map pruning never touches the blob, and a covering
// segment decompresses into a scratch FlatBatch only when actually
// scanned. Compression is transparent to every query and to persistence:
// compressed segments save as SEG2 blocks carrying the blob verbatim, so
// save → load → save is byte-stable in both states.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "ulm/flat.hpp"
#include "ulm/intern.hpp"
#include "ulm/record.hpp"

namespace jamm::archive {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `data`. Used for the
/// segment header and payload checksums; self-contained so the archive
/// has no compression-library dependency.
std::uint32_t Crc32(std::string_view data);

/// One archive partition. Mutable only while active (under the owning
/// stripe's lock); sealed segments are immutable.
struct Segment {
  std::uint64_t id = 0;
  /// Deepest compaction tier already applied (0 = uncompacted).
  std::uint32_t tier = 0;
  TimePoint min_ts = 0;
  TimePoint max_ts = 0;
  /// Records in arrival order (roughly, but not strictly, time-ordered),
  /// stored as flat chunks: AppendFlatFrame splices a whole owned batch
  /// in O(1) — no per-record copies, which is what makes the batched
  /// ingest path cheap — while per-record Append grows a tail chunk's
  /// arena. Iteration order (chunk order, then in-chunk order) is exactly
  /// arrival order, so persisted payload bytes do not depend on which
  /// path the records took.
  std::vector<ulm::FlatBatch> chunks;
  /// Record-count reserve hint for tail chunks the per-record Append path
  /// creates.
  std::size_t append_reserve = 0;
  /// NL.EVNT symbol → count of records carrying it (the per-segment event
  /// index). Flat and linearly scanned: a monitoring stream carries a
  /// handful of distinct event names per segment, and each per-append
  /// index update is a few 4-byte compares.
  std::vector<std::pair<ulm::Symbol, std::uint64_t>> event_counts;
  /// Records with an empty NL.EVNT (plain ULM without the extension).
  std::uint64_t unnamed_count = 0;
  /// HOST symbols present (the per-segment host index), same flat layout.
  std::vector<ulm::Symbol> hosts;
  /// Compressed resting state (ISSUE 8): when non-empty, `chunks` is empty
  /// and the records live in this dictionary + delta-varint blob
  /// (CompressPayload format). Indexes and counts above stay resident, so
  /// pruning never decompresses. Only sealed segments are ever compressed.
  std::string compressed;

  /// Copy one record into the tail chunk (legacy form converts/interns).
  void Append(const ulm::RecordView& view);
  void Append(const ulm::Record& rec);
  /// Splice a whole owned flat batch in as one chunk: O(1) in the records
  /// themselves, one index/min-max pass over them. Batch order becomes
  /// arrival order.
  void AppendFlatFrame(ulm::FlatBatch&& batch);
  /// Legacy batched form: converts the frame into one flat chunk.
  void AppendFrame(std::vector<ulm::Record>&& frame);

  /// Visit every record in arrival order as a RecordView. For an
  /// uncompressed segment there is no materialization; a compressed
  /// segment decodes into a scratch FlatBatch first (its blob was
  /// validated when built, so the decode cannot fail). The view is only
  /// valid inside the callback.
  template <typename Fn>
  void ForEachView(Fn&& fn) const {
    if (!compressed.empty()) {
      ulm::FlatBatch scratch;
      if (!DecompressScratch(scratch)) return;  // unreachable post-validation
      for (std::size_t i = 0; i < scratch.size(); ++i) fn(scratch.View(i));
      return;
    }
    for (const auto& chunk : chunks) {
      for (std::size_t i = 0; i < chunk.size(); ++i) fn(chunk.View(i));
    }
  }
  /// Legacy spelling: materializes a Record per visit — prefer ForEachView.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    ForEachView([&](const ulm::RecordView& view) { fn(view.ToRecord()); });
  }

  bool empty() const { return record_count_ == 0; }
  std::size_t size() const { return record_count_; }

  /// True if [min_ts, max_ts] intersects the half-open query [t0, t1).
  bool CoversTime(TimePoint t0, TimePoint t1) const {
    return record_count_ != 0 && min_ts < t1 && max_ts >= t0;
  }
  /// True if some record's event name could match `glob` ("" = all).
  bool MayContainEvent(const std::string& glob) const;
  bool ContainsHost(ulm::Symbol host) const {
    for (ulm::Symbol h : hosts) {
      if (h == host) return true;
    }
    return false;
  }
  /// String form resolves without growing the symbol table: a host the
  /// process has never interned cannot be in any segment.
  bool ContainsHost(std::string_view host) const {
    const auto sym = ulm::FindSymbol(host);
    return sym && ContainsHost(*sym);
  }

  /// Record span in microseconds (0 for empty/single-timestamp segments).
  Duration Span() const { return record_count_ == 0 ? 0 : max_ts - min_ts; }

  /// Replace the flat chunks with the compressed blob. Must only run on a
  /// segment no other thread can see (the still-private seal candidate, or
  /// a private copy about to be swapped in); no-op when already compressed
  /// or empty. Indexes, counts, and time bounds are untouched.
  void Compress();
  /// Bytes this segment's records currently occupy: the blob size when
  /// compressed, otherwise the chunks' arena + metadata footprint. The
  /// unit QueryStats::bytes_scanned is denominated in.
  std::size_t StorageBytes() const;

 private:
  /// Decode the compressed blob into `scratch`; false only if the blob is
  /// corrupt (impossible for blobs built by Compress or validated by the
  /// loader).
  bool DecompressScratch(ulm::FlatBatch& scratch) const;
  /// Fold one record into min/max-time and the event/host indexes and
  /// count it. Called exactly once per stored record.
  void IndexView(const ulm::RecordView& view);
  /// The tail chunk the per-record Append path grows (opens one if the
  /// last chunk is a sealed splice or its arena is full).
  ulm::FlatBatch& TailChunk();

  std::size_t record_count_ = 0;
  /// Whether chunks.back() is a growable Append tail (false after an
  /// AppendFlatFrame splice — spliced chunks are never grown).
  bool tail_open_ = false;
};

// ------------------------------------------------------------ wire format
//
// Archive file := file header, then one block per segment:
//
//   file header (16 bytes):
//     u32  magic   "JARC" (0x4352414A LE)
//     u32  version 1
//     u32  segment_count
//     u32  crc32 of the preceding 12 bytes
//
//   segment block := segment header (56 bytes) + payload:
//     u32  magic   "SEG1" (0x31474553 LE) or "SEG2" (0x32474553 LE)
//     u32  tier
//     u64  id
//     u64  record_count
//     i64  min_ts
//     i64  max_ts
//     u64  payload_len            (bytes of payload that follow)
//     u32  payload_crc            (crc32 of the payload bytes)
//     u32  header_crc             (crc32 of the preceding 52 bytes)
//
//   SEG1 payload := record_count self-delimiting binary ULM records
//                   (ulm::EncodeBinary), concatenated.
//   SEG2 payload := one CompressPayload blob (compressed segments persist
//                   their resting blob verbatim):
//
//     varint  record_count        (must match the header's)
//     varint  dict_n
//     dict_n × (varint len, bytes)   local string dictionary, first-use
//                                    order over host/prog/lvl/event/field
//                                    keys (built from the interned symbols)
//     record_count × record:
//       zigzag-varint  ts delta from the previous record (first record:
//                      from the segment's min_ts), arrival order
//       varint × 4     host, prog, lvl, event dictionary indexes
//       varint         nfields
//       nfields × (varint key index, varint value len, value bytes)
//
// Every byte of the file is covered by exactly one of the three CRCs, so
// any single-bit corruption is detected. A bad payload CRC (or a payload
// that decodes to the wrong record count) skips that one segment — the
// header told us its length, so the loader resynchronizes at the next
// block. A bad header CRC means the length itself is untrustworthy: the
// loader stops there and reports the remainder as truncated. SEG2 decode
// is hardened independently of the CRCs (every varint and length is
// bounds-checked, indexes validated against the dictionary, trailing
// bytes rejected), so a corrupt blob whose checksums were recomputed
// still skips cleanly instead of crashing or looping.

inline constexpr std::uint32_t kArchiveMagic = 0x4352414Au;   // "JARC"
inline constexpr std::uint32_t kArchiveVersion = 1;
inline constexpr std::uint32_t kSegmentMagic = 0x31474553u;   // "SEG1"
inline constexpr std::uint32_t kSegmentMagicV2 = 0x32474553u; // "SEG2"
inline constexpr std::size_t kFileHeaderBytes = 16;
inline constexpr std::size_t kSegmentHeaderBytes = 56;

/// Build the dictionary + delta-varint blob for `segment` (which must be
/// uncompressed). Deterministic: dictionary order is first use in arrival
/// order, so equal record sequences compress to equal bytes.
std::string CompressPayload(const Segment& segment);

/// Decode a CompressPayload blob, appending its records to `out` in
/// arrival order. Hardened against arbitrary bytes: never crashes, never
/// loops, and rejects truncation, bad indexes, and trailing garbage. On
/// error `out` may hold a prefix of the records.
Status DecompressPayload(std::string_view blob, ulm::FlatBatch& out);

/// Append the archive file header for `segment_count` blocks to `out`.
void AppendFileHeader(std::string& out, std::uint32_t segment_count);

/// Validate the file header; returns the segment count it promises.
Result<std::uint32_t> ReadFileHeader(std::string_view data);

/// Append one segment block (header + payload) to `out`.
void AppendSegmentBlock(const Segment& segment, std::string& out);

/// Outcome of reading one segment block at *offset.
enum class BlockOutcome {
  kLoaded,     // segment decoded; *offset past the block
  kSkipped,    // corrupt payload; *offset past the block (resynchronized)
  kTruncated,  // header unreadable/untrustworthy; *offset unchanged — stop
};

/// Read one segment block. On kLoaded, `out` holds the segment; on
/// kSkipped the block's bytes were consumed but its records are lost; on
/// kTruncated nothing more can be read from `data`.
BlockOutcome ReadSegmentBlock(std::string_view data, std::size_t* offset,
                              Segment* out);

}  // namespace jamm::archive
