// Archive analysis engine (ISSUE 8, ROADMAP item 5): server-side
// NetLogger-style analysis primitives over the segmented event archive —
// the paper's "historical analysis of system performance" made concrete
// as the three nlv primitives plus an aggregate:
//
//   * lifelines — an object's path through the system, reconstructed by
//     joining records on their TRACE.ID (or any configured id fields) and
//     ordering the hops in time;
//   * loadlines — a continuous series downsampled onto a fixed time grid:
//     per-bucket count/mean/min/max/percentile over a numeric field;
//   * points — scatter extraction of (timestamp, value) samples;
//   * aggregate — per-event-name summary rows (count/sum/mean/min/max/
//     p50/p95 of a numeric field).
//
// All four run INSIDE the archive process (pushed down), walking only
// covering segments via the zone-map indexes, and return summaries
// instead of raw records — QueryStats::bytes_scanned makes the economy
// measurable. Results are deterministic: element order is time, then
// segment id, then arrival (the archive's canonical query order); value
// statistics are computed over ascending-sorted value vectors (canonical
// summation order, nearest-rank percentiles), so the same archive
// contents yield bit-identical statistics regardless of segment layout,
// compression state, or Save/Load round trips — which is what lets the
// property tests demand byte-identical parity with a brute-force scan.
//
// Symbol lifetime: the engine compiles the spec's event/host/field names
// to interned Symbols with FindSymbol (never Intern — query strings must
// not grow the process-wide table); a name the process never interned
// matches nothing. Hop strings in results are copies, not views, so they
// outlive the query.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "common/clock.hpp"
#include "common/status.hpp"

namespace jamm::archive {

/// One hop of a lifeline: where/what/when, plus the record's SPAN.ID (""
/// when absent) so consumers can correlate with per-hop traces.
struct LifelineHop {
  TimePoint ts = 0;
  std::string event;
  std::string host;
  std::string prog;
  std::string span;
};

/// One reconstructed lifeline: every matching hop carrying `object_id`,
/// time-ordered.
struct TraceLifeline {
  std::string object_id;
  std::vector<LifelineHop> hops;
};

/// One loadline grid bucket (sparse: only non-empty buckets are emitted).
/// `count` is matching records in [bucket_start, bucket_start + bucket);
/// the value statistics cover the subset whose value field parsed as a
/// double (`value_count` of them; all zero when none did).
struct LoadBucket {
  TimePoint bucket_start = 0;
  std::uint64_t count = 0;
  std::uint64_t value_count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double pct = 0;  // the spec's percentile (default p95), nearest-rank
};

/// One scatter point: a matching record's timestamp and (when the value
/// field parsed) its value.
struct PointSample {
  TimePoint ts = 0;
  bool has_value = false;
  double value = 0;
};

/// One aggregate row: summary of every matching record sharing an event
/// name. Value statistics as in LoadBucket.
struct AggRow {
  std::string event;
  std::uint64_t count = 0;
  std::uint64_t value_count = 0;
  double sum = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
};

/// What to analyze. Encodes to/from the arch.query `predicate` slot as
/// space-separated key=value tokens (values are ULM tokens — no spaces).
struct AnalysisSpec {
  /// NL.EVNT glob filter ("" = all events).
  std::string event_glob;
  /// Exact host filter ("" = all hosts).
  std::string host;
  /// Numeric field for loadline/point/agg value statistics ("" = counts
  /// only; lifelines ignore it).
  std::string value_field;
  /// Fields whose values (joined with '|') identify a lifeline's object.
  std::vector<std::string> id_fields = {"TRACE.ID"};
  /// Loadline grid width (clamped to >= 1 microsecond).
  Duration bucket = kSecond;
  /// Loadline percentile, 0..100 (nearest-rank).
  int percentile = 95;
};

/// "event=<glob> host=<h> field=<f> id=<a,b> bucket=<usec> pct=<p>" —
/// only non-default keys are emitted, so a default spec encodes to "".
std::string EncodeAnalysisSpec(const AnalysisSpec& spec);
/// Inverse; rejects unknown keys, malformed tokens, and out-of-range
/// bucket/pct so a garbled predicate errors instead of silently matching
/// everything.
Result<AnalysisSpec> ParseAnalysisSpec(std::string_view text);

/// The pushdown engine. Borrows the archive (must outlive the engine);
/// every method is thread-safe against concurrent ingest, sealing,
/// compaction, and compression, with the same nothing-missed /
/// nothing-duplicated guarantee as the record queries (it runs on the
/// archive's two-phase deduped segment walk).
class AnalysisEngine {
 public:
  explicit AnalysisEngine(const EventArchive& archive) : archive_(archive) {}

  /// Lifelines of every object with at least one matching hop in
  /// [t0, t1), ordered by object id; hops time-ordered. `records_returned`
  /// in `stats` counts hops.
  std::vector<TraceLifeline> Lifelines(const AnalysisSpec& spec, TimePoint t0,
                                       TimePoint t1,
                                       QueryStats* stats = nullptr) const;
  /// Sparse loadline over the grid t0 + k*spec.bucket, ascending.
  std::vector<LoadBucket> Loadline(const AnalysisSpec& spec, TimePoint t0,
                                   TimePoint t1,
                                   QueryStats* stats = nullptr) const;
  /// Scatter points, time-ordered.
  std::vector<PointSample> Points(const AnalysisSpec& spec, TimePoint t0,
                                  TimePoint t1,
                                  QueryStats* stats = nullptr) const;
  /// Per-event summary rows, ordered by event name.
  std::vector<AggRow> Aggregate(const AnalysisSpec& spec, TimePoint t0,
                                TimePoint t1,
                                QueryStats* stats = nullptr) const;

 private:
  const EventArchive& archive_;
};

// ------------------------------------------------- wire element codecs
//
// Each analysis element marshals to one string (nested rpc::EncodeStrings
// lists; doubles as "%.17g", which round-trips exactly), so the rpc
// service pages over elements the same way the record queries page over
// records. Decoders are total: any malformed element is an error, never a
// partial struct.

std::string EncodeLifeline(const TraceLifeline& lifeline);
Result<TraceLifeline> DecodeLifeline(std::string_view data);
std::string EncodeLoadBucket(const LoadBucket& bucket);
Result<LoadBucket> DecodeLoadBucket(std::string_view data);
std::string EncodePointSample(const PointSample& point);
Result<PointSample> DecodePointSample(std::string_view data);
std::string EncodeAggRow(const AggRow& row);
Result<AggRow> DecodeAggRow(std::string_view data);

/// QueryStats as a marshalled 5-list (total, scanned, pruned, returned,
/// bytes) — the 4th part of an analysis arch.query reply.
std::string EncodeQueryStats(const QueryStats& stats);
Result<QueryStats> DecodeQueryStats(std::string_view data);

}  // namespace jamm::archive
