#include "archive/archive.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "common/strings.hpp"
#include "telemetry/metrics.hpp"
#include "ulm/binary.hpp"

namespace jamm::archive {

namespace {

struct ArchiveTelemetry {
  telemetry::Counter& ingested;
  telemetry::Counter& dropped;
  telemetry::Counter& seals;
  telemetry::Counter& compactions;
  telemetry::Counter& compact_removed;
  telemetry::Counter& query_calls;
  telemetry::Counter& segments_scanned;
  telemetry::Counter& segments_pruned;
  telemetry::Counter& bytes_scanned;
  telemetry::Counter& compressed_segments;
  telemetry::Counter& load_skipped;
  telemetry::Counter& saves;
  telemetry::Histogram& seal_records;  // records per sealed segment
  telemetry::Histogram& query_us;
  telemetry::Histogram& save_us;
};

ArchiveTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static ArchiveTelemetry t{m.counter("archive.ingested"),
                            m.counter("archive.dropped"),
                            m.counter("archive.seals"),
                            m.counter("archive.compactions"),
                            m.counter("archive.compact.removed"),
                            m.counter("archive.query.calls"),
                            m.counter("archive.query.segments_scanned"),
                            m.counter("archive.query.segments_pruned"),
                            m.counter("archive.query.bytes_scanned"),
                            m.counter("archive.compress.segments"),
                            m.counter("archive.load.segments_skipped"),
                            m.counter("archive.saves"),
                            m.histogram("archive.seal.records"),
                            m.histogram("archive.query_us"),
                            m.histogram("archive.save_us")};
  return t;
}

/// Process-wide round-robin thread index: thread k (in first-use order)
/// always maps to stripe k % stripes, so single-threaded runs are fully
/// deterministic (everything lands on stripe 0) and N ingest threads
/// spread evenly.
std::size_t ThreadOrdinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

EventArchive::EventArchive(std::string name, std::uint64_t sampling_seed,
                           SegmentConfig config)
    : name_(std::move(name)),
      sampling_seed_(sampling_seed),
      config_(config),
      shared_(std::make_unique<Shared>()) {
  if (config_.stripes == 0) config_.stripes = 1;
  if (config_.max_records == 0) config_.max_records = 1;
  stripes_.reserve(config_.stripes);
  for (std::size_t i = 0; i < config_.stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
    // Distinct per-stripe streams, deterministic for a given seed.
    stripes_.back()->rng.Seed(sampling_seed + 0x9E3779B97F4A7C15ull * i);
  }
}

void EventArchive::SetSamplingPolicy(double normal_fraction,
                                     bool keep_abnormal) {
  normal_fraction_ = std::min(1.0, std::max(0.0, normal_fraction));
  keep_abnormal_ = keep_abnormal;
}

void EventArchive::SetCompactionPolicy(CompactionPolicy policy) {
  compaction_ = std::move(policy);
}

bool EventArchive::IsAbnormal(const ulm::Record& rec) {
  const std::string& lvl = rec.lvl();
  return lvl == ulm::level::kError || lvl == ulm::level::kWarning ||
         lvl == ulm::level::kAlert || lvl == ulm::level::kEmergency;
}

bool EventArchive::IsAbnormal(ulm::Symbol lvl) {
  static const std::array<ulm::Symbol, 4> kAbnormal = {
      ulm::InternSymbol(ulm::level::kError),
      ulm::InternSymbol(ulm::level::kWarning),
      ulm::InternSymbol(ulm::level::kAlert),
      ulm::InternSymbol(ulm::level::kEmergency)};
  return lvl == kAbnormal[0] || lvl == kAbnormal[1] || lvl == kAbnormal[2] ||
         lvl == kAbnormal[3];
}

EventArchive::Stripe& EventArchive::StripeForThisThread() const {
  return *stripes_[ThreadOrdinal() % stripes_.size()];
}

std::shared_ptr<Segment> EventArchive::NewSegment() {
  // Caller holds a stripe lock; id assignment takes shared_->mu (the
  // stripe-before-shared lock order used everywhere).
  auto segment = std::make_shared<Segment>();
  // Pre-sizes the tail chunk's field vector and value arena so the
  // per-record Append path settles into append-only writes.
  segment->append_reserve = std::min<std::size_t>(config_.max_records, 65536);
  std::lock_guard lock(shared_->mu);
  segment->id = shared_->next_segment_id++;
  return segment;
}

void EventArchive::SealLocked(Stripe& stripe) {
  auto& tm = Instruments();
  tm.seals.Increment();
  tm.seal_records.Record(stripe.active->size());
  // Compress-on-seal happens here, while the stripe lock still makes the
  // segment private — queries only see it once it lands in the sealed
  // list below.
  if (config_.compress_sealed) {
    stripe.active->Compress();
    tm.compressed_segments.Increment();
  }
  std::lock_guard lock(shared_->mu);
  shared_->sealed.push_back(std::move(stripe.active));
  ++shared_->seal_count;
  stripe.active.reset();
}

void EventArchive::Ingest(const ulm::RecordView& view) {
  auto& tm = Instruments();
  tm.ingested.Increment();
  Stripe& stripe = StripeForThisThread();
  std::lock_guard lock(stripe.mu);
  ++stripe.ingested;
  // Same clause order as the legacy Ingest below, so both paths draw
  // identical per-stripe rng streams for the same records.
  const bool keep = normal_fraction_ >= 1.0 ||
                    (keep_abnormal_ && IsAbnormal(view.lvl_sym())) ||
                    stripe.rng.Chance(normal_fraction_);
  if (!keep) {
    ++stripe.dropped;
    tm.dropped.Increment();
    return;
  }
  if (!stripe.active) stripe.active = NewSegment();
  stripe.active->Append(view);
  if (stripe.active->size() >= config_.max_records ||
      stripe.active->Span() >= config_.max_span) {
    SealLocked(stripe);
  }
}

void EventArchive::Ingest(const ulm::Record& rec) {
  auto& tm = Instruments();
  tm.ingested.Increment();
  Stripe& stripe = StripeForThisThread();
  std::lock_guard lock(stripe.mu);
  ++stripe.ingested;
  // Order matters twice over: with sampling off (the common case) the
  // first clause short-circuits past the IsAbnormal level compares, and
  // with sampling on, IsAbnormal-then-Chance preserves the per-stripe rng
  // stream the seed sampling tests pin down.
  const bool keep = normal_fraction_ >= 1.0 ||
                    (keep_abnormal_ && IsAbnormal(rec)) ||
                    stripe.rng.Chance(normal_fraction_);
  if (!keep) {
    ++stripe.dropped;
    tm.dropped.Increment();
    return;
  }
  if (!stripe.active) stripe.active = NewSegment();
  stripe.active->Append(rec);
  if (stripe.active->size() >= config_.max_records ||
      stripe.active->Span() >= config_.max_span) {
    SealLocked(stripe);
  }
}

void EventArchive::IngestBatch(ulm::FlatBatch&& batch) {
  if (batch.empty()) return;
  auto& tm = Instruments();
  tm.ingested.Add(batch.size());
  Stripe& stripe = StripeForThisThread();
  std::lock_guard lock(stripe.mu);
  stripe.ingested += batch.size();
  if (normal_fraction_ < 1.0) {
    // Sampling on: per-record keep decisions, in batch order so the
    // per-stripe rng stream matches record-at-a-time ingest exactly.
    ulm::FlatBatch kept;
    kept.Reserve(batch.size(), batch.value_bytes());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const ulm::RecordView view = batch.View(i);
      const bool keep = (keep_abnormal_ && IsAbnormal(view.lvl_sym())) ||
                        stripe.rng.Chance(normal_fraction_);
      if (keep) {
        // Cannot overflow: the kept subset is no larger than `batch`,
        // which already fit one arena.
        (void)kept.Append(view);
      } else {
        ++stripe.dropped;
        tm.dropped.Increment();
      }
    }
    batch = std::move(kept);
    if (batch.empty()) return;
  }
  if (!stripe.active) stripe.active = NewSegment();
  stripe.active->AppendFlatFrame(std::move(batch));
  if (stripe.active->size() >= config_.max_records ||
      stripe.active->Span() >= config_.max_span) {
    SealLocked(stripe);
  }
}

void EventArchive::IngestBatch(std::vector<ulm::Record>&& batch) {
  if (batch.empty()) return;
  auto& tm = Instruments();
  tm.ingested.Add(batch.size());
  Stripe& stripe = StripeForThisThread();
  std::lock_guard lock(stripe.mu);
  stripe.ingested += batch.size();
  if (normal_fraction_ < 1.0) {
    // Sampling on: per-record keep decisions, in frame order so the
    // per-stripe rng stream matches record-at-a-time ingest exactly.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool keep = (keep_abnormal_ && IsAbnormal(batch[i])) ||
                        stripe.rng.Chance(normal_fraction_);
      if (keep) {
        if (kept != i) batch[kept] = std::move(batch[i]);
        ++kept;
      } else {
        ++stripe.dropped;
        tm.dropped.Increment();
      }
    }
    batch.resize(kept);
    if (batch.empty()) return;
  }
  if (!stripe.active) stripe.active = NewSegment();
  stripe.active->AppendFrame(std::move(batch));
  if (stripe.active->size() >= config_.max_records ||
      stripe.active->Span() >= config_.max_span) {
    SealLocked(stripe);
  }
}

std::size_t EventArchive::SealActive() {
  std::size_t sealed = 0;
  for (auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    if (stripe->active && !stripe->active->empty()) {
      SealLocked(*stripe);
      ++sealed;
    }
  }
  return sealed;
}

double EventArchive::HashUnit(const ulm::RecordView& view) const {
  // FNV-1a over the record's canonical binary encoding, mixed with the
  // sampling seed: stable across processes and Save/Load round trips (the
  // flat encoding is byte-identical to the legacy one, so compaction
  // decisions survived the flat-core migration unchanged).
  const std::string bytes = ulm::EncodeBinary(view);
  std::uint64_t h = 1469598103934665603ull ^ sampling_seed_;
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::size_t EventArchive::Compact(TimePoint now) {
  if (compaction_.tiers.empty()) return 0;
  auto& tm = Instruments();
  std::vector<std::shared_ptr<const Segment>> snapshot;
  {
    std::lock_guard lock(shared_->mu);
    snapshot = shared_->sealed;
  }
  std::size_t removed = 0;
  for (const auto& segment : snapshot) {
    const Duration age = now - segment->max_ts;
    std::uint32_t target = 0;
    double fraction = 1.0;
    for (std::size_t i = 0; i < compaction_.tiers.size(); ++i) {
      if (age >= compaction_.tiers[i].older_than) {
        target = static_cast<std::uint32_t>(i + 1);
        fraction = compaction_.tiers[i].keep_fraction;
      }
    }
    if (target <= segment->tier) continue;  // already at (or past) this tier
    auto compacted = std::make_shared<Segment>();
    compacted->id = segment->id;
    compacted->tier = target;
    compacted->append_reserve = segment->size();
    segment->ForEachView([&](const ulm::RecordView& view) {
      if ((keep_abnormal_ && IsAbnormal(view.lvl_sym())) ||
          HashUnit(view) < fraction) {
        compacted->Append(view);
      }
    });
    removed += segment->size() - compacted->size();
    // A compacted segment keeps its storage state: re-compress if the
    // source rested compressed (or the config compresses every seal).
    if (config_.compress_sealed || !segment->compressed.empty()) {
      compacted->Compress();
    }
    std::lock_guard lock(shared_->mu);
    for (auto& slot : shared_->sealed) {
      if (slot->id == segment->id) {
        slot = std::move(compacted);
        break;
      }
    }
  }
  tm.compactions.Increment();
  tm.compact_removed.Add(removed);
  return removed;
}

std::size_t EventArchive::CompressSealed() {
  auto& tm = Instruments();
  std::vector<std::shared_ptr<const Segment>> snapshot;
  {
    std::lock_guard lock(shared_->mu);
    snapshot = shared_->sealed;
  }
  std::size_t compressed = 0;
  for (const auto& segment : snapshot) {
    if (segment->empty() || !segment->compressed.empty()) continue;
    auto copy = std::make_shared<Segment>(*segment);
    copy->Compress();
    std::lock_guard lock(shared_->mu);
    for (auto& slot : shared_->sealed) {
      // Pointer match, not just id: if Compact swapped this segment while
      // we were compressing the old copy, installing ours would resurrect
      // the compacted-away records. Leave it — the next CompressSealed
      // pass picks up the compacted replacement.
      if (slot.get() == segment.get()) {
        slot = std::move(copy);
        ++compressed;
        tm.compressed_segments.Increment();
        break;
      }
    }
  }
  return compressed;
}

std::size_t EventArchive::StorageBytes() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    if (stripe->active) total += stripe->active->StorageBytes();
  }
  std::lock_guard lock(shared_->mu);
  for (const auto& segment : shared_->sealed) total += segment->StorageBytes();
  return total;
}

// ---------------------------------------------------------------- queries

void EventArchive::NoteQueryStats(const QueryStats& stats) const {
  auto& tm = Instruments();
  tm.query_calls.Increment();
  tm.segments_scanned.Add(stats.segments_scanned);
  tm.segments_pruned.Add(stats.segments_pruned);
  tm.bytes_scanned.Add(stats.bytes_scanned);
}

std::vector<ulm::Record> EventArchive::Collect(
    TimePoint t0, TimePoint t1,
    const std::function<bool(const Segment&)>& covers,
    const std::function<bool(const ulm::RecordView&)>& matches,
    QueryStats* stats) const {
  telemetry::ScopedTimer timer(&Instruments().query_us);
  QueryStats local;

  // One per-segment partial = that segment's matches; ScanPartials hands
  // them back in segment-id order (and dedupes a segment sealed
  // mid-query), so concatenation + stable sort reproduces the
  // deterministic time-then-id-then-arrival order.
  using Hits = std::vector<ulm::Record>;
  std::vector<Hits> groups = ScanPartials<Hits>(
      t0, t1, covers,
      [&](const Segment& segment) {
        Hits hits;
        // Predicates run on the view (symbol compares, no allocation);
        // only matching records pay the legacy-Record materialization.
        segment.ForEachView([&](const ulm::RecordView& view) {
          if (view.timestamp() >= t0 && view.timestamp() < t1 &&
              matches(view)) {
            hits.push_back(view.ToRecord());
          }
        });
        return hits;
      },
      &local);

  std::vector<ulm::Record> out;
  for (auto& hits : groups) {
    out.insert(out.end(), std::make_move_iterator(hits.begin()),
               std::make_move_iterator(hits.end()));
  }
  // Stable: ties keep segment-id-then-arrival order, so the same query
  // yields byte-identical results before and after a Save/Load round trip.
  std::stable_sort(out.begin(), out.end(),
                   [](const ulm::Record& a, const ulm::Record& b) {
                     return a.timestamp() < b.timestamp();
                   });
  local.records_returned = out.size();
  if (stats) *stats = local;
  return out;
}

std::vector<ulm::Record> EventArchive::QueryRange(TimePoint t0, TimePoint t1,
                                                  QueryStats* stats) const {
  return Collect(
      t0, t1, [](const Segment&) { return true; },
      [](const ulm::RecordView&) { return true; }, stats);
}

std::vector<ulm::Record> EventArchive::QueryEvents(
    const std::string& event_glob, TimePoint t0, TimePoint t1,
    QueryStats* stats) const {
  return Collect(
      t0, t1,
      [&](const Segment& s) { return s.MayContainEvent(event_glob); },
      [&](const ulm::RecordView& view) {
        return event_glob.empty() || GlobMatch(event_glob, view.event_name());
      },
      stats);
}

std::vector<ulm::Record> EventArchive::QueryHost(const std::string& host,
                                                 TimePoint t0, TimePoint t1,
                                                 QueryStats* stats) const {
  // One symbol lookup (Find, not Intern: query strings must not grow the
  // table) turns the per-record host check into a 4-byte compare. A host
  // the process never interned cannot be stored in any segment.
  const auto host_sym = ulm::FindSymbol(host);
  return Collect(
      t0, t1,
      [&](const Segment& s) { return host_sym && s.ContainsHost(*host_sym); },
      [&](const ulm::RecordView& view) {
        return host_sym && view.host_sym() == *host_sym;
      },
      stats);
}

// ------------------------------------------------------------ persistence

std::string EventArchive::SaveToBytes() const {
  // Snapshot every segment: sealed as shared pointers, actives as copies
  // made under their stripe locks. Blocks are written in segment-id
  // order, which a Load preserves — so save → load → save is
  // byte-identical.
  std::vector<std::shared_ptr<const Segment>> segments;
  {
    std::lock_guard lock(shared_->mu);
    segments = shared_->sealed;
  }
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    if (stripe->active && !stripe->active->empty()) {
      segments.push_back(std::make_shared<const Segment>(*stripe->active));
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });
  std::string out;
  AppendFileHeader(out, static_cast<std::uint32_t>(segments.size()));
  for (const auto& segment : segments) AppendSegmentBlock(*segment, out);
  return out;
}

Status EventArchive::SaveTo(const std::string& path) const {
  auto& tm = Instruments();
  tm.saves.Increment();
  telemetry::ScopedTimer save_timer(&tm.save_us);
  const std::string bytes = SaveToBytes();
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::Unavailable("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::Unavailable("write failed: " + path);
  return Status::Ok();
}

Result<EventArchive> EventArchive::LoadFromBytes(std::string name,
                                                 std::string_view data,
                                                 std::uint64_t sampling_seed,
                                                 SegmentConfig config) {
  auto promised = ReadFileHeader(data);
  if (!promised.ok()) return promised.status();

  EventArchive archive(std::move(name), sampling_seed, config);
  LoadStats stats;
  std::set<std::uint64_t> seen_ids;
  std::size_t offset = kFileHeaderBytes;
  while (offset < data.size()) {
    Segment segment;
    const BlockOutcome outcome = ReadSegmentBlock(data, &offset, &segment);
    if (outcome == BlockOutcome::kTruncated) {
      stats.truncated = true;
      break;
    }
    if (outcome == BlockOutcome::kSkipped) {
      ++stats.segments_skipped;
      continue;
    }
    // Segment ids are unique by construction; a duplicate means the block
    // is a corrupt echo of another — skip it rather than shadow a
    // legitimate segment in the id-keyed query merge.
    if (!seen_ids.insert(segment.id).second) {
      ++stats.segments_skipped;
      continue;
    }
    ++stats.segments_loaded;
    auto& shared = *archive.shared_;
    shared.loaded_records += segment.size();
    shared.next_segment_id = std::max(shared.next_segment_id, segment.id + 1);
    shared.sealed.push_back(std::make_shared<const Segment>(std::move(segment)));
  }
  // The header promised a block count; fewer (or more) readable blocks
  // means the tail was lost even if every byte present parsed cleanly.
  if (stats.segments_loaded + stats.segments_skipped != *promised) {
    stats.truncated = true;
  }
  Instruments().load_skipped.Add(stats.segments_skipped);
  archive.load_stats_ = stats;
  return archive;
}

Result<EventArchive> EventArchive::LoadFrom(const std::string& name,
                                            const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("archive file not found: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadFromBytes(name, buf.str());
}

// ------------------------------------------------------------------ stats

std::size_t EventArchive::size() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    if (stripe->active) total += stripe->active->size();
  }
  std::lock_guard lock(shared_->mu);
  for (const auto& segment : shared_->sealed) total += segment->size();
  return total;
}

std::uint64_t EventArchive::ingested() const {
  std::uint64_t total;
  {
    std::lock_guard lock(shared_->mu);
    total = shared_->loaded_records;
  }
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    total += stripe->ingested;
  }
  return total;
}

std::uint64_t EventArchive::dropped() const {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    total += stripe->dropped;
  }
  return total;
}

std::uint64_t EventArchive::seal_count() const {
  std::lock_guard lock(shared_->mu);
  return shared_->seal_count;
}

std::size_t EventArchive::segment_count() const {
  std::size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    if (stripe->active && !stripe->active->empty()) ++total;
  }
  std::lock_guard lock(shared_->mu);
  return total + shared_->sealed.size();
}

std::pair<TimePoint, TimePoint> EventArchive::TimeSpan() const {
  bool any = false;
  TimePoint lo = 0, hi = 0;
  auto fold = [&](const Segment& segment) {
    if (segment.empty()) return;
    if (!any) {
      lo = segment.min_ts;
      hi = segment.max_ts;
      any = true;
      return;
    }
    lo = std::min(lo, segment.min_ts);
    hi = std::max(hi, segment.max_ts);
  };
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    if (stripe->active) fold(*stripe->active);
  }
  std::vector<std::shared_ptr<const Segment>> sealed;
  {
    std::lock_guard lock(shared_->mu);
    sealed = shared_->sealed;
  }
  for (const auto& segment : sealed) fold(*segment);
  return {lo, hi};
}

std::string EventArchive::ContentsSummary() const {
  // Keyed by the interned name's characters (stable for the process
  // lifetime), so the summary stays alphabetical as before.
  std::map<std::string_view, std::uint64_t> merged;
  auto fold = [&](const Segment& segment) {
    for (const auto& [sym, count] : segment.event_counts) {
      merged[ulm::SymbolName(sym)] += count;
    }
  };
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mu);
    if (stripe->active) fold(*stripe->active);
  }
  std::vector<std::shared_ptr<const Segment>> sealed;
  {
    std::lock_guard lock(shared_->mu);
    sealed = shared_->sealed;
  }
  for (const auto& segment : sealed) fold(*segment);
  std::string out;
  for (const auto& [event_name, count] : merged) {
    if (!out.empty()) out += ' ';
    out += event_name;
    out += "(" + std::to_string(count) + ")";
  }
  return out;
}

}  // namespace jamm::archive
