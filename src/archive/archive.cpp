#include "archive/archive.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "telemetry/metrics.hpp"

namespace jamm::archive {

namespace {

struct ArchiveTelemetry {
  telemetry::Counter& ingested;
  telemetry::Counter& dropped;
  telemetry::Counter& saves;
  telemetry::Histogram& save_us;
  telemetry::Histogram& save_batch;  // records per flush
};

ArchiveTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static ArchiveTelemetry t{m.counter("archive.ingested"),
                            m.counter("archive.dropped"),
                            m.counter("archive.saves"),
                            m.histogram("archive.save_us"),
                            m.histogram("archive.save_batch")};
  return t;
}

}  // namespace

EventArchive::EventArchive(std::string name, std::uint64_t sampling_seed)
    : name_(std::move(name)), rng_(sampling_seed) {}

void EventArchive::SetSamplingPolicy(double normal_fraction,
                                     bool keep_abnormal) {
  normal_fraction_ = std::min(1.0, std::max(0.0, normal_fraction));
  keep_abnormal_ = keep_abnormal;
}

bool EventArchive::IsAbnormal(const ulm::Record& rec) {
  const std::string& lvl = rec.lvl();
  return lvl == ulm::level::kError || lvl == ulm::level::kWarning ||
         lvl == ulm::level::kAlert || lvl == ulm::level::kEmergency;
}

void EventArchive::Ingest(const ulm::Record& rec) {
  ++ingested_;
  Instruments().ingested.Increment();
  const bool keep = (keep_abnormal_ && IsAbnormal(rec)) ||
                    normal_fraction_ >= 1.0 || rng_.Chance(normal_fraction_);
  if (!keep) {
    ++dropped_;
    Instruments().dropped.Increment();
    return;
  }
  store_.emplace(rec.timestamp(), rec);
  if (!rec.event_name().empty()) ++event_counts_[rec.event_name()];
}

std::vector<ulm::Record> EventArchive::QueryRange(TimePoint t0,
                                                  TimePoint t1) const {
  std::vector<ulm::Record> out;
  for (auto it = store_.lower_bound(t0); it != store_.end() && it->first < t1;
       ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<ulm::Record> EventArchive::QueryEvents(
    const std::string& event_glob, TimePoint t0, TimePoint t1) const {
  std::vector<ulm::Record> out;
  for (auto it = store_.lower_bound(t0); it != store_.end() && it->first < t1;
       ++it) {
    if (event_glob.empty() || GlobMatch(event_glob, it->second.event_name())) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<ulm::Record> EventArchive::QueryHost(const std::string& host,
                                                 TimePoint t0,
                                                 TimePoint t1) const {
  std::vector<ulm::Record> out;
  for (auto it = store_.lower_bound(t0); it != store_.end() && it->first < t1;
       ++it) {
    if (it->second.host() == host) out.push_back(it->second);
  }
  return out;
}

Status EventArchive::SaveTo(const std::string& path) const {
  auto& tm = Instruments();
  tm.saves.Increment();
  tm.save_batch.Record(store_.size());
  telemetry::ScopedTimer save_timer(&tm.save_us);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open " + path);
  for (const auto& [ts, rec] : store_) {
    out << rec.ToAscii() << '\n';
  }
  out.flush();
  if (!out) return Status::Unavailable("write failed: " + path);
  return Status::Ok();
}

Result<EventArchive> EventArchive::LoadFrom(const std::string& name,
                                            const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("archive file not found: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Status error;
  auto records = ulm::ParseLog(buf.str(), &error);
  if (!error.ok()) return error;
  EventArchive archive(name);
  for (const auto& rec : records) archive.Ingest(rec);
  return archive;
}

std::string EventArchive::ContentsSummary() const {
  std::string out;
  for (const auto& [event_name, count] : event_counts_) {
    if (!out.empty()) out += ' ';
    out += event_name + "(" + std::to_string(count) + ")";
  }
  return out;
}

}  // namespace jamm::archive
