// ArchiveQueryService (ISSUE 5): serves an EventArchive to remote
// consumers through the rpc layer, the way the paper's archive agent
// makes archived data available for "historical analysis of system
// performance". Consumers discover the archive via its directory entry
// (address attribute), dial the rpc server hosting it, and query by
// time range, event-name glob, or host.
//
// Wire protocol (rpc object methods, string-marshalled via rpc wire):
//
//   "arch.query"  args = [kind, t0, t1, predicate, offset?, limit?]
//     kind       "range" | "events" | "host"
//                | "lifeline" | "loadline" | "point" | "agg"  (ISSUE 8)
//     t0, t1     decimal microseconds, half-open [t0, t1)
//     predicate  event glob for "events", host name for "host", "" for
//                "range"; an encoded AnalysisSpec (analysis.hpp) for the
//                analysis kinds
//     offset     decimal record offset for pagination (default 0)
//     limit      records per page (default/cap chosen by the service)
//     reply = marshalled [next_offset, total, batch] where `batch` is a
//     concatenation of self-delimiting binary ULM records (the ISSUE-3
//     batch frame format) and `next_offset` is "" on the final page.
//
//     Analysis kinds page over analysis ELEMENTS (lifelines, buckets,
//     points, agg rows) instead of records: `batch` is a marshalled
//     string list of encoded elements, and the reply carries a 4th part —
//     the server's QueryStats (EncodeQueryStats) — so consumers see the
//     pushdown economy (bytes_scanned, segments_pruned) per query. The
//     3-part record replies are unchanged (old clients keep working).
//
//   "arch.stats"  args = []
//     reply = marshalled [name, size, segments, ingested, dropped,
//                         span_min, span_max, contents]
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "archive/analysis.hpp"
#include "archive/archive.hpp"
#include "rpc/registry.hpp"
#include "rpc/wire.hpp"

namespace jamm::archive {

inline constexpr char kQueryMethod[] = "arch.query";
inline constexpr char kStatsMethod[] = "arch.stats";

/// Conventional rpc object name for an archive: "archive.<name>".
std::string ArchiveObjectName(const std::string& archive_name);

/// Read-side rpc facade over an EventArchive. Register it resident (the
/// archive outlives calls) or wrap it in a factory for activatable use.
class ArchiveQueryService final : public rpc::RemoteObject {
 public:
  explicit ArchiveQueryService(const EventArchive& archive,
                               std::size_t default_page_records = 256);

  Result<std::string> Invoke(const std::string& method,
                             const std::vector<std::string>& args) override;

  /// Hard cap on records per reply regardless of the requested limit, so
  /// one greedy page cannot exceed the transport's frame bound.
  static constexpr std::size_t kMaxPageRecords = 4096;

 private:
  const EventArchive& archive_;
  std::size_t default_page_records_;
};

/// Register `archive` on `registry` under ArchiveObjectName(name).
Status RegisterArchiveService(rpc::Registry& registry,
                              const EventArchive& archive,
                              std::size_t default_page_records = 256);

/// Consumer-side convenience wrapper (GatewayClient-style) around the
/// arch.query protocol: pages through results transparently and decodes
/// the binary batches back into records. Built on RpcClient, so a
/// dialer-backed instance re-dials and retries across server restarts.
class ArchiveClient {
 public:
  ArchiveClient(std::unique_ptr<transport::Channel> channel,
                std::string object_name);
  /// Reconnecting client: the connection is (re-)established via
  /// `dialer`, transient failures retried under `policy`.
  ArchiveClient(rpc::RpcClient::Dialer dialer, std::string object_name,
                resilience::RetryPolicy policy = {},
                const Clock* clock = nullptr);

  Result<std::vector<ulm::Record>> QueryRange(TimePoint t0, TimePoint t1);
  Result<std::vector<ulm::Record>> QueryEvents(const std::string& event_glob,
                                               TimePoint t0, TimePoint t1);
  Result<std::vector<ulm::Record>> QueryHost(const std::string& host,
                                             TimePoint t0, TimePoint t1);

  /// Analysis accessors (ISSUE 8): the server runs the AnalysisEngine and
  /// streams back summaries, never raw records. Page-transparent like the
  /// record queries; after a successful call, last_query_stats() holds
  /// the server-side QueryStats (bytes_scanned, segments_pruned, ...).
  Result<std::vector<TraceLifeline>> QueryLifelines(const AnalysisSpec& spec,
                                                    TimePoint t0, TimePoint t1);
  Result<std::vector<LoadBucket>> QueryLoadline(const AnalysisSpec& spec,
                                                TimePoint t0, TimePoint t1);
  Result<std::vector<PointSample>> QueryPoints(const AnalysisSpec& spec,
                                               TimePoint t0, TimePoint t1);
  Result<std::vector<AggRow>> QueryAggregate(const AnalysisSpec& spec,
                                             TimePoint t0, TimePoint t1);

  /// Server-side stats of the last successful analysis query.
  const QueryStats& last_query_stats() const { return last_query_stats_; }

  struct RemoteStats {
    std::string name;
    std::uint64_t size = 0;
    std::uint64_t segments = 0;
    std::uint64_t ingested = 0;
    std::uint64_t dropped = 0;
    TimePoint span_min = 0;
    TimePoint span_max = 0;
    std::string contents;
  };
  Result<RemoteStats> Stats();

  /// Records per page to request (0 = the service's default).
  void set_page_records(std::size_t n) { page_records_ = n; }
  /// Pages fetched over this client's lifetime (tests: proves paging).
  std::uint64_t pages_fetched() const { return pages_fetched_; }

 private:
  Result<std::vector<ulm::Record>> Query(const std::string& kind,
                                         const std::string& predicate,
                                         TimePoint t0, TimePoint t1);
  /// Shared analysis pagination: collects the encoded element strings of
  /// every page (same cursor-advance guard as Query) and captures the
  /// final page's QueryStats into last_query_stats_.
  Result<std::vector<std::string>> QueryElements(const std::string& kind,
                                                 const AnalysisSpec& spec,
                                                 TimePoint t0, TimePoint t1);

  rpc::RpcClient rpc_;
  std::string object_;
  std::size_t page_records_ = 0;
  std::uint64_t pages_fetched_ = 0;
  QueryStats last_query_stats_;
};

}  // namespace jamm::archive
