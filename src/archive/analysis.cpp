#include "archive/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/strings.hpp"
#include "rpc/wire.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace jamm::archive {

namespace {

struct AnalysisTelemetry {
  telemetry::Counter& calls;
  telemetry::Histogram& query_us;
};

AnalysisTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static AnalysisTelemetry t{m.counter("archive.analysis.calls"),
                             m.histogram("archive.analysis.query_us")};
  return t;
}

/// The spec compiled to symbols. FindSymbol, never Intern: a name the
/// process never interned cannot appear in any record, so `host` with
/// `host_missing` prunes every segment instead of growing the table.
struct Compiled {
  const AnalysisSpec& spec;
  bool has_host = false;
  bool host_missing = false;
  ulm::Symbol host_sym = ulm::kEmptySymbol;
  std::optional<ulm::Symbol> value_sym;
  std::optional<ulm::Symbol> span_sym;
  std::vector<std::optional<ulm::Symbol>> id_syms;

  explicit Compiled(const AnalysisSpec& s) : spec(s) {
    if (!s.host.empty()) {
      has_host = true;
      const auto sym = ulm::FindSymbol(s.host);
      if (sym) {
        host_sym = *sym;
      } else {
        host_missing = true;
      }
    }
    if (!s.value_field.empty()) value_sym = ulm::FindSymbol(s.value_field);
    span_sym = ulm::FindSymbol(telemetry::field::kSpanId);
    id_syms.reserve(s.id_fields.size());
    for (const auto& f : s.id_fields) id_syms.push_back(ulm::FindSymbol(f));
  }

  bool Covers(const Segment& segment) const {
    if (has_host && (host_missing || !segment.ContainsHost(host_sym))) {
      return false;
    }
    return segment.MayContainEvent(spec.event_glob);
  }

  bool Matches(const ulm::RecordView& view) const {
    if (has_host && view.host_sym() != host_sym) return false;
    return spec.event_glob.empty() ||
           GlobMatch(spec.event_glob, view.event_name());
  }

  /// The lifeline join key: the id fields' values joined with '|'. Empty
  /// (= not part of any lifeline) when every id field is absent or empty.
  std::string ObjectId(const ulm::RecordView& view) const {
    std::string id;
    bool any = false;
    for (std::size_t i = 0; i < id_syms.size(); ++i) {
      if (i > 0) id += '|';
      if (!id_syms[i]) continue;
      const auto value = view.GetField(*id_syms[i]);
      if (value && !value->empty()) {
        id += *value;
        any = true;
      }
    }
    return any ? id : std::string();
  }

  /// Value extraction for loadline/point/agg: present only when the spec
  /// names a field and it parses as a double (same ParseDouble semantics
  /// as Record::GetDouble, which the brute-force parity tests use).
  std::optional<double> Value(const ulm::RecordView& view) const {
    if (!value_sym) return std::nullopt;
    auto parsed = view.GetDouble(*value_sym);
    if (!parsed.ok()) return std::nullopt;
    return *parsed;
  }
};

/// Nearest-rank percentile over an ascending-sorted vector.
double NearestRank(const std::vector<double>& sorted, int pct) {
  if (sorted.empty()) return 0;
  if (pct <= 0) return sorted.front();
  std::size_t rank =
      (static_cast<std::size_t>(pct) * sorted.size() + 99) / 100;
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// Canonical sum: ascending order, so the result is bit-identical no
/// matter how the values were partitioned across segments.
double AscendingSum(const std::vector<double>& sorted) {
  double sum = 0;
  for (double v : sorted) sum += v;
  return sum;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<std::uint64_t> ParseU64(const std::string& text, const char* what) {
  auto value = ParseInt(text);
  if (!value.ok() || *value < 0) {
    return Status::ParseError(std::string("analysis: bad ") + what + " '" +
                              text + "'");
  }
  return static_cast<std::uint64_t>(*value);
}

}  // namespace

// ------------------------------------------------------------- spec codec

std::string EncodeAnalysisSpec(const AnalysisSpec& spec) {
  std::string out;
  auto put = [&](std::string_view key, std::string_view value) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += value;
  };
  if (!spec.event_glob.empty()) put("event", spec.event_glob);
  if (!spec.host.empty()) put("host", spec.host);
  if (!spec.value_field.empty()) put("field", spec.value_field);
  if (spec.id_fields != AnalysisSpec{}.id_fields) {
    std::string joined;
    for (const auto& f : spec.id_fields) {
      if (!joined.empty()) joined += ',';
      joined += f;
    }
    put("id", joined);
  }
  if (spec.bucket != AnalysisSpec{}.bucket) {
    put("bucket", std::to_string(spec.bucket));
  }
  if (spec.percentile != AnalysisSpec{}.percentile) {
    put("pct", std::to_string(spec.percentile));
  }
  return out;
}

Result<AnalysisSpec> ParseAnalysisSpec(std::string_view text) {
  AnalysisSpec spec;
  for (const auto& token : Split(text, ' ')) {
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("analysis spec: bad token '" + token +
                                     "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "event") {
      spec.event_glob = value;
    } else if (key == "host") {
      spec.host = value;
    } else if (key == "field") {
      spec.value_field = value;
    } else if (key == "id") {
      spec.id_fields.clear();
      for (const auto& f : Split(value, ',')) {
        if (f.empty()) {
          return Status::InvalidArgument("analysis spec: empty id field");
        }
        spec.id_fields.push_back(f);
      }
      if (spec.id_fields.empty()) {
        return Status::InvalidArgument("analysis spec: empty id list");
      }
    } else if (key == "bucket") {
      auto parsed = ParseInt(value);
      if (!parsed.ok() || *parsed <= 0) {
        return Status::InvalidArgument("analysis spec: bad bucket '" + value +
                                       "'");
      }
      spec.bucket = *parsed;
    } else if (key == "pct") {
      auto parsed = ParseInt(value);
      if (!parsed.ok() || *parsed < 0 || *parsed > 100) {
        return Status::InvalidArgument("analysis spec: bad pct '" + value +
                                       "'");
      }
      spec.percentile = static_cast<int>(*parsed);
    } else {
      return Status::InvalidArgument("analysis spec: unknown key '" + key +
                                     "'");
    }
  }
  return spec;
}

// ----------------------------------------------------------------- engine

std::vector<TraceLifeline> AnalysisEngine::Lifelines(const AnalysisSpec& spec,
                                                     TimePoint t0, TimePoint t1,
                                                     QueryStats* stats) const {
  auto& tm = Instruments();
  tm.calls.Increment();
  telemetry::ScopedTimer timer(&tm.query_us);
  const Compiled c(spec);

  // Per-segment partial: (object id, hop) pairs in arrival order. The
  // id-ordered partials concatenated and stable-sorted by timestamp
  // reproduce the archive's canonical time/segment-id/arrival order, so
  // each lifeline's hop sequence is exactly the brute-force one.
  using Hops = std::vector<std::pair<std::string, LifelineHop>>;
  QueryStats local;
  auto partials = archive_.ScanPartials<Hops>(
      t0, t1, [&](const Segment& s) { return c.Covers(s); },
      [&](const Segment& segment) {
        Hops hops;
        segment.ForEachView([&](const ulm::RecordView& view) {
          if (view.timestamp() < t0 || view.timestamp() >= t1 ||
              !c.Matches(view)) {
            return;
          }
          std::string id = c.ObjectId(view);
          if (id.empty()) return;
          LifelineHop hop;
          hop.ts = view.timestamp();
          hop.event = std::string(view.event_name());
          hop.host = std::string(view.host());
          hop.prog = std::string(view.prog());
          if (c.span_sym) {
            hop.span = std::string(view.GetField(*c.span_sym).value_or(""));
          }
          hops.emplace_back(std::move(id), std::move(hop));
        });
        return hops;
      },
      &local);

  Hops all;
  for (auto& hops : partials) {
    all.insert(all.end(), std::make_move_iterator(hops.begin()),
               std::make_move_iterator(hops.end()));
  }
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second.ts < b.second.ts;
  });

  std::map<std::string, TraceLifeline> traces;  // ordered by object id
  for (auto& [id, hop] : all) {
    TraceLifeline& trace = traces[id];
    if (trace.object_id.empty()) trace.object_id = id;
    trace.hops.push_back(std::move(hop));
  }
  local.records_returned = all.size();
  if (stats) *stats = local;
  std::vector<TraceLifeline> out;
  out.reserve(traces.size());
  for (auto& [id, trace] : traces) {
    (void)id;
    out.push_back(std::move(trace));
  }
  return out;
}

std::vector<LoadBucket> AnalysisEngine::Loadline(const AnalysisSpec& spec,
                                                 TimePoint t0, TimePoint t1,
                                                 QueryStats* stats) const {
  auto& tm = Instruments();
  tm.calls.Increment();
  telemetry::ScopedTimer timer(&tm.query_us);
  const Compiled c(spec);
  const Duration width = std::max<Duration>(1, spec.bucket);

  struct Partial {
    std::uint64_t count = 0;
    std::vector<double> values;
  };
  using Grid = std::map<std::int64_t, Partial>;
  QueryStats local;
  auto partials = archive_.ScanPartials<Grid>(
      t0, t1, [&](const Segment& s) { return c.Covers(s); },
      [&](const Segment& segment) {
        Grid grid;
        segment.ForEachView([&](const ulm::RecordView& view) {
          if (view.timestamp() < t0 || view.timestamp() >= t1 ||
              !c.Matches(view)) {
            return;
          }
          Partial& bucket = grid[(view.timestamp() - t0) / width];
          ++bucket.count;
          if (const auto value = c.Value(view)) {
            bucket.values.push_back(*value);
          }
        });
        return grid;
      },
      &local);

  Grid merged;
  for (auto& grid : partials) {
    for (auto& [idx, partial] : grid) {
      Partial& into = merged[idx];
      into.count += partial.count;
      into.values.insert(into.values.end(), partial.values.begin(),
                         partial.values.end());
    }
  }
  std::vector<LoadBucket> out;
  out.reserve(merged.size());
  for (auto& [idx, partial] : merged) {
    LoadBucket bucket;
    bucket.bucket_start = t0 + idx * width;
    bucket.count = partial.count;
    local.records_returned += partial.count;
    if (!partial.values.empty()) {
      std::sort(partial.values.begin(), partial.values.end());
      bucket.value_count = partial.values.size();
      bucket.min = partial.values.front();
      bucket.max = partial.values.back();
      bucket.mean = AscendingSum(partial.values) /
                    static_cast<double>(partial.values.size());
      bucket.pct = NearestRank(partial.values, spec.percentile);
    }
    out.push_back(bucket);
  }
  if (stats) *stats = local;
  return out;
}

std::vector<PointSample> AnalysisEngine::Points(const AnalysisSpec& spec,
                                                TimePoint t0, TimePoint t1,
                                                QueryStats* stats) const {
  auto& tm = Instruments();
  tm.calls.Increment();
  telemetry::ScopedTimer timer(&tm.query_us);
  const Compiled c(spec);

  using Samples = std::vector<PointSample>;
  QueryStats local;
  auto partials = archive_.ScanPartials<Samples>(
      t0, t1, [&](const Segment& s) { return c.Covers(s); },
      [&](const Segment& segment) {
        Samples samples;
        segment.ForEachView([&](const ulm::RecordView& view) {
          if (view.timestamp() < t0 || view.timestamp() >= t1 ||
              !c.Matches(view)) {
            return;
          }
          PointSample point;
          point.ts = view.timestamp();
          if (const auto value = c.Value(view)) {
            point.has_value = true;
            point.value = *value;
          }
          samples.push_back(point);
        });
        return samples;
      },
      &local);

  Samples out;
  for (auto& samples : partials) {
    out.insert(out.end(), samples.begin(), samples.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PointSample& a, const PointSample& b) {
                     return a.ts < b.ts;
                   });
  local.records_returned = out.size();
  if (stats) *stats = local;
  return out;
}

std::vector<AggRow> AnalysisEngine::Aggregate(const AnalysisSpec& spec,
                                              TimePoint t0, TimePoint t1,
                                              QueryStats* stats) const {
  auto& tm = Instruments();
  tm.calls.Increment();
  telemetry::ScopedTimer timer(&tm.query_us);
  const Compiled c(spec);

  struct Partial {
    std::uint64_t count = 0;
    std::vector<double> values;
  };
  using Groups = std::map<std::string, Partial>;  // keyed by event name
  QueryStats local;
  auto partials = archive_.ScanPartials<Groups>(
      t0, t1, [&](const Segment& s) { return c.Covers(s); },
      [&](const Segment& segment) {
        Groups groups;
        segment.ForEachView([&](const ulm::RecordView& view) {
          if (view.timestamp() < t0 || view.timestamp() >= t1 ||
              !c.Matches(view)) {
            return;
          }
          Partial& group = groups[std::string(view.event_name())];
          ++group.count;
          if (const auto value = c.Value(view)) {
            group.values.push_back(*value);
          }
        });
        return groups;
      },
      &local);

  Groups merged;
  for (auto& groups : partials) {
    for (auto& [event, partial] : groups) {
      Partial& into = merged[event];
      into.count += partial.count;
      into.values.insert(into.values.end(), partial.values.begin(),
                         partial.values.end());
    }
  }
  std::vector<AggRow> out;
  out.reserve(merged.size());
  for (auto& [event, partial] : merged) {
    AggRow row;
    row.event = event;
    row.count = partial.count;
    local.records_returned += partial.count;
    if (!partial.values.empty()) {
      std::sort(partial.values.begin(), partial.values.end());
      row.value_count = partial.values.size();
      row.min = partial.values.front();
      row.max = partial.values.back();
      row.sum = AscendingSum(partial.values);
      row.mean = row.sum / static_cast<double>(partial.values.size());
      row.p50 = NearestRank(partial.values, 50);
      row.p95 = NearestRank(partial.values, 95);
    }
    out.push_back(std::move(row));
  }
  if (stats) *stats = local;
  return out;
}

// ------------------------------------------------- wire element codecs

std::string EncodeLifeline(const TraceLifeline& lifeline) {
  std::vector<std::string> parts;
  parts.reserve(1 + lifeline.hops.size());
  parts.push_back(lifeline.object_id);
  for (const auto& hop : lifeline.hops) {
    parts.push_back(rpc::EncodeStrings({std::to_string(hop.ts), hop.event,
                                        hop.host, hop.prog, hop.span}));
  }
  return rpc::EncodeStrings(parts);
}

Result<TraceLifeline> DecodeLifeline(std::string_view data) {
  auto parts = rpc::DecodeStrings(data);
  if (!parts.ok()) return parts.status();
  if (parts->empty()) return Status::ParseError("lifeline: empty element");
  TraceLifeline lifeline;
  lifeline.object_id = (*parts)[0];
  lifeline.hops.reserve(parts->size() - 1);
  for (std::size_t i = 1; i < parts->size(); ++i) {
    auto fields = rpc::DecodeStrings((*parts)[i]);
    if (!fields.ok()) return fields.status();
    if (fields->size() != 5) {
      return Status::ParseError("lifeline hop wants 5 parts, got " +
                                std::to_string(fields->size()));
    }
    auto ts = ParseInt((*fields)[0]);
    if (!ts.ok()) return Status::ParseError("lifeline hop: bad timestamp");
    LifelineHop hop;
    hop.ts = *ts;
    hop.event = std::move((*fields)[1]);
    hop.host = std::move((*fields)[2]);
    hop.prog = std::move((*fields)[3]);
    hop.span = std::move((*fields)[4]);
    lifeline.hops.push_back(std::move(hop));
  }
  return lifeline;
}

std::string EncodeLoadBucket(const LoadBucket& bucket) {
  return rpc::EncodeStrings(
      {std::to_string(bucket.bucket_start), std::to_string(bucket.count),
       std::to_string(bucket.value_count), FormatDouble(bucket.mean),
       FormatDouble(bucket.min), FormatDouble(bucket.max),
       FormatDouble(bucket.pct)});
}

Result<LoadBucket> DecodeLoadBucket(std::string_view data) {
  auto parts = rpc::DecodeStrings(data);
  if (!parts.ok()) return parts.status();
  if (parts->size() != 7) {
    return Status::ParseError("load bucket wants 7 parts, got " +
                              std::to_string(parts->size()));
  }
  LoadBucket bucket;
  auto start = ParseInt((*parts)[0]);
  if (!start.ok()) return Status::ParseError("load bucket: bad start");
  bucket.bucket_start = *start;
  auto count = ParseU64((*parts)[1], "bucket count");
  if (!count.ok()) return count.status();
  bucket.count = *count;
  auto vcount = ParseU64((*parts)[2], "bucket value count");
  if (!vcount.ok()) return vcount.status();
  bucket.value_count = *vcount;
  double* doubles[] = {&bucket.mean, &bucket.min, &bucket.max, &bucket.pct};
  for (std::size_t i = 0; i < 4; ++i) {
    auto parsed = ParseDouble((*parts)[i + 3]);
    if (!parsed.ok()) return Status::ParseError("load bucket: bad value");
    *doubles[i] = *parsed;
  }
  return bucket;
}

std::string EncodePointSample(const PointSample& point) {
  return rpc::EncodeStrings({std::to_string(point.ts),
                             point.has_value ? "1" : "0",
                             FormatDouble(point.value)});
}

Result<PointSample> DecodePointSample(std::string_view data) {
  auto parts = rpc::DecodeStrings(data);
  if (!parts.ok()) return parts.status();
  if (parts->size() != 3) {
    return Status::ParseError("point wants 3 parts, got " +
                              std::to_string(parts->size()));
  }
  PointSample point;
  auto ts = ParseInt((*parts)[0]);
  if (!ts.ok()) return Status::ParseError("point: bad timestamp");
  point.ts = *ts;
  if ((*parts)[1] == "1") {
    point.has_value = true;
  } else if ((*parts)[1] != "0") {
    return Status::ParseError("point: bad has_value flag");
  }
  auto value = ParseDouble((*parts)[2]);
  if (!value.ok()) return Status::ParseError("point: bad value");
  point.value = *value;
  return point;
}

std::string EncodeAggRow(const AggRow& row) {
  return rpc::EncodeStrings(
      {row.event, std::to_string(row.count), std::to_string(row.value_count),
       FormatDouble(row.sum), FormatDouble(row.mean), FormatDouble(row.min),
       FormatDouble(row.max), FormatDouble(row.p50), FormatDouble(row.p95)});
}

Result<AggRow> DecodeAggRow(std::string_view data) {
  auto parts = rpc::DecodeStrings(data);
  if (!parts.ok()) return parts.status();
  if (parts->size() != 9) {
    return Status::ParseError("agg row wants 9 parts, got " +
                              std::to_string(parts->size()));
  }
  AggRow row;
  row.event = (*parts)[0];
  auto count = ParseU64((*parts)[1], "agg count");
  if (!count.ok()) return count.status();
  row.count = *count;
  auto vcount = ParseU64((*parts)[2], "agg value count");
  if (!vcount.ok()) return vcount.status();
  row.value_count = *vcount;
  double* doubles[] = {&row.sum, &row.mean, &row.min,
                       &row.max, &row.p50,  &row.p95};
  for (std::size_t i = 0; i < 6; ++i) {
    auto parsed = ParseDouble((*parts)[i + 3]);
    if (!parsed.ok()) return Status::ParseError("agg row: bad value");
    *doubles[i] = *parsed;
  }
  return row;
}

std::string EncodeQueryStats(const QueryStats& stats) {
  return rpc::EncodeStrings({std::to_string(stats.segments_total),
                             std::to_string(stats.segments_scanned),
                             std::to_string(stats.segments_pruned),
                             std::to_string(stats.records_returned),
                             std::to_string(stats.bytes_scanned)});
}

Result<QueryStats> DecodeQueryStats(std::string_view data) {
  auto parts = rpc::DecodeStrings(data);
  if (!parts.ok()) return parts.status();
  if (parts->size() != 5) {
    return Status::ParseError("query stats wants 5 parts, got " +
                              std::to_string(parts->size()));
  }
  QueryStats stats;
  std::size_t* fields[] = {&stats.segments_total, &stats.segments_scanned,
                           &stats.segments_pruned, &stats.records_returned,
                           &stats.bytes_scanned};
  const char* names[] = {"segments_total", "segments_scanned",
                         "segments_pruned", "records_returned",
                         "bytes_scanned"};
  for (std::size_t i = 0; i < 5; ++i) {
    auto parsed = ParseU64((*parts)[i], names[i]);
    if (!parsed.ok()) return parsed.status();
    *fields[i] = static_cast<std::size_t>(*parsed);
  }
  return stats;
}

}  // namespace jamm::archive
