#include "archive/segment.hpp"

#include <array>

#include "common/strings.hpp"

namespace jamm::archive {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void Put32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Put64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t Get32(std::string_view data, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Get64(std::string_view data, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[at + i]))
         << (8 * i);
  }
  return v;
}

/// Arena reserve per expected record when pre-sizing a tail chunk; typical
/// monitoring records carry a few short field values.
constexpr std::size_t kValueBytesPerRecordHint = 64;

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Segment::IndexView(const ulm::RecordView& view) {
  if (record_count_ == 0) {
    min_ts = max_ts = view.timestamp();
  } else {
    min_ts = std::min(min_ts, view.timestamp());
    max_ts = std::max(max_ts, view.timestamp());
  }
  if (view.event_sym() == ulm::kEmptySymbol) {
    ++unnamed_count;
  } else {
    bool counted = false;
    for (auto& [sym, count] : event_counts) {
      if (sym == view.event_sym()) {
        ++count;
        counted = true;
        break;
      }
    }
    if (!counted) event_counts.emplace_back(view.event_sym(), 1);
  }
  if (!ContainsHost(view.host_sym())) hosts.push_back(view.host_sym());
  ++record_count_;
}

ulm::FlatBatch& Segment::TailChunk() {
  if (!tail_open_ || chunks.empty()) {
    chunks.emplace_back();
    if (append_reserve != 0) {
      chunks.back().Reserve(append_reserve,
                            append_reserve * kValueBytesPerRecordHint);
    }
    tail_open_ = true;
  }
  return chunks.back();
}

void Segment::Append(const ulm::RecordView& view) {
  if (!TailChunk().Append(view)) {
    tail_open_ = false;  // tail arena full (~4 GiB): rotate chunks
    if (!TailChunk().Append(view)) return;  // single unstorable record
  }
  IndexView(view);
}

void Segment::Append(const ulm::Record& rec) {
  ulm::FlatBatch* tail = &TailChunk();
  if (!tail->Append(rec)) {
    tail_open_ = false;  // tail arena full (~4 GiB): rotate chunks
    tail = &TailChunk();
    if (!tail->Append(rec)) return;  // single unstorable record
  }
  IndexView(tail->View(tail->size() - 1));
}

void Segment::AppendFlatFrame(ulm::FlatBatch&& batch) {
  if (batch.empty()) return;
  for (std::size_t i = 0; i < batch.size(); ++i) IndexView(batch.View(i));
  chunks.push_back(std::move(batch));
  tail_open_ = false;
}

void Segment::AppendFrame(std::vector<ulm::Record>&& frame) {
  if (frame.empty()) return;
  ulm::FlatBatch batch;
  batch.Reserve(frame.size(), frame.size() * kValueBytesPerRecordHint);
  for (const auto& rec : frame) {
    if (!batch.Append(rec)) {
      // Frame larger than one 4 GiB arena: splice what fits, keep going.
      AppendFlatFrame(std::move(batch));
      batch = ulm::FlatBatch();
      if (!batch.Append(rec)) continue;  // single unstorable record
    }
  }
  AppendFlatFrame(std::move(batch));
  frame.clear();
}

bool Segment::MayContainEvent(const std::string& glob) const {
  if (glob.empty()) return !empty();
  for (const auto& [sym, count] : event_counts) {
    (void)count;
    if (GlobMatch(glob, ulm::SymbolName(sym))) return true;
  }
  // Globs like "*" match even the empty event name.
  return unnamed_count > 0 && GlobMatch(glob, "");
}

void AppendFileHeader(std::string& out, std::uint32_t segment_count) {
  const std::size_t start = out.size();
  Put32(out, kArchiveMagic);
  Put32(out, kArchiveVersion);
  Put32(out, segment_count);
  Put32(out, Crc32(std::string_view(out).substr(start, 12)));
}

Result<std::uint32_t> ReadFileHeader(std::string_view data) {
  if (data.size() < kFileHeaderBytes) {
    return Status::ParseError("archive: file shorter than its header");
  }
  if (Get32(data, 0) != kArchiveMagic) {
    return Status::ParseError("archive: bad file magic");
  }
  if (Get32(data, 4) != kArchiveVersion) {
    return Status::ParseError("archive: unsupported version " +
                              std::to_string(Get32(data, 4)));
  }
  if (Get32(data, 12) != Crc32(data.substr(0, 12))) {
    return Status::ParseError("archive: file header checksum mismatch");
  }
  return Get32(data, 8);
}

void AppendSegmentBlock(const Segment& segment, std::string& out) {
  std::string payload;
  segment.ForEachView(
      [&payload](const ulm::RecordView& view) { view.EncodeBinary(payload); });
  const std::size_t start = out.size();
  Put32(out, kSegmentMagic);
  Put32(out, segment.tier);
  Put64(out, segment.id);
  Put64(out, segment.size());
  Put64(out, static_cast<std::uint64_t>(segment.min_ts));
  Put64(out, static_cast<std::uint64_t>(segment.max_ts));
  Put64(out, payload.size());
  Put32(out, Crc32(payload));
  Put32(out, Crc32(std::string_view(out).substr(start, 52)));
  out += payload;
}

BlockOutcome ReadSegmentBlock(std::string_view data, std::size_t* offset,
                              Segment* out) {
  const std::size_t at = *offset;
  if (data.size() - at < kSegmentHeaderBytes) return BlockOutcome::kTruncated;
  if (Get32(data, at + 52) != Crc32(data.substr(at, 52))) {
    // The header (and with it payload_len) is untrustworthy — there is no
    // reliable way to find the next block, so the rest of the file is lost.
    return BlockOutcome::kTruncated;
  }
  // Header integrity is now checksum-backed; magic is a sanity re-check.
  if (Get32(data, at) != kSegmentMagic) return BlockOutcome::kTruncated;
  const std::uint64_t payload_len = Get64(data, at + 40);
  if (payload_len > data.size() - at - kSegmentHeaderBytes) {
    return BlockOutcome::kTruncated;  // promised bytes never made it to disk
  }
  const std::string_view payload =
      data.substr(at + kSegmentHeaderBytes, payload_len);
  *offset = at + kSegmentHeaderBytes + payload_len;  // resynchronized
  if (Get32(data, at + 48) != Crc32(payload)) return BlockOutcome::kSkipped;
  // Decode straight into one flat chunk — no per-record Record
  // materialization on the load path.
  ulm::FlatBatch batch;
  if (!batch.DecodeBinaryStreamInto(payload).ok() ||
      batch.size() != Get64(data, at + 16)) {
    return BlockOutcome::kSkipped;
  }
  Segment segment;
  segment.id = Get64(data, at + 8);
  segment.tier = Get32(data, at + 4);
  segment.AppendFlatFrame(std::move(batch));
  // The header's time bounds must agree with the payload's; a mismatch
  // means header and payload are from different writes.
  if (!segment.empty() &&
      (segment.min_ts != static_cast<TimePoint>(Get64(data, at + 24)) ||
       segment.max_ts != static_cast<TimePoint>(Get64(data, at + 32)))) {
    return BlockOutcome::kSkipped;
  }
  *out = std::move(segment);
  return BlockOutcome::kLoaded;
}

}  // namespace jamm::archive
