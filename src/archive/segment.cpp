#include "archive/segment.hpp"

#include <array>
#include <unordered_map>

#include "common/strings.hpp"
#include "ulm/binary.hpp"

namespace jamm::archive {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void Put32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Put64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t Get32(std::string_view data, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[at + i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Get64(std::string_view data, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[at + i]))
         << (8 * i);
  }
  return v;
}

/// Arena reserve per expected record when pre-sizing a tail chunk; typical
/// monitoring records carry a few short field values.
constexpr std::size_t kValueBytesPerRecordHint = 64;

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// The smallest possible compressed record: a 1-byte timestamp delta, four
/// 1-byte dictionary indexes, and a 1-byte zero field count. Untrusted
/// counts are sanity-capped against this before any allocation.
constexpr std::uint64_t kMinCompressedRecordBytes = 6;

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Segment::IndexView(const ulm::RecordView& view) {
  if (record_count_ == 0) {
    min_ts = max_ts = view.timestamp();
  } else {
    min_ts = std::min(min_ts, view.timestamp());
    max_ts = std::max(max_ts, view.timestamp());
  }
  if (view.event_sym() == ulm::kEmptySymbol) {
    ++unnamed_count;
  } else {
    bool counted = false;
    for (auto& [sym, count] : event_counts) {
      if (sym == view.event_sym()) {
        ++count;
        counted = true;
        break;
      }
    }
    if (!counted) event_counts.emplace_back(view.event_sym(), 1);
  }
  if (!ContainsHost(view.host_sym())) hosts.push_back(view.host_sym());
  ++record_count_;
}

ulm::FlatBatch& Segment::TailChunk() {
  if (!tail_open_ || chunks.empty()) {
    chunks.emplace_back();
    if (append_reserve != 0) {
      chunks.back().Reserve(append_reserve,
                            append_reserve * kValueBytesPerRecordHint);
    }
    tail_open_ = true;
  }
  return chunks.back();
}

void Segment::Append(const ulm::RecordView& view) {
  if (!TailChunk().Append(view)) {
    tail_open_ = false;  // tail arena full (~4 GiB): rotate chunks
    if (!TailChunk().Append(view)) return;  // single unstorable record
  }
  IndexView(view);
}

void Segment::Append(const ulm::Record& rec) {
  ulm::FlatBatch* tail = &TailChunk();
  if (!tail->Append(rec)) {
    tail_open_ = false;  // tail arena full (~4 GiB): rotate chunks
    tail = &TailChunk();
    if (!tail->Append(rec)) return;  // single unstorable record
  }
  IndexView(tail->View(tail->size() - 1));
}

void Segment::AppendFlatFrame(ulm::FlatBatch&& batch) {
  if (batch.empty()) return;
  for (std::size_t i = 0; i < batch.size(); ++i) IndexView(batch.View(i));
  chunks.push_back(std::move(batch));
  tail_open_ = false;
}

void Segment::AppendFrame(std::vector<ulm::Record>&& frame) {
  if (frame.empty()) return;
  ulm::FlatBatch batch;
  batch.Reserve(frame.size(), frame.size() * kValueBytesPerRecordHint);
  for (const auto& rec : frame) {
    if (!batch.Append(rec)) {
      // Frame larger than one 4 GiB arena: splice what fits, keep going.
      AppendFlatFrame(std::move(batch));
      batch = ulm::FlatBatch();
      if (!batch.Append(rec)) continue;  // single unstorable record
    }
  }
  AppendFlatFrame(std::move(batch));
  frame.clear();
}

std::string CompressPayload(const Segment& segment) {
  using ulm::detail::PutVarint;
  // Dictionary of every distinct symbol the segment uses, in first-use
  // order. Symbols are already interned process-wide, so dictionary
  // assignment is one hash-map probe on a 4-byte id per use — never a
  // string hash. The blob stores the NAMES, so it is self-contained and
  // stable across processes with different symbol numbering.
  std::unordered_map<ulm::Symbol, std::uint32_t> index;
  std::vector<ulm::Symbol> dict;
  auto dict_id = [&](ulm::Symbol sym) {
    auto [it, fresh] = index.try_emplace(
        sym, static_cast<std::uint32_t>(dict.size()));
    if (fresh) dict.push_back(sym);
    return it->second;
  };

  // One pass assigns the dictionary and encodes the record bodies; the
  // dictionary section is prepended afterwards.
  // Timestamps are zigzag deltas from the previous record; the first
  // record's delta is from 0 (i.e. absolute), which keeps the blob
  // self-contained — DecompressPayload needs no header context.
  std::string body;
  TimePoint prev_ts = 0;
  segment.ForEachView([&](const ulm::RecordView& view) {
    // Delta in unsigned space: wraps instead of overflowing for extreme
    // timestamp pairs, and the decoder's matching unsigned add undoes it.
    PutVarint(body, ZigZag(static_cast<std::int64_t>(
                        static_cast<std::uint64_t>(view.timestamp()) -
                        static_cast<std::uint64_t>(prev_ts))));
    prev_ts = view.timestamp();
    PutVarint(body, dict_id(view.host_sym()));
    PutVarint(body, dict_id(view.prog_sym()));
    PutVarint(body, dict_id(view.lvl_sym()));
    PutVarint(body, dict_id(view.event_sym()));
    PutVarint(body, view.field_count());
    for (std::uint32_t i = 0; i < view.field_count(); ++i) {
      PutVarint(body, dict_id(view.field_key(i)));
      const std::string_view value = view.field_value(i);
      PutVarint(body, value.size());
      body += value;
    }
  });

  std::string blob;
  PutVarint(blob, segment.size());
  PutVarint(blob, dict.size());
  for (ulm::Symbol sym : dict) {
    const std::string_view name = ulm::SymbolName(sym);
    PutVarint(blob, name.size());
    blob += name;
  }
  blob += body;
  return blob;
}

Status DecompressPayload(std::string_view blob, ulm::FlatBatch& out) {
  using ulm::detail::GetVarint;
  auto corrupt = [](const char* what) {
    return Status::ParseError(std::string("compressed segment: ") + what);
  };
  std::size_t i = 0;
  std::uint64_t record_count = 0, dict_n = 0;
  if (!GetVarint(blob, i, record_count)) return corrupt("short record count");
  if (!GetVarint(blob, i, dict_n)) return corrupt("short dictionary count");
  // Every dictionary entry costs at least its 1-byte length prefix, so a
  // count beyond the remaining bytes is garbage — reject before reserving.
  if (dict_n > blob.size() - i) return corrupt("oversized dictionary");
  std::vector<ulm::Symbol> dict;
  dict.reserve(static_cast<std::size_t>(dict_n));
  for (std::uint64_t d = 0; d < dict_n; ++d) {
    std::uint64_t len = 0;
    if (!GetVarint(blob, i, len)) return corrupt("short dictionary entry");
    if (len > blob.size() - i) return corrupt("dictionary entry overruns");
    dict.push_back(ulm::InternSymbol(blob.substr(i, len)));
    i += len;
  }
  if (record_count > (blob.size() - i) / kMinCompressedRecordBytes) {
    return corrupt("record count exceeds payload");
  }

  auto dict_sym = [&](std::uint64_t idx, ulm::Symbol* sym) {
    if (idx >= dict.size()) return false;
    *sym = dict[static_cast<std::size_t>(idx)];
    return true;
  };
  ulm::FlatRecord scratch;
  std::int64_t prev_ts = 0;  // mirrors the encoder: first delta is absolute
  for (std::uint64_t r = 0; r < record_count; ++r) {
    scratch.Clear();
    std::uint64_t delta = 0;
    if (!GetVarint(blob, i, delta)) return corrupt("short timestamp delta");
    prev_ts = static_cast<std::int64_t>(static_cast<std::uint64_t>(prev_ts) +
                                        static_cast<std::uint64_t>(
                                            UnZigZag(delta)));
    scratch.set_timestamp(prev_ts);
    std::uint64_t idx = 0;
    ulm::Symbol sym = ulm::kEmptySymbol;
    if (!GetVarint(blob, i, idx) || !dict_sym(idx, &sym)) {
      return corrupt("bad host index");
    }
    scratch.set_host_sym(sym);
    if (!GetVarint(blob, i, idx) || !dict_sym(idx, &sym)) {
      return corrupt("bad prog index");
    }
    scratch.set_prog_sym(sym);
    if (!GetVarint(blob, i, idx) || !dict_sym(idx, &sym)) {
      return corrupt("bad lvl index");
    }
    scratch.set_lvl_sym(sym);
    if (!GetVarint(blob, i, idx) || !dict_sym(idx, &sym)) {
      return corrupt("bad event index");
    }
    scratch.set_event_sym(sym);
    std::uint64_t nfields = 0;
    if (!GetVarint(blob, i, nfields)) return corrupt("short field count");
    // A field is at least a key index, a length, and no bytes.
    if (nfields > (blob.size() - i) / 2) return corrupt("oversized fields");
    for (std::uint64_t f = 0; f < nfields; ++f) {
      if (!GetVarint(blob, i, idx) || !dict_sym(idx, &sym)) {
        return corrupt("bad field key index");
      }
      std::uint64_t len = 0;
      if (!GetVarint(blob, i, len)) return corrupt("short field value");
      if (len > blob.size() - i) return corrupt("field value overruns");
      scratch.AddFieldUnchecked(sym, blob.substr(i, len));
      i += len;
    }
    if (!out.Append(scratch.View())) return corrupt("batch arena overflow");
  }
  if (i != blob.size()) return corrupt("trailing bytes after records");
  return Status::Ok();
}

void Segment::Compress() {
  if (!compressed.empty() || record_count_ == 0) return;
  compressed = CompressPayload(*this);
  chunks.clear();
  tail_open_ = false;
}

std::size_t Segment::StorageBytes() const {
  if (!compressed.empty()) return compressed.size();
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.footprint_bytes();
  return total;
}

bool Segment::DecompressScratch(ulm::FlatBatch& scratch) const {
  return DecompressPayload(compressed, scratch).ok() &&
         scratch.size() == record_count_;
}

bool Segment::MayContainEvent(const std::string& glob) const {
  if (glob.empty()) return !empty();
  for (const auto& [sym, count] : event_counts) {
    (void)count;
    if (GlobMatch(glob, ulm::SymbolName(sym))) return true;
  }
  // Globs like "*" match even the empty event name.
  return unnamed_count > 0 && GlobMatch(glob, "");
}

void AppendFileHeader(std::string& out, std::uint32_t segment_count) {
  const std::size_t start = out.size();
  Put32(out, kArchiveMagic);
  Put32(out, kArchiveVersion);
  Put32(out, segment_count);
  Put32(out, Crc32(std::string_view(out).substr(start, 12)));
}

Result<std::uint32_t> ReadFileHeader(std::string_view data) {
  if (data.size() < kFileHeaderBytes) {
    return Status::ParseError("archive: file shorter than its header");
  }
  if (Get32(data, 0) != kArchiveMagic) {
    return Status::ParseError("archive: bad file magic");
  }
  if (Get32(data, 4) != kArchiveVersion) {
    return Status::ParseError("archive: unsupported version " +
                              std::to_string(Get32(data, 4)));
  }
  if (Get32(data, 12) != Crc32(data.substr(0, 12))) {
    return Status::ParseError("archive: file header checksum mismatch");
  }
  return Get32(data, 8);
}

void AppendSegmentBlock(const Segment& segment, std::string& out) {
  // A compressed segment persists its resting blob verbatim as a SEG2
  // payload — no decompress/re-encode — which is what makes
  // save → load → save byte-stable in the compressed state too.
  std::string payload;
  if (!segment.compressed.empty()) {
    payload = segment.compressed;
  } else {
    segment.ForEachView([&payload](const ulm::RecordView& view) {
      view.EncodeBinary(payload);
    });
  }
  const std::size_t start = out.size();
  Put32(out, segment.compressed.empty() ? kSegmentMagic : kSegmentMagicV2);
  Put32(out, segment.tier);
  Put64(out, segment.id);
  Put64(out, segment.size());
  Put64(out, static_cast<std::uint64_t>(segment.min_ts));
  Put64(out, static_cast<std::uint64_t>(segment.max_ts));
  Put64(out, payload.size());
  Put32(out, Crc32(payload));
  Put32(out, Crc32(std::string_view(out).substr(start, 52)));
  out += payload;
}

BlockOutcome ReadSegmentBlock(std::string_view data, std::size_t* offset,
                              Segment* out) {
  const std::size_t at = *offset;
  if (data.size() - at < kSegmentHeaderBytes) return BlockOutcome::kTruncated;
  if (Get32(data, at + 52) != Crc32(data.substr(at, 52))) {
    // The header (and with it payload_len) is untrustworthy — there is no
    // reliable way to find the next block, so the rest of the file is lost.
    return BlockOutcome::kTruncated;
  }
  // Header integrity is now checksum-backed; magic is a sanity re-check.
  const std::uint32_t magic = Get32(data, at);
  if (magic != kSegmentMagic && magic != kSegmentMagicV2) {
    return BlockOutcome::kTruncated;
  }
  const std::uint64_t payload_len = Get64(data, at + 40);
  if (payload_len > data.size() - at - kSegmentHeaderBytes) {
    return BlockOutcome::kTruncated;  // promised bytes never made it to disk
  }
  const std::string_view payload =
      data.substr(at + kSegmentHeaderBytes, payload_len);
  *offset = at + kSegmentHeaderBytes + payload_len;  // resynchronized
  if (Get32(data, at + 48) != Crc32(payload)) return BlockOutcome::kSkipped;
  // Decode straight into one flat chunk — no per-record Record
  // materialization on the load path. SEG2 runs the hardened compressed
  // decoder instead of the binary-ULM stream decoder; either way a decode
  // failure or a record-count mismatch skips just this block.
  ulm::FlatBatch batch;
  if (magic == kSegmentMagicV2) {
    if (!DecompressPayload(payload, batch).ok()) return BlockOutcome::kSkipped;
  } else if (!batch.DecodeBinaryStreamInto(payload).ok()) {
    return BlockOutcome::kSkipped;
  }
  if (batch.size() != Get64(data, at + 16)) return BlockOutcome::kSkipped;
  Segment segment;
  segment.id = Get64(data, at + 8);
  segment.tier = Get32(data, at + 4);
  segment.AppendFlatFrame(std::move(batch));
  // The header's time bounds must agree with the payload's; a mismatch
  // means header and payload are from different writes.
  if (!segment.empty() &&
      (segment.min_ts != static_cast<TimePoint>(Get64(data, at + 24)) ||
       segment.max_ts != static_cast<TimePoint>(Get64(data, at + 32)))) {
    return BlockOutcome::kSkipped;
  }
  if (magic == kSegmentMagicV2) {
    // Validated: return the segment to its compressed resting state,
    // keeping the payload bytes verbatim (indexes/min/max were just built
    // from the decoded records above).
    segment.compressed.assign(payload.data(), payload.size());
    segment.chunks.clear();
    segment.chunks.shrink_to_fit();
  }
  *out = std::move(segment);
  return BlockOutcome::kLoaded;
}

}  // namespace jamm::archive
