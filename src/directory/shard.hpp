// Online shard migration (ISSUE 9): split a hot subtree off a directory
// server onto another server while reads and writes continue.
//
// The migration runs in phases, each advanced by Step() so a driver (or a
// chaos schedule) can interleave traffic, crashes, and syncs:
//
//   kCopy     — bulk-copy the subtree snapshot to the target in batches,
//               parents-first. The source stays authoritative; writes and
//               renewals keep landing there.
//   kCatchUp  — ship the source changes that arrived since the copy began
//               (filtered to the subtree), repeatedly, until a pass finds
//               the delta drained.
//   kCutover  — source.CutoverSubtree(): one atomic snapshot swap installs
//               the referral and drops the local copies, returning the
//               final authoritative entries (current leases included),
//               which are flushed to the target. From this instant the
//               source answers the subtree with a referral and the pool
//               chases it; no read ever finds neither.
//   kDone
//
// A source crash mid-migration is safe: nothing about the migration is
// acked to anyone until the cutover commits, and the cutover itself is a
// WAL-logged transaction — after Restart() the source either still owns
// the subtree (cutover never committed; re-run the migration) or the
// referral is durable (migration complete).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "directory/replication.hpp"
#include "directory/server.hpp"

namespace jamm::directory {

struct MigrationOptions {
  std::size_t copy_batch = 512;  // entries copied per kCopy step
};

class ShardMigrator {
 public:
  enum class Phase { kCopy, kCatchUp, kCutover, kDone };

  using Options = MigrationOptions;

  /// Move `subtree` from `source` to `target`. The target's suffix must
  /// cover the subtree (typically the target is created with the subtree
  /// as its suffix).
  ShardMigrator(std::shared_ptr<DirectoryServer> source,
                std::shared_ptr<DirectoryServer> target, Dn subtree,
                Options options = {});

  /// Advance one phase chunk (one copy batch, one catch-up pass, or the
  /// cutover). Returns the phase now current. A failed step (e.g. the
  /// source crashed mid-copy) leaves the phase unchanged; call Step()
  /// again once the server is back.
  Result<Phase> Step();

  /// Step() until kDone.
  Status Run();

  Phase phase() const { return phase_; }

  struct Stats {
    std::uint64_t copied = 0;       // entries shipped during kCopy
    std::uint64_t caught_up = 0;    // delta changes shipped during kCatchUp
    std::uint64_t moved_final = 0;  // entries in the cutover flush
    std::uint64_t steps = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  Status StepCopy();
  Status StepCatchUp();
  Status StepCutover();

  std::shared_ptr<DirectoryServer> source_;
  std::shared_ptr<DirectoryServer> target_;
  Dn subtree_;
  Options options_;
  Phase phase_ = Phase::kCopy;
  Stats stats_;

  bool copy_started_ = false;
  std::vector<Entry> copy_list_;   // subtree snapshot, parents-first
  std::size_t copy_cursor_ = 0;
  std::uint64_t catchup_seq_ = 0;  // last source seq shipped
};

}  // namespace jamm::directory
