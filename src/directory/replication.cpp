#include "directory/replication.hpp"

#include <algorithm>
#include <set>

#include "directory/wal.hpp"
#include "telemetry/metrics.hpp"

namespace jamm::directory {

namespace {

constexpr std::size_t kShipBatch = 256;  // changes per replication batch

struct PoolTelemetry {
  telemetry::Counter& write_failovers;
  telemetry::Counter& writes_unavailable;
  telemetry::Counter& breaker_skips;
  telemetry::Counter& referral_chases;
  telemetry::Counter& referral_cache_hits;
};

PoolTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static PoolTelemetry t{m.counter("directory.pool.write_failovers"),
                         m.counter("directory.pool.writes_unavailable"),
                         m.counter("directory.pool.breaker_skips"),
                         m.counter("directory.pool.referral_chases"),
                         m.counter("directory.pool.referral_cache_hits")};
  return t;
}

struct ReplicaTelemetry {
  telemetry::Counter& lagging;
  telemetry::Counter& resynced;
};

ReplicaTelemetry& ReplicaInstruments() {
  auto& m = telemetry::Metrics();
  static ReplicaTelemetry t{m.counter("dir.replica.lagging"),
                            m.counter("dir.replica.resynced")};
  return t;
}

}  // namespace

// ----------------------------------------------------------- Replicator

void Replicator::AddReplica(std::shared_ptr<DirectoryServer> replica) {
  replicas_.push_back({std::move(replica), 0, 0, 0, 0, false});
}

std::size_t Replicator::SyncAll() {
  const std::uint64_t head = primary_->last_seq();
  std::size_t applied = 0;
  for (auto& tracked : replicas_) {
    const bool has_lag = tracked.applied_seq < head;
    if (!tracked.server->alive()) {
      // Unreachable: re-probe with exponential backoff (skip 1, 2, 4, ...
      // sync rounds, capped) instead of silently skipping forever, and
      // account the lag while it lasts.
      if (has_lag) {
        tracked.behind = true;
        ReplicaInstruments().lagging.Increment();
      }
      if (tracked.skip_rounds > 0) {
        --tracked.skip_rounds;
        continue;
      }
      tracked.misses = std::min<std::uint32_t>(tracked.misses + 1, 16);
      tracked.skip_rounds =
          std::min<std::uint32_t>(1u << std::min<std::uint32_t>(
                                      tracked.misses - 1, 15),
                                  max_backoff_rounds_);
      continue;
    }
    // Back up: any backoff budget is void — probe now.
    tracked.skip_rounds = 0;
    // Ship committed frames in batches from the replica's offset.
    bool push_failed = false;
    for (;;) {
      std::uint64_t next = tracked.offset;
      auto batch =
          primary_->wal().ReadFrom(tracked.offset, kShipBatch, &next);
      if (batch.empty()) {
        tracked.offset = next;  // clamp if the primary's log shrank
        break;
      }
      // A reset offset may re-ship frames the replica already has.
      std::vector<Change> fresh;
      fresh.reserve(batch.size());
      for (auto& change : batch) {
        if (change.seq > tracked.applied_seq) fresh.push_back(std::move(change));
      }
      std::size_t batch_applied = 0;
      Status status = fresh.empty()
                          ? Status::Ok()
                          : tracked.server->ApplyReplicatedBatch(
                                fresh, &batch_applied);
      applied += batch_applied;
      if (batch_applied > 0) {
        tracked.applied_seq = fresh[batch_applied - 1].seq;
      }
      if (!status.ok()) {
        push_failed = true;
        break;  // keep ordering; retry from this offset next sync
      }
      tracked.offset = next;
    }
    if (push_failed) {
      tracked.misses = std::min<std::uint32_t>(tracked.misses + 1, 16);
      tracked.skip_rounds =
          std::min<std::uint32_t>(1u << std::min<std::uint32_t>(
                                      tracked.misses - 1, 15),
                                  max_backoff_rounds_);
      tracked.behind = true;
      ReplicaInstruments().lagging.Increment();
    } else {
      tracked.misses = 0;
      tracked.skip_rounds = 0;
      if (tracked.behind && tracked.applied_seq >= primary_->last_seq()) {
        tracked.behind = false;
        ReplicaInstruments().resynced.Increment();
      }
    }
  }
  return applied;
}

bool Replicator::Converged() const {
  const std::uint64_t head = primary_->last_seq();
  for (const auto& tracked : replicas_) {
    if (tracked.server->alive() && tracked.applied_seq < head) return false;
  }
  return true;
}

std::uint64_t Replicator::QuorumSeq() const {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(replicas_.size() + 1);
  seqs.push_back(primary_->last_seq());
  for (const auto& tracked : replicas_) seqs.push_back(tracked.applied_seq);
  std::sort(seqs.begin(), seqs.end(), std::greater<>());
  // seqs[k-1] is held by at least k members; a majority is n/2 + 1.
  const std::size_t majority = seqs.size() / 2 + 1;
  return seqs[majority - 1];
}

// -------------------------------------------------------- DirectoryPool

void DirectoryPool::AddServer(std::shared_ptr<DirectoryServer> server) {
  servers_.push_back(std::move(server));
  breakers_.push_back(
      breaker_clock_ ? std::make_unique<resilience::CircuitBreaker>(
                           breaker_policy_, *breaker_clock_)
                     : nullptr);
}

void DirectoryPool::SetBreakerPolicy(const resilience::BreakerPolicy& policy,
                                     const Clock& clock) {
  breaker_policy_ = policy;
  breaker_clock_ = &clock;
  for (auto& breaker : breakers_) {
    breaker = std::make_unique<resilience::CircuitBreaker>(policy, clock);
  }
}

void DirectoryPool::SetResolver(Resolver resolver) {
  resolver_ = std::move(resolver);
}

void DirectoryPool::SetReferralCacheTtl(Duration ttl, const Clock& clock) {
  referral_ttl_ = ttl;
  referral_clock_ = &clock;
}

bool DirectoryPool::AllowServer(std::size_t i) {
  if (!breakers_[i]) return true;
  if (breakers_[i]->Allow()) return true;
  Instruments().breaker_skips.Increment();
  return false;
}

void DirectoryPool::RecordOutcome(std::size_t i, const Status& status) {
  if (!breakers_[i]) return;
  if (status.code() == StatusCode::kUnavailable) {
    breakers_[i]->RecordFailure();
  } else {
    breakers_[i]->RecordSuccess();
  }
}

std::shared_ptr<DirectoryServer> DirectoryPool::Resolve(
    const std::string& address) const {
  for (const auto& server : servers_) {
    if (server->address() == address) return server;
  }
  if (resolver_) return resolver_(address);
  return nullptr;
}

std::shared_ptr<DirectoryServer> DirectoryPool::CachedRoute(const Dn& dn) {
  const TimePoint now = referral_clock_ ? referral_clock_->Now() : 0;
  const Route* best = nullptr;
  for (auto it = referral_cache_.begin(); it != referral_cache_.end();) {
    if (it->second.expires != 0 && it->second.expires <= now) {
      it = referral_cache_.erase(it);  // lease-driven invalidation
      continue;
    }
    if (dn.IsUnder(it->second.suffix) &&
        (best == nullptr ||
         it->second.suffix.depth() > best->suffix.depth())) {
      best = &it->second;
    }
    ++it;
  }
  if (best == nullptr) return nullptr;
  auto server = Resolve(best->target);
  if (server) Instruments().referral_cache_hits.Increment();
  return server;
}

void DirectoryPool::CacheRoute(const Dn& suffix, const std::string& target) {
  if (referral_clock_ == nullptr || referral_ttl_ <= 0) return;
  referral_cache_[suffix.ToString()] =
      Route{suffix, target, referral_clock_->Now() + referral_ttl_};
}

void DirectoryPool::DropRoutesTo(const std::string& target) {
  for (auto it = referral_cache_.begin(); it != referral_cache_.end();) {
    if (it->second.target == target) it = referral_cache_.erase(it);
    else ++it;
  }
}

Result<Entry> DirectoryPool::Lookup(const Dn& dn,
                                    const std::string& principal,
                                    bool live_only) {
  // A cached shard route short-circuits the failover loop entirely.
  if (auto routed = CachedRoute(dn)) {
    auto result = routed->Lookup(dn, principal, live_only);
    if (result.ok()) {
      last_served_by_ = routed->address();
      return result;
    }
    if (result.status().code() == StatusCode::kUnavailable) {
      DropRoutesTo(routed->address());  // stale route; fall back to the pool
    }
  }
  Status last = Status::Unavailable("directory pool empty");
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!AllowServer(i)) continue;
    auto result = servers_[i]->Lookup(dn, principal, live_only);
    RecordOutcome(i, result.ok() ? Status::Ok() : result.status());
    if (result.status().code() == StatusCode::kUnavailable) {
      last = result.status();
      continue;
    }
    last_served_by_ = servers_[i]->address();
    if (!result.ok() && result.status().code() == StatusCode::kNotFound) {
      // The entry may live on another shard: chase the referral chain.
      auto ref = servers_[i]->MatchReferral(dn);
      for (std::size_t depth = 0; ref && depth < kMaxChase; ++depth) {
        auto target = Resolve(ref->target);
        if (!target) break;
        Instruments().referral_chases.Increment();
        auto chased = target->Lookup(dn, principal, live_only);
        if (chased.ok()) {
          CacheRoute(ref->suffix, ref->target);
          last_served_by_ = target->address();
          return chased;
        }
        if (chased.status().code() != StatusCode::kNotFound) break;
        auto next = target->MatchReferral(dn);
        // A shard pointing back at itself (or nowhere) ends the chase.
        if (next && next->target == ref->target) break;
        ref = next;
      }
    }
    return result;
  }
  return last;
}

Result<SearchResult> DirectoryPool::Search(const Dn& base, SearchScope scope,
                                           const Filter& filter,
                                           const std::string& principal,
                                           bool live_only) {
  Status last = Status::Unavailable("directory pool empty");
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!AllowServer(i)) continue;
    auto result = servers_[i]->Search(base, scope, filter, principal,
                                      live_only);
    RecordOutcome(i, result.ok() ? Status::Ok() : result.status());
    if (result.status().code() == StatusCode::kUnavailable) {
      last = result.status();
      continue;
    }
    last_served_by_ = servers_[i]->address();
    if (result.ok() && !result->referrals.empty()) {
      // Chase continuation references across shards: merge the remote
      // results, dedup by DN, and drop each referral we resolved.
      SearchResult merged = *std::move(result);
      std::set<std::string> seen;
      for (const Entry& entry : merged.entries) {
        seen.insert(entry.dn().ToString());
      }
      std::vector<Referral> pending = std::move(merged.referrals);
      merged.referrals.clear();
      std::set<std::string> visited;
      std::size_t chased = 0;
      while (!pending.empty() && chased < kMaxChase) {
        Referral ref = std::move(pending.back());
        pending.pop_back();
        if (!visited.insert(ref.target).second) continue;
        auto target = Resolve(ref.target);
        if (!target) {
          merged.referrals.push_back(std::move(ref));
          continue;
        }
        Instruments().referral_chases.Increment();
        ++chased;
        auto remote = target->Search(base, scope, filter, principal,
                                     live_only);
        if (!remote.ok()) {
          merged.referrals.push_back(std::move(ref));
          continue;
        }
        CacheRoute(ref.suffix, ref.target);
        for (Entry& entry : remote->entries) {
          if (seen.insert(entry.dn().ToString()).second) {
            merged.entries.push_back(std::move(entry));
          }
        }
        for (Referral& further : remote->referrals) {
          pending.push_back(std::move(further));
        }
      }
      for (Referral& ref : pending) merged.referrals.push_back(std::move(ref));
      std::sort(merged.entries.begin(), merged.entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.dn().ToString() < b.dn().ToString();
                });
      return merged;
    }
    return result;
  }
  return last;
}

Status DirectoryPool::WriteOp(
    const std::function<Status(DirectoryServer&)>& op) {
  if (servers_.empty()) return Status::Unavailable("directory pool empty");
  Status last = Status::Unavailable("all directory servers unavailable");
  // Try the current write primary first; if it is down, promote the most
  // caught-up live candidate (highest last_seq — the quorum-election
  // winner) so no acked write is rolled back by electing a stale replica.
  std::vector<std::size_t> order;
  order.reserve(servers_.size());
  order.push_back(write_index_);
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (i != write_index_) candidates.push_back(i);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](std::size_t a, std::size_t b) {
                     return servers_[a]->last_seq() > servers_[b]->last_seq();
                   });
  order.insert(order.end(), candidates.begin(), candidates.end());
  for (std::size_t i : order) {
    if (!AllowServer(i)) continue;
    Status status = op(*servers_[i]);
    RecordOutcome(i, status);
    if (status.code() == StatusCode::kUnavailable) {
      last = status;
      continue;
    }
    if (i != write_index_) {
      write_index_ = i;
      Instruments().write_failovers.Increment();
    }
    last_served_by_ = servers_[i]->address();
    return status;
  }
  Instruments().writes_unavailable.Increment();
  return last;
}

Status DirectoryPool::ChaseWrite(
    const Referral& first, const Dn& dn,
    const std::function<Status(DirectoryServer&)>& op) {
  std::optional<Referral> ref = first;
  for (std::size_t depth = 0; ref && depth < kMaxChase; ++depth) {
    auto target = Resolve(ref->target);
    if (!target) break;
    Instruments().referral_chases.Increment();
    Status status = op(*target);
    if (status.code() == StatusCode::kAborted) {
      auto next = target->MatchReferral(dn);
      if (next && next->target == ref->target) break;
      ref = next;
      continue;
    }
    if (status.ok()) {
      CacheRoute(ref->suffix, ref->target);
      last_served_by_ = target->address();
    }
    return status;
  }
  return Status::Aborted("unresolvable referral for " + dn.ToString());
}

Status DirectoryPool::Upsert(const Entry& entry,
                             const std::string& principal) {
  const auto op = [&](DirectoryServer& server) {
    return server.Upsert(entry, principal);
  };
  if (auto routed = CachedRoute(entry.dn())) {
    Status status = op(*routed);
    if (status.ok()) {
      last_served_by_ = routed->address();
      return status;
    }
    DropRoutesTo(routed->address());  // stale route; retry through the pool
  }
  Status status = WriteOp(op);
  if (status.code() == StatusCode::kAborted) {
    // The write primary referred the subtree away — follow it.
    auto ref = servers_[write_index_]->MatchReferral(entry.dn());
    if (ref) return ChaseWrite(*ref, entry.dn(), op);
  }
  return status;
}

Status DirectoryPool::UpsertBatch(const std::vector<Entry>& entries,
                                  const std::string& principal) {
  Status status = WriteOp([&](DirectoryServer& server) {
    return server.UpsertBatch(entries, principal);
  });
  if (status.code() != StatusCode::kAborted) return status;
  // Some entries straddle a shard boundary: fall back to per-entry
  // upserts, each chasing its own referral.
  for (const Entry& entry : entries) {
    JAMM_RETURN_IF_ERROR(Upsert(entry, principal));
  }
  return Status::Ok();
}

Status DirectoryPool::Delete(const Dn& dn, const std::string& principal) {
  const auto op = [&](DirectoryServer& server) {
    return server.Delete(dn, principal);
  };
  if (auto routed = CachedRoute(dn)) {
    Status status = op(*routed);
    if (status.ok()) {
      last_served_by_ = routed->address();
      return status;
    }
    DropRoutesTo(routed->address());
  }
  Status status = WriteOp(op);
  if (status.code() == StatusCode::kAborted) {
    auto ref = servers_[write_index_]->MatchReferral(dn);
    if (ref) return ChaseWrite(*ref, dn, op);
  }
  return status;
}

Result<std::size_t> DirectoryPool::RenewLeases(const std::vector<Dn>& dns,
                                               TimePoint expiry,
                                               const std::string& principal,
                                               std::vector<Dn>* missing) {
  std::size_t renewed = 0;
  std::vector<Dn> unplaced;
  Status status = WriteOp([&](DirectoryServer& server) {
    // A failover retry must not double-report: reset the out-params so
    // only the server that actually took the batch contributes.
    renewed = 0;
    unplaced.clear();
    auto result = server.RenewLeases(dns, expiry, principal, &unplaced);
    if (!result.ok()) return result.status();
    renewed = *result;
    return Status::Ok();
  });
  if (!status.ok()) return status;
  // DNs the primary doesn't hold may live on other shards: group them per
  // referral target and renew there in one batch each.
  if (!unplaced.empty() && !servers_.empty()) {
    auto& primary = *servers_[write_index_];
    std::map<std::string, std::pair<Referral, std::vector<Dn>>> groups;
    std::vector<Dn> leftovers;
    for (Dn& dn : unplaced) {
      std::shared_ptr<DirectoryServer> routed = CachedRoute(dn);
      std::optional<Referral> ref;
      if (!routed) {
        ref = primary.MatchReferral(dn);
        if (ref) routed = Resolve(ref->target);
      }
      if (routed) {
        auto& group = groups[routed->address()];
        if (ref) group.first = *ref;
        group.second.push_back(std::move(dn));
      } else {
        leftovers.push_back(std::move(dn));
      }
    }
    for (auto& [address, group] : groups) {
      auto target = Resolve(address);
      if (!target) {
        for (Dn& dn : group.second) leftovers.push_back(std::move(dn));
        continue;
      }
      Instruments().referral_chases.Increment();
      std::vector<Dn> shard_missing;
      auto result =
          target->RenewLeases(group.second, expiry, principal, &shard_missing);
      if (!result.ok()) {
        for (Dn& dn : group.second) leftovers.push_back(std::move(dn));
        continue;
      }
      renewed += *result;
      if (!group.first.target.empty()) {
        CacheRoute(group.first.suffix, group.first.target);
      }
      for (Dn& dn : shard_missing) leftovers.push_back(std::move(dn));
    }
    unplaced = std::move(leftovers);
  }
  if (missing) *missing = std::move(unplaced);
  return renewed;
}

std::string DirectoryPool::write_primary() const {
  if (servers_.empty()) return "";
  return servers_[write_index_]->address();
}

}  // namespace jamm::directory
