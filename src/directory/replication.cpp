#include "directory/replication.hpp"

namespace jamm::directory {

void Replicator::AddReplica(std::shared_ptr<DirectoryServer> replica) {
  replicas_.push_back({std::move(replica), 0});
}

std::size_t Replicator::SyncAll() {
  std::size_t applied = 0;
  for (auto& tracked : replicas_) {
    if (!tracked.server->alive()) continue;
    for (const auto& change : primary_->ChangesSince(tracked.applied_seq)) {
      if (tracked.server->ApplyReplicated(change).ok()) {
        tracked.applied_seq = change.seq;
        ++applied;
      } else {
        break;  // keep ordering; retry from this change next sync
      }
    }
  }
  return applied;
}

bool Replicator::Converged() const {
  const std::uint64_t head = primary_->last_seq();
  for (const auto& tracked : replicas_) {
    if (tracked.server->alive() && tracked.applied_seq < head) return false;
  }
  return true;
}

void DirectoryPool::AddServer(std::shared_ptr<DirectoryServer> server) {
  servers_.push_back(std::move(server));
}

Result<Entry> DirectoryPool::Lookup(const Dn& dn,
                                    const std::string& principal) {
  Status last = Status::Unavailable("directory pool empty");
  for (const auto& server : servers_) {
    auto result = server->Lookup(dn, principal);
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      last_served_by_ = server->address();
      return result;
    }
    last = result.status();
  }
  return last;
}

Result<SearchResult> DirectoryPool::Search(const Dn& base, SearchScope scope,
                                           const Filter& filter,
                                           const std::string& principal) {
  Status last = Status::Unavailable("directory pool empty");
  for (const auto& server : servers_) {
    auto result = server->Search(base, scope, filter, principal);
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      last_served_by_ = server->address();
      return result;
    }
    last = result.status();
  }
  return last;
}

Status DirectoryPool::Upsert(const Entry& entry,
                             const std::string& principal) {
  if (servers_.empty()) return Status::Unavailable("directory pool empty");
  return servers_.front()->Upsert(entry, principal);
}

Status DirectoryPool::Delete(const Dn& dn, const std::string& principal) {
  if (servers_.empty()) return Status::Unavailable("directory pool empty");
  return servers_.front()->Delete(dn, principal);
}

}  // namespace jamm::directory
