#include "directory/replication.hpp"

#include "telemetry/metrics.hpp"

namespace jamm::directory {

namespace {

struct PoolTelemetry {
  telemetry::Counter& write_failovers;
  telemetry::Counter& writes_unavailable;
  telemetry::Counter& breaker_skips;
};

PoolTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static PoolTelemetry t{m.counter("directory.pool.write_failovers"),
                         m.counter("directory.pool.writes_unavailable"),
                         m.counter("directory.pool.breaker_skips")};
  return t;
}

}  // namespace

void Replicator::AddReplica(std::shared_ptr<DirectoryServer> replica) {
  replicas_.push_back({std::move(replica), 0});
}

std::size_t Replicator::SyncAll() {
  std::size_t applied = 0;
  for (auto& tracked : replicas_) {
    if (!tracked.server->alive()) continue;
    for (const auto& change : primary_->ChangesSince(tracked.applied_seq)) {
      if (tracked.server->ApplyReplicated(change).ok()) {
        tracked.applied_seq = change.seq;
        ++applied;
      } else {
        break;  // keep ordering; retry from this change next sync
      }
    }
  }
  return applied;
}

bool Replicator::Converged() const {
  const std::uint64_t head = primary_->last_seq();
  for (const auto& tracked : replicas_) {
    if (tracked.server->alive() && tracked.applied_seq < head) return false;
  }
  return true;
}

void DirectoryPool::AddServer(std::shared_ptr<DirectoryServer> server) {
  servers_.push_back(std::move(server));
  breakers_.push_back(
      breaker_clock_ ? std::make_unique<resilience::CircuitBreaker>(
                           breaker_policy_, *breaker_clock_)
                     : nullptr);
}

void DirectoryPool::SetBreakerPolicy(const resilience::BreakerPolicy& policy,
                                     const Clock& clock) {
  breaker_policy_ = policy;
  breaker_clock_ = &clock;
  for (auto& breaker : breakers_) {
    breaker = std::make_unique<resilience::CircuitBreaker>(policy, clock);
  }
}

bool DirectoryPool::AllowServer(std::size_t i) {
  if (!breakers_[i]) return true;
  if (breakers_[i]->Allow()) return true;
  Instruments().breaker_skips.Increment();
  return false;
}

void DirectoryPool::RecordOutcome(std::size_t i, const Status& status) {
  if (!breakers_[i]) return;
  if (status.code() == StatusCode::kUnavailable) {
    breakers_[i]->RecordFailure();
  } else {
    breakers_[i]->RecordSuccess();
  }
}

Result<Entry> DirectoryPool::Lookup(const Dn& dn,
                                    const std::string& principal,
                                    bool live_only) {
  Status last = Status::Unavailable("directory pool empty");
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!AllowServer(i)) continue;
    auto result = servers_[i]->Lookup(dn, principal, live_only);
    RecordOutcome(i, result.ok() ? Status::Ok() : result.status());
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      last_served_by_ = servers_[i]->address();
      return result;
    }
    last = result.status();
  }
  return last;
}

Result<SearchResult> DirectoryPool::Search(const Dn& base, SearchScope scope,
                                           const Filter& filter,
                                           const std::string& principal,
                                           bool live_only) {
  Status last = Status::Unavailable("directory pool empty");
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (!AllowServer(i)) continue;
    auto result = servers_[i]->Search(base, scope, filter, principal,
                                      live_only);
    RecordOutcome(i, result.ok() ? Status::Ok() : result.status());
    if (result.ok() || result.status().code() != StatusCode::kUnavailable) {
      last_served_by_ = servers_[i]->address();
      return result;
    }
    last = result.status();
  }
  return last;
}

Status DirectoryPool::WriteOp(
    const std::function<Status(DirectoryServer&)>& op) {
  if (servers_.empty()) return Status::Unavailable("directory pool empty");
  Status last = Status::Unavailable("all directory servers unavailable");
  // Start at the current write primary; on failure promote the next live
  // server so subsequent writes go straight there (sticky failover). The
  // demoted primary reconverges through a Replicator rooted at the
  // promoted server once it revives.
  for (std::size_t k = 0; k < servers_.size(); ++k) {
    const std::size_t i = (write_index_ + k) % servers_.size();
    if (!AllowServer(i)) continue;
    Status status = op(*servers_[i]);
    RecordOutcome(i, status);
    if (status.code() == StatusCode::kUnavailable) {
      last = status;
      continue;
    }
    if (i != write_index_) {
      write_index_ = i;
      Instruments().write_failovers.Increment();
    }
    last_served_by_ = servers_[i]->address();
    return status;
  }
  Instruments().writes_unavailable.Increment();
  return last;
}

Status DirectoryPool::Upsert(const Entry& entry,
                             const std::string& principal) {
  return WriteOp([&](DirectoryServer& server) {
    return server.Upsert(entry, principal);
  });
}

Status DirectoryPool::Delete(const Dn& dn, const std::string& principal) {
  return WriteOp(
      [&](DirectoryServer& server) { return server.Delete(dn, principal); });
}

Result<std::size_t> DirectoryPool::RenewLeases(const std::vector<Dn>& dns,
                                               TimePoint expiry,
                                               const std::string& principal,
                                               std::vector<Dn>* missing) {
  std::size_t renewed = 0;
  Status status = WriteOp([&](DirectoryServer& server) {
    // A failover retry must not double-report: reset the out-params so
    // only the server that actually took the batch contributes.
    renewed = 0;
    if (missing) missing->clear();
    auto result = server.RenewLeases(dns, expiry, principal, missing);
    if (!result.ok()) return result.status();
    renewed = *result;
    return Status::Ok();
  });
  if (!status.ok()) return status;
  return renewed;
}

std::string DirectoryPool::write_primary() const {
  if (servers_.empty()) return "";
  return servers_[write_index_]->address();
}

}  // namespace jamm::directory
