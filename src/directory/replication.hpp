// Directory replication and failover. The paper (§2.2): "LDAP also
// supports the notion of replicated servers, providing fault tolerance.
// Replication is critical to JAMM. Otherwise, failure of the sensor
// directory server could take down the entire system."
//
// Replicator ships the primary's write-ahead log to replicas in batches
// by byte offset (ISSUE 9): a replica resumes catch-up from wherever it
// left off — including from empty after a crash — without the primary
// keeping an in-memory change list. Unreachable replicas are re-probed
// with bounded backoff instead of being silently skipped every round,
// with `dir.replica.{lagging,resynced}` telemetry.
//
// DirectoryPool is the consumer-side view: reads fail over across the
// member list, writes stick to a promoted primary (quorum-aware: the
// most caught-up live server wins the promotion), and both sides chase
// referral entries across shards with a TTL'd referral cache (lease-driven
// invalidation — a cached route is never trusted longer than a lease).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "directory/server.hpp"
#include "resilience/breaker.hpp"

namespace jamm::directory {

class Replicator {
 public:
  explicit Replicator(std::shared_ptr<DirectoryServer> primary)
      : primary_(std::move(primary)) {}

  void AddReplica(std::shared_ptr<DirectoryServer> replica);

  /// Ship committed WAL frames each replica hasn't applied yet, in
  /// batches (one lock + one fsync per batch on the replica). A replica
  /// that is down or fails the push backs off exponentially (1, 2, 4, …
  /// up to `max_backoff_rounds` sync rounds) before the next probe, and
  /// counts toward `dir.replica.lagging`; when it comes back and catches
  /// up, `dir.replica.resynced` ticks. Returns changes applied across
  /// all replicas.
  std::size_t SyncAll();

  /// True if every live replica has applied the primary's full log.
  bool Converged() const;

  /// Highest sequence number durably applied by a majority of the group
  /// (primary + replicas) — the failover-safe promotion point.
  std::uint64_t QuorumSeq() const;

  /// Cap the re-probe backoff (default 8 rounds).
  void set_max_backoff_rounds(std::uint32_t rounds) {
    max_backoff_rounds_ = rounds == 0 ? 1 : rounds;
  }

  std::size_t replica_count() const { return replicas_.size(); }

  /// Catch-up offset of replica `i` into the primary's WAL (tests).
  std::uint64_t replica_offset(std::size_t i) const {
    return replicas_[i].offset;
  }

 private:
  struct Tracked {
    std::shared_ptr<DirectoryServer> server;
    std::uint64_t offset = 0;       // byte offset into the primary's WAL
    std::uint64_t applied_seq = 0;  // highest change applied
    std::uint32_t misses = 0;       // consecutive failed/skipped probes
    std::uint32_t skip_rounds = 0;  // backoff budget left before re-probe
    bool behind = false;            // fell behind while down (for resynced)
  };

  std::shared_ptr<DirectoryServer> primary_;
  std::vector<Tracked> replicas_;
  std::uint32_t max_backoff_rounds_ = 8;
};

/// Ordered server list with failover. Reads try each server in order
/// until one answers. Writes target the current write primary (initially
/// index 0) and, when it is down, fail over to the most caught-up live
/// server (highest last_seq — the quorum-election winner), which is
/// promoted to write primary (ISSUE 2/9). A write primary that died and
/// revived is stale until a Replicator rooted at the promoted server
/// pushes the missed changes back.
///
/// Sharding (ISSUE 9): when a server answers with a referral — a search
/// continuation, a NotFound where a referral covers the DN, or a write
/// aborted because the subtree moved — the pool chases it: the target
/// address is resolved to a server (pool members by address, plus any
/// resolver the deployment registers for out-of-pool shards) and the
/// operation re-runs there, to a bounded depth. Resolved routes are
/// cached per subtree with a TTL (SetReferralCacheTtl — wire it to the
/// lease TTL so a stale route dies no later than a lease).
///
/// Optional per-server circuit breakers (SetBreakerPolicy) skip servers
/// that keep failing until their cooldown elapses, instead of probing a
/// corpse on every operation.
class DirectoryPool {
 public:
  void AddServer(std::shared_ptr<DirectoryServer> server);

  /// Enable per-server circuit breakers; `clock` drives the cooldown.
  void SetBreakerPolicy(const resilience::BreakerPolicy& policy,
                        const Clock& clock);

  /// Resolve a referral target address to a server that is not a pool
  /// member (a split-off shard). Pool members resolve by address
  /// automatically; the resolver is consulted for everything else.
  using Resolver =
      std::function<std::shared_ptr<DirectoryServer>(const std::string&)>;
  void SetResolver(Resolver resolver);

  /// Cache chased referral routes for `ttl` on `clock`. Without a TTL the
  /// cache is disabled and every referral is chased through the shard
  /// that issued it.
  void SetReferralCacheTtl(Duration ttl, const Clock& clock);

  Result<Entry> Lookup(const Dn& dn, const std::string& principal = "",
                       bool live_only = false);
  Result<SearchResult> Search(const Dn& base, SearchScope scope,
                              const Filter& filter,
                              const std::string& principal = "",
                              bool live_only = false);
  Status Upsert(const Entry& entry, const std::string& principal = "");
  /// One transaction on the write primary (shard-chased per entry group).
  Status UpsertBatch(const std::vector<Entry>& entries,
                     const std::string& principal = "");
  Status Delete(const Dn& dn, const std::string& principal = "");

  /// Heartbeat batch (ISSUE 4): renew every entry in `dns` to `expiry` on
  /// the current write primary (sticky failover like any write); DNs the
  /// primary referred away are re-grouped per shard and renewed there.
  /// Entries no shard knows land in `missing` so the owner re-publishes.
  Result<std::size_t> RenewLeases(const std::vector<Dn>& dns, TimePoint expiry,
                                  const std::string& principal = "",
                                  std::vector<Dn>* missing = nullptr);

  /// Address of the server that satisfied the most recent read; lets
  /// tests and benches observe failover happening.
  const std::string& last_served_by() const { return last_served_by_; }

  /// Address of the current write primary (promotion target after write
  /// failover); empty for an empty pool.
  std::string write_primary() const;

  std::size_t size() const { return servers_.size(); }
  std::size_t referral_cache_size() const { return referral_cache_.size(); }

 private:
  static constexpr std::size_t kMaxChase = 4;

  /// True if server `i` may be tried now (breaker closed or probing).
  bool AllowServer(std::size_t i);
  void RecordOutcome(std::size_t i, const Status& status);
  Status WriteOp(const std::function<Status(DirectoryServer&)>& op);

  std::shared_ptr<DirectoryServer> Resolve(const std::string& address) const;
  /// Cached route covering `dn` (deepest match, unexpired), if any.
  std::shared_ptr<DirectoryServer> CachedRoute(const Dn& dn);
  void CacheRoute(const Dn& suffix, const std::string& target);
  void DropRoutesTo(const std::string& target);
  /// Run `op` against the shard chain starting at `first` (a referral the
  /// pool just received for `dn`), following further referrals up to
  /// kMaxChase; caches the final route on success.
  Status ChaseWrite(const Referral& first, const Dn& dn,
                    const std::function<Status(DirectoryServer&)>& op);

  std::vector<std::shared_ptr<DirectoryServer>> servers_;
  std::vector<std::unique_ptr<resilience::CircuitBreaker>> breakers_;
  resilience::BreakerPolicy breaker_policy_;
  const Clock* breaker_clock_ = nullptr;
  std::size_t write_index_ = 0;
  std::string last_served_by_;

  Resolver resolver_;
  struct Route {
    Dn suffix;
    std::string target;
    TimePoint expires = 0;  // 0 == never (cache TTL unset)
  };
  std::map<std::string, Route> referral_cache_;  // key: suffix string
  Duration referral_ttl_ = 0;
  const Clock* referral_clock_ = nullptr;
};

}  // namespace jamm::directory
