// Directory replication and failover. The paper (§2.2): "LDAP also
// supports the notion of replicated servers, providing fault tolerance.
// Replication is critical to JAMM. Otherwise, failure of the sensor
// directory server could take down the entire system."
//
// Replicator pushes the primary's change log to read-only replicas;
// DirectoryPool is the consumer-side view that transparently fails over
// to a replica when the primary dies.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "directory/server.hpp"
#include "resilience/breaker.hpp"

namespace jamm::directory {

class Replicator {
 public:
  explicit Replicator(std::shared_ptr<DirectoryServer> primary)
      : primary_(std::move(primary)) {}

  void AddReplica(std::shared_ptr<DirectoryServer> replica);

  /// Push all changes each replica hasn't seen yet. Unreachable replicas
  /// are skipped and caught up on a later sync. Returns the number of
  /// changes applied across all replicas.
  std::size_t SyncAll();

  /// True if every live replica has the primary's full change log.
  bool Converged() const;

  std::size_t replica_count() const { return replicas_.size(); }

 private:
  struct Tracked {
    std::shared_ptr<DirectoryServer> server;
    std::uint64_t applied_seq = 0;
  };

  std::shared_ptr<DirectoryServer> primary_;
  std::vector<Tracked> replicas_;
};

/// Ordered server list with failover. Reads try each server in order
/// until one answers. Writes target the current write primary (initially
/// index 0) and, when it is down, fail over to the next live server,
/// which is promoted to write primary (ISSUE 2: the paper's noted weak
/// spot — "failure of the sensor directory server could take down the
/// entire system"). A write primary that died and revived is stale until
/// a Replicator rooted at the promoted server pushes the missed changes
/// back (see the write-during-primary-outage regression test).
///
/// Optional per-server circuit breakers (SetBreakerPolicy) skip servers
/// that keep failing until their cooldown elapses, instead of probing a
/// corpse on every operation.
class DirectoryPool {
 public:
  void AddServer(std::shared_ptr<DirectoryServer> server);

  /// Enable per-server circuit breakers; `clock` drives the cooldown.
  void SetBreakerPolicy(const resilience::BreakerPolicy& policy,
                        const Clock& clock);

  Result<Entry> Lookup(const Dn& dn, const std::string& principal = "",
                       bool live_only = false);
  Result<SearchResult> Search(const Dn& base, SearchScope scope,
                              const Filter& filter,
                              const std::string& principal = "",
                              bool live_only = false);
  Status Upsert(const Entry& entry, const std::string& principal = "");
  Status Delete(const Dn& dn, const std::string& principal = "");

  /// Heartbeat batch (ISSUE 4): renew every entry in `dns` to `expiry` on
  /// the current write primary (sticky failover like any write). Entries
  /// already reaped land in `missing` so the owner can re-publish them.
  Result<std::size_t> RenewLeases(const std::vector<Dn>& dns, TimePoint expiry,
                                  const std::string& principal = "",
                                  std::vector<Dn>* missing = nullptr);

  /// Address of the server that satisfied the most recent read; lets
  /// tests and benches observe failover happening.
  const std::string& last_served_by() const { return last_served_by_; }

  /// Address of the current write primary (promotion target after write
  /// failover); empty for an empty pool.
  std::string write_primary() const;

  std::size_t size() const { return servers_.size(); }

 private:
  /// True if server `i` may be tried now (breaker closed or probing).
  bool AllowServer(std::size_t i);
  void RecordOutcome(std::size_t i, const Status& status);
  Status WriteOp(const std::function<Status(DirectoryServer&)>& op);

  std::vector<std::shared_ptr<DirectoryServer>> servers_;
  std::vector<std::unique_ptr<resilience::CircuitBreaker>> breakers_;
  resilience::BreakerPolicy breaker_policy_;
  const Clock* breaker_clock_ = nullptr;
  std::size_t write_index_ = 0;
  std::string last_served_by_;
};

}  // namespace jamm::directory
