// Directory replication and failover. The paper (§2.2): "LDAP also
// supports the notion of replicated servers, providing fault tolerance.
// Replication is critical to JAMM. Otherwise, failure of the sensor
// directory server could take down the entire system."
//
// Replicator pushes the primary's change log to read-only replicas;
// DirectoryPool is the consumer-side view that transparently fails over
// to a replica when the primary dies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "directory/server.hpp"

namespace jamm::directory {

class Replicator {
 public:
  explicit Replicator(std::shared_ptr<DirectoryServer> primary)
      : primary_(std::move(primary)) {}

  void AddReplica(std::shared_ptr<DirectoryServer> replica);

  /// Push all changes each replica hasn't seen yet. Unreachable replicas
  /// are skipped and caught up on a later sync. Returns the number of
  /// changes applied across all replicas.
  std::size_t SyncAll();

  /// True if every live replica has the primary's full change log.
  bool Converged() const;

  std::size_t replica_count() const { return replicas_.size(); }

 private:
  struct Tracked {
    std::shared_ptr<DirectoryServer> server;
    std::uint64_t applied_seq = 0;
  };

  std::shared_ptr<DirectoryServer> primary_;
  std::vector<Tracked> replicas_;
};

/// Ordered server list with read failover: reads try each server until one
/// answers; writes go to the primary (index 0) only, as LDAP replicas are
/// read-only.
class DirectoryPool {
 public:
  void AddServer(std::shared_ptr<DirectoryServer> server);

  Result<Entry> Lookup(const Dn& dn, const std::string& principal = "");
  Result<SearchResult> Search(const Dn& base, SearchScope scope,
                              const Filter& filter,
                              const std::string& principal = "");
  Status Upsert(const Entry& entry, const std::string& principal = "");
  Status Delete(const Dn& dn, const std::string& principal = "");

  /// Address of the server that satisfied the most recent read; lets
  /// tests and benches observe failover happening.
  const std::string& last_served_by() const { return last_served_by_; }

  std::size_t size() const { return servers_.size(); }

 private:
  std::vector<std::shared_ptr<DirectoryServer>> servers_;
  std::string last_served_by_;
};

}  // namespace jamm::directory
