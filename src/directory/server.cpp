#include "directory/server.hpp"

#include <algorithm>
#include <set>

#include "directory/schema.hpp"
#include "directory/wal.hpp"
#include "telemetry/metrics.hpp"

namespace jamm::directory {

namespace {

// Lease-plane self-telemetry (ISSUE 4), resolved once.
struct LeaseTelemetry {
  telemetry::Counter& renewals;
  telemetry::Counter& expirations;
  telemetry::Counter& live_only_filtered;
};

LeaseTelemetry& LeaseInstruments() {
  auto& m = telemetry::Metrics();
  static LeaseTelemetry t{m.counter("directory.lease.renewals"),
                          m.counter("directory.lease.expirations"),
                          m.counter("directory.lease.live_only_filtered")};
  return t;
}

}  // namespace

DirectoryServer::DirectoryServer(Dn suffix, std::string address,
                                 std::shared_ptr<WalStorage> storage)
    : suffix_(std::move(suffix)), address_(std::move(address)) {
  wal_ = std::make_unique<WriteAheadLog>(std::move(storage));
  snap_ = std::make_shared<const Snapshot>();
  // Adopting a storage with committed history (a restarted deployment)
  // recovers it immediately; a fresh log replays to nothing.
  if (wal_->committed_size() > 0) Restart();
}

DirectoryServer::~DirectoryServer() = default;

std::shared_ptr<WalStorage> DirectoryServer::wal_storage() const {
  return wal_->storage();
}

// ------------------------------------------------- snapshot plumbing

std::size_t DirectoryServer::BucketOf(const std::string& key) {
  return std::hash<std::string>{}(key) % kBuckets;
}

std::shared_ptr<const DirectoryServer::Snapshot>
DirectoryServer::LoadSnapshot() const {
  std::lock_guard<std::mutex> latch(snap_mu_);
  return snap_;
}

const DirectoryServer::Node* DirectoryServer::FindNode(
    const Snapshot& snap, const std::string& key) {
  const auto& bucket = snap.buckets[BucketOf(key)];
  if (!bucket) return nullptr;
  auto it = bucket->find(key);
  return it == bucket->end() ? nullptr : &it->second;
}

Entry DirectoryServer::Materialize(const Node& node) {
  Entry entry = *node.entry;
  if (node.lease) {
    // The cell, not the stored attribute, is the authoritative lease:
    // renewals store here without republishing the snapshot.
    schema::StampLease(entry, node.lease->expires.load(std::memory_order_relaxed));
  }
  return entry;
}

bool DirectoryServer::LiveAt(const Node& node, TimePoint now) {
  if (!node.lease) return true;  // immortal
  return node.lease->expires.load(std::memory_order_relaxed) > now;
}

DirectoryServer::Txn DirectoryServer::BeginTxn() {
  Txn txn;
  // Cheap start: share every bucket with the current snapshot; clones
  // happen lazily per touched bucket.
  txn.snap = std::make_shared<Snapshot>(*LoadSnapshot());
  return txn;
}

DirectoryServer::Bucket& DirectoryServer::MutableBucket(Txn& txn,
                                                        std::size_t index) {
  if (!txn.cloned[index]) {
    auto& slot = txn.snap->buckets[index];
    slot = slot ? std::make_shared<Bucket>(*slot) : std::make_shared<Bucket>();
    txn.cloned[index] = true;
  }
  // The clone is private to this txn until publication.
  return const_cast<Bucket&>(*txn.snap->buckets[index]);
}

void DirectoryServer::CommitLocked(Txn* txn, std::vector<Change> changes) {
  // WAL first: a change is acked only once its frame is fsync-simulated.
  for (Change& change : changes) {
    if (change.seq == 0) change.seq = next_seq_++;
    else if (change.seq >= next_seq_) next_seq_ = change.seq + 1;
    wal_->Append(change);
  }
  if (!changes.empty()) wal_->Commit();  // group commit: one fsync per batch
  last_seq_.store(next_seq_ - 1, std::memory_order_release);
  if (txn != nullptr && txn->dirty) {
    {
      std::lock_guard<std::mutex> latch(snap_mu_);
      snap_ = txn->snap;
    }
    counters_.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
    // Structural writes invalidate the read-optimized cache — lease
    // renewals (no snapshot swap) deliberately don't.
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    search_cache_.clear();
  }
}

// --------------------------------------------------- txn-level writes

Status DirectoryServer::AddTxn(Txn& txn, const Entry& entry) {
  const Dn& dn = entry.dn();
  if (!dn.IsUnder(suffix_)) {
    return Status::InvalidArgument("DN outside suffix: " + dn.ToString());
  }
  const std::string key = dn.ToString();
  if (FindNode(*txn.snap, key) != nullptr) {
    return Status::AlreadyExists("entry exists: " + key);
  }
  if (dn != suffix_) {
    // The suffix acts as an implicit mount point; anything deeper needs an
    // existing parent (LDAP tree integrity).
    const Dn parent = dn.Parent();
    if (parent != suffix_ &&
        FindNode(*txn.snap, parent.ToString()) == nullptr) {
      return Status::NotFound("parent entry missing: " + parent.ToString());
    }
  }
  Node node;
  node.entry = std::make_shared<const Entry>(entry);
  if (auto expiry = schema::LeaseExpiry(entry)) {
    node.lease = std::make_shared<LeaseCell>();
    node.lease->expires.store(*expiry, std::memory_order_relaxed);
  }
  MutableBucket(txn, BucketOf(key))[key] = std::move(node);
  ++txn.snap->entry_count;
  txn.dirty = true;
  return Status::Ok();
}

Status DirectoryServer::ModifyTxn(Txn& txn, const Entry& entry) {
  const std::string key = entry.dn().ToString();
  const Node* existing = FindNode(*txn.snap, key);
  if (existing == nullptr) return Status::NotFound("no entry: " + key);
  Node node;
  node.entry = std::make_shared<const Entry>(entry);
  if (auto expiry = schema::LeaseExpiry(entry)) {
    // Keep the existing cell (older snapshot generations share it) and
    // move its expiry; attach a fresh one if the entry just became leased.
    node.lease = existing->lease ? existing->lease
                                 : std::make_shared<LeaseCell>();
    node.lease->expires.store(*expiry, std::memory_order_relaxed);
  }
  MutableBucket(txn, BucketOf(key))[key] = std::move(node);
  txn.dirty = true;
  return Status::Ok();
}

Status DirectoryServer::DeleteTxn(Txn& txn, const Dn& dn) {
  const std::string key = dn.ToString();
  if (FindNode(*txn.snap, key) == nullptr) {
    return Status::NotFound("no entry: " + key);
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const auto& bucket = txn.snap->buckets[b];
    if (!bucket) continue;
    for (const auto& [other_key, node] : *bucket) {
      if (other_key != key && node.entry->dn().IsChildOf(dn)) {
        return Status::InvalidArgument("entry has children: " + key);
      }
    }
  }
  MutableBucket(txn, BucketOf(key)).erase(key);
  --txn.snap->entry_count;
  txn.dirty = true;
  return Status::Ok();
}

Status DirectoryServer::ApplyChangeTxn(Txn& txn, const Change& change) {
  switch (change.type) {
    case Change::Type::kAdd: {
      Status s = AddTxn(txn, change.entry);
      // Replays after restart may collide with existing entries; treat the
      // add as a modify so replicas converge.
      if (s.code() == StatusCode::kAlreadyExists) {
        s = ModifyTxn(txn, change.entry);
      }
      return s;
    }
    case Change::Type::kModify:
      return ModifyTxn(txn, change.entry);
    case Change::Type::kDelete: {
      Status s = DeleteTxn(txn, change.entry.dn());
      if (s.code() == StatusCode::kNotFound) s = Status::Ok();
      return s;
    }
    case Change::Type::kLease: {
      const std::string key = change.entry.dn().ToString();
      const Node* node = FindNode(*txn.snap, key);
      if (node == nullptr) return Status::Ok();  // reaped before the renewal
      if (node->lease) {
        node->lease->expires.store(change.lease_expiry,
                                   std::memory_order_relaxed);
      } else {
        // Renewal of a previously immortal entry: attach a cell.
        auto& bucket = MutableBucket(txn, BucketOf(key));
        Node& mut = bucket[key];
        mut.lease = std::make_shared<LeaseCell>();
        mut.lease->expires.store(change.lease_expiry,
                                 std::memory_order_relaxed);
        txn.dirty = true;
      }
      return Status::Ok();
    }
    case Change::Type::kReferral: {
      Referral ref{change.entry.dn(), change.referral_target};
      auto& refs = txn.snap->referrals;
      const bool dup = std::any_of(
          refs.begin(), refs.end(), [&](const Referral& r) {
            return r.suffix == ref.suffix && r.target == ref.target;
          });
      if (!dup) {
        refs.push_back(std::move(ref));
        txn.dirty = true;
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown change type");
}

// ------------------------------------------------------------- guards

Status DirectoryServer::CheckAlive() const {
  if (!alive_.load(std::memory_order_acquire)) {
    return Status::Unavailable("directory server down: " + address_);
  }
  return Status::Ok();
}

Status DirectoryServer::CheckAccess(Operation op, const Dn& target,
                                    const std::string& principal) const {
  std::shared_ptr<const AccessChecker> checker;
  {
    std::lock_guard<std::mutex> latch(snap_mu_);
    checker = access_checker_;
  }
  if (checker && *checker && !(*checker)(op, target, principal)) {
    static telemetry::Counter& denied =
        telemetry::Metrics().counter("directory.access_denied");
    denied.Increment();
    return Status::PermissionDenied(
        (principal.empty() ? std::string("anonymous") : principal) +
        " may not access " + target.ToString());
  }
  return Status::Ok();
}

std::optional<Referral> DirectoryServer::MatchReferralIn(const Snapshot& snap,
                                                         const Dn& dn) {
  const Referral* best = nullptr;
  for (const auto& ref : snap.referrals) {
    if (dn.IsUnder(ref.suffix) &&
        (best == nullptr || ref.suffix.depth() > best->suffix.depth())) {
      best = &ref;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::optional<Referral> DirectoryServer::MatchReferral(const Dn& dn) const {
  return MatchReferralIn(*LoadSnapshot(), dn);
}

// ------------------------------------------------------------- writes

Status DirectoryServer::Add(const Entry& entry, const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  Txn txn = BeginTxn();
  if (auto ref = MatchReferralIn(*txn.snap, entry.dn())) {
    return Status::Aborted("referred to " + ref->target + ": " +
                           entry.dn().ToString());
  }
  JAMM_RETURN_IF_ERROR(AddTxn(txn, entry));
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  Change change;
  change.type = Change::Type::kAdd;
  change.entry = entry;
  CommitLocked(&txn, {std::move(change)});
  return Status::Ok();
}

Status DirectoryServer::Modify(const Entry& entry,
                               const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  Txn txn = BeginTxn();
  if (auto ref = MatchReferralIn(*txn.snap, entry.dn())) {
    return Status::Aborted("referred to " + ref->target + ": " +
                           entry.dn().ToString());
  }
  JAMM_RETURN_IF_ERROR(ModifyTxn(txn, entry));
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  Change change;
  change.type = Change::Type::kModify;
  change.entry = entry;
  CommitLocked(&txn, {std::move(change)});
  return Status::Ok();
}

Status DirectoryServer::Upsert(const Entry& entry,
                               const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  Txn txn = BeginTxn();
  if (auto ref = MatchReferralIn(*txn.snap, entry.dn())) {
    return Status::Aborted("referred to " + ref->target + ": " +
                           entry.dn().ToString());
  }
  const bool exists =
      FindNode(*txn.snap, entry.dn().ToString()) != nullptr;
  JAMM_RETURN_IF_ERROR(exists ? ModifyTxn(txn, entry) : AddTxn(txn, entry));
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  Change change;
  change.type = exists ? Change::Type::kModify : Change::Type::kAdd;
  change.entry = entry;
  CommitLocked(&txn, {std::move(change)});
  return Status::Ok();
}

Status DirectoryServer::UpsertBatch(const std::vector<Entry>& entries,
                                    const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  Txn txn = BeginTxn();
  std::vector<Change> changes;
  changes.reserve(entries.size());
  for (const Entry& entry : entries) {
    JAMM_RETURN_IF_ERROR(
        CheckAccess(Operation::kWrite, entry.dn(), principal));
    if (auto ref = MatchReferralIn(*txn.snap, entry.dn())) {
      return Status::Aborted("referred to " + ref->target + ": " +
                             entry.dn().ToString());
    }
    const bool exists =
        FindNode(*txn.snap, entry.dn().ToString()) != nullptr;
    JAMM_RETURN_IF_ERROR(exists ? ModifyTxn(txn, entry) : AddTxn(txn, entry));
    Change change;
    change.type = exists ? Change::Type::kModify : Change::Type::kAdd;
    change.entry = entry;
    changes.push_back(std::move(change));
  }
  counters_.writes.fetch_add(changes.size(), std::memory_order_relaxed);
  CommitLocked(&txn, std::move(changes));
  return Status::Ok();
}

Status DirectoryServer::Delete(const Dn& dn, const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, dn, principal));
  Txn txn = BeginTxn();
  if (auto ref = MatchReferralIn(*txn.snap, dn)) {
    return Status::Aborted("referred to " + ref->target + ": " +
                           dn.ToString());
  }
  JAMM_RETURN_IF_ERROR(DeleteTxn(txn, dn));
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  Change change;
  change.type = Change::Type::kDelete;
  change.entry = Entry(dn);
  CommitLocked(&txn, {std::move(change)});
  return Status::Ok();
}

// ------------------------------------------------------------- leases

Result<std::size_t> DirectoryServer::RenewLeases(const std::vector<Dn>& dns,
                                                 TimePoint expiry,
                                                 const std::string& principal,
                                                 std::vector<Dn>* missing) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  Txn txn = BeginTxn();
  std::vector<Change> changes;
  changes.reserve(dns.size());
  std::size_t renewed = 0;
  for (const Dn& dn : dns) {
    JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, dn, principal));
    const std::string key = dn.ToString();
    const Node* node = FindNode(*txn.snap, key);
    if (node == nullptr) {
      // Reaped, never published here, or referred away by a shard split —
      // either way the owner must re-publish through the pool, which
      // chases referrals to the right shard.
      if (missing) missing->push_back(dn);
      continue;
    }
    if (node->lease) {
      // The hot path: an atomic store into the shared cell. No bucket
      // clone, no snapshot swap, no cache invalidation — every read
      // restamps from the cell.
      node->lease->expires.store(expiry, std::memory_order_relaxed);
    } else {
      // First renewal of an unleased entry: attach a cell (structural).
      auto& bucket = MutableBucket(txn, BucketOf(key));
      Node& mut = bucket[key];
      mut.lease = std::make_shared<LeaseCell>();
      mut.lease->expires.store(expiry, std::memory_order_relaxed);
      txn.dirty = true;
    }
    Change change;
    change.type = Change::Type::kLease;
    change.entry = Entry(dn);
    change.lease_expiry = expiry;
    changes.push_back(std::move(change));
    ++renewed;
  }
  counters_.leases_renewed.fetch_add(renewed, std::memory_order_relaxed);
  counters_.writes.fetch_add(renewed, std::memory_order_relaxed);
  if (renewed) LeaseInstruments().renewals.Add(renewed);
  CommitLocked(&txn, std::move(changes));
  return renewed;
}

Result<std::size_t> DirectoryServer::ExpireLeases(TimePoint now) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  Txn txn = BeginTxn();
  // Everything overdue is a reap candidate...
  std::set<std::string> doomed;
  for (const auto& bucket : txn.snap->buckets) {
    if (!bucket) continue;
    for (const auto& [key, node] : *bucket) {
      if (!LiveAt(node, now)) doomed.insert(key);
    }
  }
  if (doomed.empty()) return std::size_t{0};
  // ...unless a surviving entry depends on it: any kept entry reprieves
  // its whole ancestor chain (tree integrity — a parent outlives its
  // children). Iterate to a fixpoint; depth bounds the passes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bucket : txn.snap->buckets) {
      if (!bucket) continue;
      for (const auto& [key, node] : *bucket) {
        if (doomed.count(key)) continue;
        for (Dn p = node.entry->dn().Parent(); !p.IsRoot(); p = p.Parent()) {
          if (doomed.erase(p.ToString()) > 0) changed = true;
        }
      }
    }
  }
  // Tombstone deepest-first so replicas replaying the change log never see
  // a parent delete before its children's.
  std::vector<Dn> order;
  order.reserve(doomed.size());
  for (const std::string& key : doomed) {
    order.push_back(FindNode(*txn.snap, key)->entry->dn());
  }
  std::sort(order.begin(), order.end(),
            [](const Dn& a, const Dn& b) { return a.depth() > b.depth(); });
  std::vector<Change> changes;
  changes.reserve(order.size());
  for (const Dn& dn : order) {
    const std::string key = dn.ToString();
    MutableBucket(txn, BucketOf(key)).erase(key);
    --txn.snap->entry_count;
    txn.dirty = true;
    Change change;
    change.type = Change::Type::kDelete;
    change.entry = Entry(dn);
    changes.push_back(std::move(change));
  }
  const std::size_t reaped = order.size();
  counters_.leases_expired.fetch_add(reaped, std::memory_order_relaxed);
  counters_.writes.fetch_add(reaped, std::memory_order_relaxed);
  LeaseInstruments().expirations.Add(reaped);
  CommitLocked(&txn, std::move(changes));
  return reaped;
}

void DirectoryServer::SetClock(const Clock* clock) {
  clock_.store(clock, std::memory_order_release);
}

// -------------------------------------------------------------- reads

Result<Entry> DirectoryServer::Lookup(const Dn& dn,
                                      const std::string& principal,
                                      bool live_only) const {
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kRead, dn, principal));
  const Clock* clock = clock_.load(std::memory_order_acquire);
  if (live_only && clock == nullptr) {
    return Status::InvalidArgument("live_only lookup needs SetClock: " +
                                   address_);
  }
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  auto snap = LoadSnapshot();
  const Node* node = FindNode(*snap, dn.ToString());
  if (node == nullptr) {
    return Status::NotFound("no entry: " + dn.ToString());
  }
  if (live_only && !LiveAt(*node, clock->Now())) {
    counters_.live_only_filtered.fetch_add(1, std::memory_order_relaxed);
    LeaseInstruments().live_only_filtered.Increment();
    return Status::NotFound("lease expired: " + dn.ToString());
  }
  return Materialize(*node);
}

std::string DirectoryServer::CacheKey(const Dn& base, SearchScope scope,
                                      const Filter& filter) const {
  return base.ToString() + "\x1f" +
         std::to_string(static_cast<int>(scope)) + "\x1f" + filter.ToString();
}

Result<SearchResult> DirectoryServer::Search(
    const Dn& base, SearchScope scope, const Filter& filter,
    const std::string& principal, bool live_only) const {
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kRead, base, principal));
  const Clock* clock = clock_.load(std::memory_order_acquire);
  if (live_only && clock == nullptr) {
    return Status::InvalidArgument("live_only search needs SetClock: " +
                                   address_);
  }
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  auto snap = LoadSnapshot();

  // The cache stores DN keys, never entry bodies: hits re-materialize from
  // the live snapshot, so lease values are always the authoritative cell
  // (a cached result can neither resurrect the reaped nor hide the
  // renewed) and entry attributes are current. Structural writes clear it.
  const auto materialize_keys =
      [&](const std::vector<std::string>& keys,
          std::vector<Referral> referrals) -> SearchResult {
    SearchResult out;
    out.referrals = std::move(referrals);
    const TimePoint now = live_only ? clock->Now() : 0;
    out.entries.reserve(keys.size());
    for (const std::string& key : keys) {
      const Node* node = FindNode(*snap, key);
      if (node == nullptr) continue;  // raced a structural delete
      if (live_only && !LiveAt(*node, now)) {
        counters_.live_only_filtered.fetch_add(1, std::memory_order_relaxed);
        LeaseInstruments().live_only_filtered.Increment();
        continue;
      }
      out.entries.push_back(Materialize(*node));
    }
    return out;
  };

  const std::string cache_key = CacheKey(base, scope, filter);
  std::optional<CachedSearch> cached;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    if (auto it = search_cache_.find(cache_key); it != search_cache_.end()) {
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      cached = it->second;
    } else {
      counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (cached) {
    // Materialize outside the cache lock: keys → current snapshot nodes.
    return materialize_keys(cached->keys, std::move(cached->referrals));
  }

  std::vector<std::string> keys;
  for (const auto& bucket : snap->buckets) {
    if (!bucket) continue;
    for (const auto& [key, node] : *bucket) {
      const Dn& dn = node.entry->dn();
      const bool in_scope = scope == SearchScope::kBase
                                ? dn == base
                                : scope == SearchScope::kOneLevel
                                      ? dn.IsChildOf(base)
                                      : dn.IsUnder(base);
      if (in_scope && filter.Matches(*node.entry)) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());  // buckets iterate hashed; callers
                                        // expect DN order
  // Continuation references: referrals whose subtree intersects the search.
  std::vector<Referral> referrals;
  for (const auto& ref : snap->referrals) {
    if (ref.suffix.IsUnder(base) || base.IsUnder(ref.suffix)) {
      referrals.push_back(ref);
    }
  }
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    search_cache_[cache_key] = CachedSearch{keys, referrals};
  }
  return materialize_keys(keys, std::move(referrals));
}

// ------------------------------------------------------ bind / access

void DirectoryServer::SetCredential(const Dn& user,
                                    const std::string& password) {
  std::lock_guard lock(mu_);
  creds_[user.ToString()] = password;
}

Status DirectoryServer::Bind(const Dn& user,
                             const std::string& password) const {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  auto it = creds_.find(user.ToString());
  if (it == creds_.end() || it->second != password) {
    return Status::PermissionDenied("invalid credentials for " +
                                    user.ToString());
  }
  return Status::Ok();
}

void DirectoryServer::SetAccessChecker(AccessChecker checker) {
  auto shared = std::make_shared<const AccessChecker>(std::move(checker));
  std::lock_guard<std::mutex> latch(snap_mu_);
  access_checker_ = std::move(shared);
}

// ---------------------------------------------------------- referrals

void DirectoryServer::AddReferral(Dn suffix, std::string target) {
  std::lock_guard lock(mu_);
  Txn txn = BeginTxn();
  Change change;
  change.type = Change::Type::kReferral;
  change.entry = Entry(suffix);
  change.referral_target = target;
  txn.snap->referrals.push_back({std::move(suffix), std::move(target)});
  txn.dirty = true;
  CommitLocked(&txn, {std::move(change)});
}

Result<std::vector<Entry>> DirectoryServer::CutoverSubtree(
    const Dn& subtree, const std::string& target_address,
    const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, subtree, principal));
  Txn txn = BeginTxn();
  // Collect the subtree (materialized: final lease values travel with the
  // entries to the new shard), parents-first for replay on the target.
  std::vector<const Node*> nodes;
  for (const auto& bucket : txn.snap->buckets) {
    if (!bucket) continue;
    for (const auto& [key, node] : *bucket) {
      if (node.entry->dn().IsUnder(subtree)) nodes.push_back(&node);
    }
  }
  std::sort(nodes.begin(), nodes.end(), [](const Node* a, const Node* b) {
    return a->entry->dn().depth() < b->entry->dn().depth();
  });
  std::vector<Entry> moved;
  moved.reserve(nodes.size());
  for (const Node* node : nodes) moved.push_back(Materialize(*node));

  // One atomic snapshot swap installs the referral and removes the local
  // copies: a concurrent read sees either the entries or the referral,
  // never neither. Tombstones deepest-first in the log, referral last.
  std::vector<Change> changes;
  changes.reserve(moved.size() + 1);
  for (auto it = moved.rbegin(); it != moved.rend(); ++it) {
    const std::string key = it->dn().ToString();
    MutableBucket(txn, BucketOf(key)).erase(key);
    --txn.snap->entry_count;
    Change change;
    change.type = Change::Type::kDelete;
    change.entry = Entry(it->dn());
    changes.push_back(std::move(change));
  }
  Change ref_change;
  ref_change.type = Change::Type::kReferral;
  ref_change.entry = Entry(subtree);
  ref_change.referral_target = target_address;
  changes.push_back(std::move(ref_change));
  txn.snap->referrals.push_back({subtree, target_address});
  txn.dirty = true;
  counters_.writes.fetch_add(changes.size(), std::memory_order_relaxed);
  CommitLocked(&txn, std::move(changes));
  return moved;
}

// -------------------------------------------------------- replication

std::vector<Change> DirectoryServer::ChangesSince(
    std::uint64_t after_seq) const {
  std::vector<Change> out;
  std::uint64_t offset = 0;
  for (;;) {
    std::uint64_t next = 0;
    auto batch = wal_->ReadFrom(offset, 1024, &next);
    if (batch.empty()) break;
    for (auto& change : batch) {
      if (change.seq > after_seq) out.push_back(std::move(change));
    }
    offset = next;
  }
  return out;
}

std::uint64_t DirectoryServer::last_seq() const {
  return last_seq_.load(std::memory_order_acquire);
}

Status DirectoryServer::ApplyReplicated(const Change& change) {
  return ApplyReplicatedBatch({change});
}

Status DirectoryServer::ApplyReplicatedBatch(
    const std::vector<Change>& changes, std::size_t* applied) {
  std::lock_guard lock(mu_);
  if (applied != nullptr) *applied = 0;
  JAMM_RETURN_IF_ERROR(CheckAlive());
  Txn txn = BeginTxn();
  std::vector<Change> accepted;
  accepted.reserve(changes.size());
  for (const Change& change : changes) {
    // Replication carries the primary's log order — referral write-guards
    // don't apply; the log is the authority.
    Status s = ApplyChangeTxn(txn, change);
    if (!s.ok()) {
      // Commit what landed so a partial batch is still durable.
      CommitLocked(&txn, std::move(accepted));
      return s;
    }
    accepted.push_back(change);
    if (applied != nullptr) ++*applied;
  }
  CommitLocked(&txn, std::move(accepted));
  return Status::Ok();
}

// ---------------------------------------------------- crash / recovery

void DirectoryServer::SetAlive(bool alive) {
  alive_.store(alive, std::memory_order_release);
}

bool DirectoryServer::alive() const {
  return alive_.load(std::memory_order_acquire);
}

void DirectoryServer::Crash() {
  std::lock_guard lock(mu_);
  alive_.store(false, std::memory_order_release);
  // The process dies: volatile state is gone, and so is any WAL tail that
  // was appended but never fsync-simulated (nothing acked is in it).
  wal_->storage()->DropUnsynced();
  {
    std::lock_guard<std::mutex> latch(snap_mu_);
    snap_ = std::make_shared<const Snapshot>();
  }
  next_seq_ = 1;
  last_seq_.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  search_cache_.clear();
}

DirectoryServer::RecoveryStats DirectoryServer::Restart() {
  std::lock_guard lock(mu_);
  RecoveryStats stats;
  Txn txn;
  txn.snap = std::make_shared<Snapshot>();
  txn.cloned.fill(false);
  std::uint64_t max_seq = 0;
  auto replay = wal_->Replay([&](const Change& change) {
    // Replay is lenient the same way replication is; a log the server
    // itself acked always applies cleanly.
    ApplyChangeTxn(txn, change).ok();
    if (change.seq > max_seq) max_seq = change.seq;
  });
  stats.records_replayed = replay.records;
  stats.truncated_bytes = replay.truncated_bytes;
  stats.entries = txn.snap->entry_count;
  stats.last_seq = max_seq;
  next_seq_ = max_seq + 1;
  last_seq_.store(max_seq, std::memory_order_release);
  {
    std::lock_guard<std::mutex> latch(snap_mu_);
    snap_ = txn.snap;
  }
  counters_.snapshot_swaps.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    search_cache_.clear();
  }
  alive_.store(true, std::memory_order_release);
  return stats;
}

// --------------------------------------------------------------- stats

DirectoryServer::Stats DirectoryServer::stats() const {
  Stats s;
  s.reads = counters_.reads.load(std::memory_order_relaxed);
  s.writes = counters_.writes.load(std::memory_order_relaxed);
  s.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  s.cache_misses = counters_.cache_misses.load(std::memory_order_relaxed);
  s.entries = LoadSnapshot()->entry_count;
  s.leases_renewed = counters_.leases_renewed.load(std::memory_order_relaxed);
  s.leases_expired = counters_.leases_expired.load(std::memory_order_relaxed);
  s.live_only_filtered =
      counters_.live_only_filtered.load(std::memory_order_relaxed);
  s.snapshot_swaps = counters_.snapshot_swaps.load(std::memory_order_relaxed);
  s.wal_commits = wal_->fsyncs();
  return s;
}

}  // namespace jamm::directory
