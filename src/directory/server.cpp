#include "directory/server.hpp"

namespace jamm::directory {

DirectoryServer::DirectoryServer(Dn suffix, std::string address)
    : suffix_(std::move(suffix)), address_(std::move(address)) {}

Status DirectoryServer::CheckAlive() const {
  if (!alive_) return Status::Unavailable("directory server down: " + address_);
  return Status::Ok();
}

Status DirectoryServer::CheckAccess(Operation op, const Dn& target,
                                    const std::string& principal) const {
  if (access_checker_ && !access_checker_(op, target, principal)) {
    return Status::PermissionDenied(
        (principal.empty() ? std::string("anonymous") : principal) +
        " may not access " + target.ToString());
  }
  return Status::Ok();
}

Status DirectoryServer::AddLocked(const Entry& entry) {
  const Dn& dn = entry.dn();
  if (!dn.IsUnder(suffix_)) {
    return Status::InvalidArgument("DN outside suffix: " + dn.ToString());
  }
  const std::string key = dn.ToString();
  if (entries_.count(key)) {
    return Status::AlreadyExists("entry exists: " + key);
  }
  if (dn != suffix_) {
    // The suffix acts as an implicit mount point; anything deeper needs an
    // existing parent (LDAP tree integrity).
    const Dn parent = dn.Parent();
    if (parent != suffix_ && !entries_.count(parent.ToString())) {
      return Status::NotFound("parent entry missing: " + parent.ToString());
    }
  }
  entries_[key] = entry;
  return Status::Ok();
}

Status DirectoryServer::ModifyLocked(const Entry& entry) {
  const std::string key = entry.dn().ToString();
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("no entry: " + key);
  it->second = entry;
  return Status::Ok();
}

Status DirectoryServer::DeleteLocked(const Dn& dn) {
  const std::string key = dn.ToString();
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("no entry: " + key);
  for (const auto& [other_key, other] : entries_) {
    if (other_key != key && other.dn().IsChildOf(dn)) {
      return Status::InvalidArgument("entry has children: " + key);
    }
  }
  entries_.erase(it);
  return Status::Ok();
}

void DirectoryServer::LogChange(Change::Type type, const Entry& entry) {
  Change change;
  change.seq = next_seq_++;
  change.type = type;
  change.entry = entry;
  changelog_.push_back(std::move(change));
  search_cache_.clear();  // writes invalidate the read-optimized cache
}

Status DirectoryServer::Add(const Entry& entry, const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  JAMM_RETURN_IF_ERROR(AddLocked(entry));
  ++stats_.writes;
  LogChange(Change::Type::kAdd, entry);
  return Status::Ok();
}

Status DirectoryServer::Modify(const Entry& entry,
                               const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  JAMM_RETURN_IF_ERROR(ModifyLocked(entry));
  ++stats_.writes;
  LogChange(Change::Type::kModify, entry);
  return Status::Ok();
}

Status DirectoryServer::Upsert(const Entry& entry,
                               const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  const bool exists = entries_.count(entry.dn().ToString()) > 0;
  JAMM_RETURN_IF_ERROR(exists ? ModifyLocked(entry) : AddLocked(entry));
  ++stats_.writes;
  LogChange(exists ? Change::Type::kModify : Change::Type::kAdd, entry);
  return Status::Ok();
}

Status DirectoryServer::Delete(const Dn& dn, const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, dn, principal));
  JAMM_RETURN_IF_ERROR(DeleteLocked(dn));
  ++stats_.writes;
  Entry tombstone(dn);
  LogChange(Change::Type::kDelete, tombstone);
  return Status::Ok();
}

Result<Entry> DirectoryServer::Lookup(const Dn& dn,
                                      const std::string& principal) const {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kRead, dn, principal));
  ++stats_.reads;
  auto it = entries_.find(dn.ToString());
  if (it == entries_.end()) return Status::NotFound("no entry: " + dn.ToString());
  return it->second;
}

std::string DirectoryServer::CacheKey(const Dn& base, SearchScope scope,
                                      const Filter& filter) const {
  return base.ToString() + "\x1f" +
         std::to_string(static_cast<int>(scope)) + "\x1f" + filter.ToString();
}

Result<SearchResult> DirectoryServer::Search(
    const Dn& base, SearchScope scope, const Filter& filter,
    const std::string& principal) const {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kRead, base, principal));
  ++stats_.reads;
  const std::string key = CacheKey(base, scope, filter);
  if (auto it = search_cache_.find(key); it != search_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  SearchResult result;
  for (const auto& [dn_str, entry] : entries_) {
    const Dn& dn = entry.dn();
    const bool in_scope = scope == SearchScope::kBase
                              ? dn == base
                              : scope == SearchScope::kOneLevel
                                    ? dn.IsChildOf(base)
                                    : dn.IsUnder(base);
    if (in_scope && filter.Matches(entry)) {
      result.entries.push_back(entry);
    }
  }
  // Continuation references: referrals whose subtree intersects the search.
  for (const auto& ref : referrals_) {
    if (ref.suffix.IsUnder(base) || base.IsUnder(ref.suffix)) {
      result.referrals.push_back(ref);
    }
  }
  search_cache_[key] = result;
  return result;
}

void DirectoryServer::SetCredential(const Dn& user,
                                    const std::string& password) {
  std::lock_guard lock(mu_);
  creds_[user.ToString()] = password;
}

Status DirectoryServer::Bind(const Dn& user,
                             const std::string& password) const {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  auto it = creds_.find(user.ToString());
  if (it == creds_.end() || it->second != password) {
    return Status::PermissionDenied("invalid credentials for " +
                                    user.ToString());
  }
  return Status::Ok();
}

void DirectoryServer::SetAccessChecker(AccessChecker checker) {
  std::lock_guard lock(mu_);
  access_checker_ = std::move(checker);
}

void DirectoryServer::AddReferral(Dn suffix, std::string target) {
  std::lock_guard lock(mu_);
  referrals_.push_back({std::move(suffix), std::move(target)});
  search_cache_.clear();
}

std::vector<Change> DirectoryServer::ChangesSince(
    std::uint64_t after_seq) const {
  std::lock_guard lock(mu_);
  std::vector<Change> out;
  for (const auto& c : changelog_) {
    if (c.seq > after_seq) out.push_back(c);
  }
  return out;
}

std::uint64_t DirectoryServer::last_seq() const {
  std::lock_guard lock(mu_);
  return next_seq_ - 1;
}

Status DirectoryServer::ApplyReplicated(const Change& change) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  Status s;
  switch (change.type) {
    case Change::Type::kAdd:
      s = AddLocked(change.entry);
      // Replays after restart may collide with existing entries; treat the
      // add as a modify so replicas converge.
      if (s.code() == StatusCode::kAlreadyExists) {
        s = ModifyLocked(change.entry);
      }
      break;
    case Change::Type::kModify:
      s = ModifyLocked(change.entry);
      break;
    case Change::Type::kDelete:
      s = DeleteLocked(change.entry.dn());
      if (s.code() == StatusCode::kNotFound) s = Status::Ok();
      break;
  }
  if (s.ok()) {
    search_cache_.clear();
    if (change.seq >= next_seq_) next_seq_ = change.seq + 1;
  }
  return s;
}

void DirectoryServer::SetAlive(bool alive) {
  std::lock_guard lock(mu_);
  alive_ = alive;
}

bool DirectoryServer::alive() const {
  std::lock_guard lock(mu_);
  return alive_;
}

DirectoryServer::Stats DirectoryServer::stats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace jamm::directory
