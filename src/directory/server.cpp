#include "directory/server.hpp"

#include <algorithm>
#include <set>

#include "directory/schema.hpp"
#include "telemetry/metrics.hpp"

namespace jamm::directory {

namespace {

// Lease-plane self-telemetry (ISSUE 4), resolved once.
struct LeaseTelemetry {
  telemetry::Counter& renewals;
  telemetry::Counter& expirations;
  telemetry::Counter& live_only_filtered;
};

LeaseTelemetry& LeaseInstruments() {
  auto& m = telemetry::Metrics();
  static LeaseTelemetry t{m.counter("directory.lease.renewals"),
                          m.counter("directory.lease.expirations"),
                          m.counter("directory.lease.live_only_filtered")};
  return t;
}

}  // namespace

DirectoryServer::DirectoryServer(Dn suffix, std::string address)
    : suffix_(std::move(suffix)), address_(std::move(address)) {}

Status DirectoryServer::CheckAlive() const {
  if (!alive_) return Status::Unavailable("directory server down: " + address_);
  return Status::Ok();
}

Status DirectoryServer::CheckAccess(Operation op, const Dn& target,
                                    const std::string& principal) const {
  if (access_checker_ && !access_checker_(op, target, principal)) {
    return Status::PermissionDenied(
        (principal.empty() ? std::string("anonymous") : principal) +
        " may not access " + target.ToString());
  }
  return Status::Ok();
}

Status DirectoryServer::AddLocked(const Entry& entry) {
  const Dn& dn = entry.dn();
  if (!dn.IsUnder(suffix_)) {
    return Status::InvalidArgument("DN outside suffix: " + dn.ToString());
  }
  const std::string key = dn.ToString();
  if (entries_.count(key)) {
    return Status::AlreadyExists("entry exists: " + key);
  }
  if (dn != suffix_) {
    // The suffix acts as an implicit mount point; anything deeper needs an
    // existing parent (LDAP tree integrity).
    const Dn parent = dn.Parent();
    if (parent != suffix_ && !entries_.count(parent.ToString())) {
      return Status::NotFound("parent entry missing: " + parent.ToString());
    }
  }
  entries_[key] = entry;
  return Status::Ok();
}

Status DirectoryServer::ModifyLocked(const Entry& entry) {
  const std::string key = entry.dn().ToString();
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("no entry: " + key);
  it->second = entry;
  return Status::Ok();
}

Status DirectoryServer::DeleteLocked(const Dn& dn) {
  const std::string key = dn.ToString();
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("no entry: " + key);
  for (const auto& [other_key, other] : entries_) {
    if (other_key != key && other.dn().IsChildOf(dn)) {
      return Status::InvalidArgument("entry has children: " + key);
    }
  }
  entries_.erase(it);
  return Status::Ok();
}

void DirectoryServer::LogChange(Change::Type type, const Entry& entry,
                                bool invalidate_cache) {
  Change change;
  change.seq = next_seq_++;
  change.type = type;
  change.entry = entry;
  changelog_.push_back(std::move(change));
  // Writes invalidate the read-optimized cache — except lease renewals
  // (invalidate_cache=false): a heartbeat changes liveness metadata, not
  // search-visible data, and live_only reads bypass cached lease values.
  if (invalidate_cache) search_cache_.clear();
}

bool DirectoryServer::LiveAt(const Entry& entry, TimePoint now) {
  auto expiry = schema::LeaseExpiry(entry);
  return !expiry || *expiry > now;
}

Result<std::size_t> DirectoryServer::RenewLeases(const std::vector<Dn>& dns,
                                                 TimePoint expiry,
                                                 const std::string& principal,
                                                 std::vector<Dn>* missing) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  std::size_t renewed = 0;
  for (const Dn& dn : dns) {
    JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, dn, principal));
    auto it = entries_.find(dn.ToString());
    if (it == entries_.end()) {
      if (missing) missing->push_back(dn);
      continue;
    }
    schema::StampLease(it->second, expiry);
    LogChange(Change::Type::kModify, it->second, /*invalidate_cache=*/false);
    ++renewed;
  }
  stats_.leases_renewed += renewed;
  stats_.writes += renewed;
  if (renewed) LeaseInstruments().renewals.Add(renewed);
  return renewed;
}

Result<std::size_t> DirectoryServer::ExpireLeases(TimePoint now) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  // Everything overdue is a reap candidate...
  std::set<std::string> doomed;
  for (const auto& [key, entry] : entries_) {
    if (!LiveAt(entry, now)) doomed.insert(key);
  }
  if (doomed.empty()) return std::size_t{0};
  // ...unless a surviving entry depends on it: any kept entry reprieves
  // its whole ancestor chain (tree integrity — a parent outlives its
  // children). Iterate to a fixpoint; depth bounds the passes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, entry] : entries_) {
      if (doomed.count(key)) continue;
      for (Dn p = entry.dn().Parent(); !p.IsRoot(); p = p.Parent()) {
        if (doomed.erase(p.ToString()) > 0) changed = true;
      }
    }
  }
  // Tombstone deepest-first so replicas replaying the change log never see
  // a parent delete before its children's.
  std::vector<const Entry*> order;
  order.reserve(doomed.size());
  for (const std::string& key : doomed) order.push_back(&entries_.at(key));
  std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
    return a->dn().depth() > b->dn().depth();
  });
  for (const Entry* entry : order) {
    const Dn dn = entry->dn();
    entries_.erase(dn.ToString());
    LogChange(Change::Type::kDelete, Entry(dn));
    ++stats_.writes;
  }
  const std::size_t reaped = order.size();
  stats_.leases_expired += reaped;
  LeaseInstruments().expirations.Add(reaped);
  return reaped;
}

void DirectoryServer::SetClock(const Clock* clock) {
  std::lock_guard lock(mu_);
  clock_ = clock;
}

Status DirectoryServer::Add(const Entry& entry, const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  JAMM_RETURN_IF_ERROR(AddLocked(entry));
  ++stats_.writes;
  LogChange(Change::Type::kAdd, entry);
  return Status::Ok();
}

Status DirectoryServer::Modify(const Entry& entry,
                               const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  JAMM_RETURN_IF_ERROR(ModifyLocked(entry));
  ++stats_.writes;
  LogChange(Change::Type::kModify, entry);
  return Status::Ok();
}

Status DirectoryServer::Upsert(const Entry& entry,
                               const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, entry.dn(), principal));
  const bool exists = entries_.count(entry.dn().ToString()) > 0;
  JAMM_RETURN_IF_ERROR(exists ? ModifyLocked(entry) : AddLocked(entry));
  ++stats_.writes;
  LogChange(exists ? Change::Type::kModify : Change::Type::kAdd, entry);
  return Status::Ok();
}

Status DirectoryServer::Delete(const Dn& dn, const std::string& principal) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kWrite, dn, principal));
  JAMM_RETURN_IF_ERROR(DeleteLocked(dn));
  ++stats_.writes;
  Entry tombstone(dn);
  LogChange(Change::Type::kDelete, tombstone);
  return Status::Ok();
}

Result<Entry> DirectoryServer::Lookup(const Dn& dn,
                                      const std::string& principal,
                                      bool live_only) const {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kRead, dn, principal));
  if (live_only && !clock_) {
    return Status::InvalidArgument("live_only lookup needs SetClock: " +
                                   address_);
  }
  ++stats_.reads;
  auto it = entries_.find(dn.ToString());
  if (it == entries_.end()) return Status::NotFound("no entry: " + dn.ToString());
  if (live_only && !LiveAt(it->second, clock_->Now())) {
    ++stats_.live_only_filtered;
    LeaseInstruments().live_only_filtered.Increment();
    return Status::NotFound("lease expired: " + dn.ToString());
  }
  return it->second;
}

std::string DirectoryServer::CacheKey(const Dn& base, SearchScope scope,
                                      const Filter& filter) const {
  return base.ToString() + "\x1f" +
         std::to_string(static_cast<int>(scope)) + "\x1f" + filter.ToString();
}

Result<SearchResult> DirectoryServer::Search(
    const Dn& base, SearchScope scope, const Filter& filter,
    const std::string& principal, bool live_only) const {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  JAMM_RETURN_IF_ERROR(CheckAccess(Operation::kRead, base, principal));
  if (live_only && !clock_) {
    return Status::InvalidArgument("live_only search needs SetClock: " +
                                   address_);
  }
  ++stats_.reads;
  // live_only post-filters against the authoritative entry store, never
  // the cache: renewals don't invalidate cached results, so a cached copy
  // may hold a stale lease in either direction (it can neither resurrect
  // the dead nor hide the renewed).
  const auto live_filter = [&](const SearchResult& cached) -> SearchResult {
    SearchResult out;
    out.referrals = cached.referrals;
    const TimePoint now = clock_->Now();
    for (const Entry& entry : cached.entries) {
      auto it = entries_.find(entry.dn().ToString());
      if (it == entries_.end() || !LiveAt(it->second, now)) {
        ++stats_.live_only_filtered;
        LeaseInstruments().live_only_filtered.Increment();
        continue;
      }
      out.entries.push_back(it->second);
    }
    return out;
  };
  const std::string key = CacheKey(base, scope, filter);
  if (auto it = search_cache_.find(key); it != search_cache_.end()) {
    ++stats_.cache_hits;
    if (live_only) return live_filter(it->second);
    return it->second;
  }
  ++stats_.cache_misses;
  SearchResult result;
  for (const auto& [dn_str, entry] : entries_) {
    const Dn& dn = entry.dn();
    const bool in_scope = scope == SearchScope::kBase
                              ? dn == base
                              : scope == SearchScope::kOneLevel
                                    ? dn.IsChildOf(base)
                                    : dn.IsUnder(base);
    if (in_scope && filter.Matches(entry)) {
      result.entries.push_back(entry);
    }
  }
  // Continuation references: referrals whose subtree intersects the search.
  for (const auto& ref : referrals_) {
    if (ref.suffix.IsUnder(base) || base.IsUnder(ref.suffix)) {
      result.referrals.push_back(ref);
    }
  }
  search_cache_[key] = result;
  if (live_only) return live_filter(result);
  return result;
}

void DirectoryServer::SetCredential(const Dn& user,
                                    const std::string& password) {
  std::lock_guard lock(mu_);
  creds_[user.ToString()] = password;
}

Status DirectoryServer::Bind(const Dn& user,
                             const std::string& password) const {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  auto it = creds_.find(user.ToString());
  if (it == creds_.end() || it->second != password) {
    return Status::PermissionDenied("invalid credentials for " +
                                    user.ToString());
  }
  return Status::Ok();
}

void DirectoryServer::SetAccessChecker(AccessChecker checker) {
  std::lock_guard lock(mu_);
  access_checker_ = std::move(checker);
}

void DirectoryServer::AddReferral(Dn suffix, std::string target) {
  std::lock_guard lock(mu_);
  referrals_.push_back({std::move(suffix), std::move(target)});
  search_cache_.clear();
}

std::vector<Change> DirectoryServer::ChangesSince(
    std::uint64_t after_seq) const {
  std::lock_guard lock(mu_);
  std::vector<Change> out;
  for (const auto& c : changelog_) {
    if (c.seq > after_seq) out.push_back(c);
  }
  return out;
}

std::uint64_t DirectoryServer::last_seq() const {
  std::lock_guard lock(mu_);
  return next_seq_ - 1;
}

Status DirectoryServer::ApplyReplicated(const Change& change) {
  std::lock_guard lock(mu_);
  JAMM_RETURN_IF_ERROR(CheckAlive());
  Status s;
  switch (change.type) {
    case Change::Type::kAdd:
      s = AddLocked(change.entry);
      // Replays after restart may collide with existing entries; treat the
      // add as a modify so replicas converge.
      if (s.code() == StatusCode::kAlreadyExists) {
        s = ModifyLocked(change.entry);
      }
      break;
    case Change::Type::kModify:
      s = ModifyLocked(change.entry);
      break;
    case Change::Type::kDelete:
      s = DeleteLocked(change.entry.dn());
      if (s.code() == StatusCode::kNotFound) s = Status::Ok();
      break;
  }
  if (s.ok()) {
    search_cache_.clear();
    if (change.seq >= next_seq_) next_seq_ = change.seq + 1;
  }
  return s;
}

void DirectoryServer::SetAlive(bool alive) {
  std::lock_guard lock(mu_);
  alive_ = alive;
}

bool DirectoryServer::alive() const {
  std::lock_guard lock(mu_);
  return alive_;
}

DirectoryServer::Stats DirectoryServer::stats() const {
  std::lock_guard lock(mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace jamm::directory
