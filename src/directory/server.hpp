// The directory server: a hierarchical, read-optimized entry store with
// LDAP semantics — the paper's sensor directory. Supports search scopes,
// referrals to other servers (hierarchical LDAP deployments with per-site
// referrals, §2.2), simple bind, an access-control hook (§7.1), and a
// change log that feeds replication (replication.hpp).
//
// Read-optimization is modeled the way real slapd behaves: repeated
// searches hit a result cache; ANY write invalidates it. This reproduces
// the paper's observation that "current implementations of LDAP servers
// are optimized for read access, and do not work well in an environment
// with many updates" — measurable in bench_directory (E9).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "directory/dn.hpp"
#include "directory/entry.hpp"
#include "directory/filter.hpp"

namespace jamm::directory {

enum class SearchScope {
  kBase,      // the base entry only
  kOneLevel,  // direct children of the base
  kSubtree,   // base and everything beneath
};

enum class Operation { kRead, kWrite, kBind };

struct Referral {
  Dn suffix;            // subtree this referral covers
  std::string target;   // address of the server holding it
};

struct SearchResult {
  std::vector<Entry> entries;
  std::vector<Referral> referrals;  // continuation references hit
};

/// Change-log record driving replication.
struct Change {
  enum class Type { kAdd, kModify, kDelete };
  std::uint64_t seq = 0;
  Type type = Type::kAdd;
  Entry entry;  // for kDelete only the dn matters
};

class DirectoryServer {
 public:
  /// `suffix` roots this server's tree (e.g. "ou=sensors, o=jamm");
  /// `address` is its dialable name for referrals/diagnostics.
  DirectoryServer(Dn suffix, std::string address);

  const Dn& suffix() const { return suffix_; }
  const std::string& address() const { return address_; }

  // ------------------------------------------------------------- writes

  /// Add an entry. Its DN must be the suffix itself or have an existing
  /// parent under the suffix (LDAP tree integrity).
  Status Add(const Entry& entry, const std::string& principal = "");

  /// Replace the attributes of an existing entry (DN unchanged).
  Status Modify(const Entry& entry, const std::string& principal = "");

  /// Add or modify, whichever applies.
  Status Upsert(const Entry& entry, const std::string& principal = "");

  /// Delete a leaf entry.
  Status Delete(const Dn& dn, const std::string& principal = "");

  // ------------------------------------------------------------- leases
  //
  // ISSUE 4: the read-optimized directory's weak spot is staleness — a
  // crashed sensor manager leaves entries consumers dial forever. Entries
  // stamped with schema::kAttrLeaseExpires are liveness-tracked: owners
  // renew them via heartbeat batches; the reaper tombstones overdue ones
  // (the tombstones replicate like any delete, so replicas converge).

  /// Renew the lease of every entry in `dns` to `expiry` in one batch.
  /// Missing entries (already reaped — the owner should re-publish) are
  /// appended to `missing` when given. Renewals log kModify changes for
  /// replication but deliberately do NOT invalidate the search cache:
  /// heartbeats are liveness-plane writes, and live_only reads consult the
  /// authoritative entry store, never a cached lease. Returns renewals.
  Result<std::size_t> RenewLeases(const std::vector<Dn>& dns, TimePoint expiry,
                                  const std::string& principal = "",
                                  std::vector<Dn>* missing = nullptr);

  /// Reap every entry whose lease expired at or before `now`, logging a
  /// kDelete tombstone each. An expired entry with a surviving descendant
  /// is kept (tree integrity) until its subtree drains. Returns the number
  /// of entries tombstoned.
  Result<std::size_t> ExpireLeases(TimePoint now);

  /// Clock for live_only reads (lease expiry is checked against it).
  /// Without one, live_only requests fail InvalidArgument.
  void SetClock(const Clock* clock);

  // -------------------------------------------------------------- reads

  /// `live_only` (ISSUE 4) filters out entries whose lease has expired but
  /// that the reaper has not yet swept — consumers never dial the dead.
  Result<Entry> Lookup(const Dn& dn, const std::string& principal = "",
                       bool live_only = false) const;

  Result<SearchResult> Search(const Dn& base, SearchScope scope,
                              const Filter& filter,
                              const std::string& principal = "",
                              bool live_only = false) const;

  // ------------------------------------------------------ bind / access

  /// Register a simple-bind credential ("user/password style protection",
  /// §7.1). Passwords are stored as-is: the paper notes they normally
  /// travel in clear text; the security module layers certificates on top.
  void SetCredential(const Dn& user, const std::string& password);
  Status Bind(const Dn& user, const std::string& password) const;

  /// Authorization hook consulted on every operation when set; principal
  /// is whatever identity the caller presented (possibly empty).
  using AccessChecker =
      std::function<bool(Operation op, const Dn& target,
                         const std::string& principal)>;
  void SetAccessChecker(AccessChecker checker);

  // ---------------------------------------------------------- referrals

  void AddReferral(Dn suffix, std::string target);

  // -------------------------------------------------------- replication

  /// Changes with seq > `after_seq`, for replica catch-up.
  std::vector<Change> ChangesSince(std::uint64_t after_seq) const;
  std::uint64_t last_seq() const;

  /// Apply a replicated change without re-logging it (replica side).
  Status ApplyReplicated(const Change& change);

  // -------------------------------------------------------- life / stats

  /// Simulated crash/restart for failover experiments: a down server
  /// returns Unavailable from every operation.
  void SetAlive(bool alive);
  bool alive() const;

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t leases_renewed = 0;   // heartbeat renewals applied
    std::uint64_t leases_expired = 0;   // entries tombstoned by the reaper
    std::uint64_t live_only_filtered = 0;  // expired entries hidden on read
  };
  Stats stats() const;

 private:
  Status CheckAccess(Operation op, const Dn& target,
                     const std::string& principal) const;
  Status CheckAlive() const;
  Status AddLocked(const Entry& entry);
  Status ModifyLocked(const Entry& entry);
  Status DeleteLocked(const Dn& dn);
  void LogChange(Change::Type type, const Entry& entry,
                 bool invalidate_cache = true);
  /// False if the entry's lease expired at or before `now`.
  static bool LiveAt(const Entry& entry, TimePoint now);
  std::string CacheKey(const Dn& base, SearchScope scope,
                       const Filter& filter) const;

  Dn suffix_;
  std::string address_;
  const Clock* clock_ = nullptr;  // for live_only reads

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;       // key: DN string (normalized)
  std::map<std::string, std::string> creds_;   // user DN → password
  std::vector<Referral> referrals_;
  std::vector<Change> changelog_;
  std::uint64_t next_seq_ = 1;
  AccessChecker access_checker_;
  bool alive_ = true;

  // Read-optimization model: search-result cache invalidated by writes.
  mutable std::map<std::string, SearchResult> search_cache_;
  mutable Stats stats_;
};

}  // namespace jamm::directory
