// The directory server: a hierarchical, read-optimized entry store with
// LDAP semantics — the paper's sensor directory. Supports search scopes,
// referrals to other servers (hierarchical LDAP deployments with per-site
// referrals, §2.2), simple bind, an access-control hook (§7.1), and a
// durable change log that feeds both crash recovery and replication.
//
// ISSUE 9 rebuilt the store for fault tolerance under write saturation:
//
//  * RCU snapshot reads — the entry tree is an immutable, bucketed
//    copy-on-write Snapshot published through an atomic shared_ptr.
//    Lookup/Search/live_only never take the write lock: they load the
//    current snapshot and walk it freely while writers build the next
//    one. Structural writes (add/modify/delete/referral) clone only the
//    buckets they touch and swap the snapshot pointer.
//
//  * Lease renewals are not structural. Each leased entry owns a
//    LeaseCell (an atomic expiry shared by every snapshot generation), so
//    a heartbeat batch is a hash lookup plus an atomic store per entry —
//    no bucket cloning, no snapshot swap, no search-cache invalidation.
//    Reads restamp `leaseexpires` from the cell, so every read — cached,
//    uncached, live or plain — sees the authoritative lease (the PR-4
//    staleness bug: a cached SearchResult used to carry the pre-renewal
//    expiry).
//
//  * Write-ahead log — every acked change is serialized, checksummed and
//    fsync-simulated (group commit per batch) into a WalStorage that
//    survives Crash(). Restart() replays the log (truncating a torn
//    tail) back to exactly the last acked write. The WAL doubles as the
//    replication feed (replication.hpp ships committed frames by offset).
//
// Read-optimization is still modeled the way real slapd behaves: repeated
// searches hit a result cache invalidated by structural writes. This
// reproduces the paper's observation that "current implementations of
// LDAP servers are optimized for read access, and do not work well in an
// environment with many updates" — measurable in bench_directory (E9).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "directory/dn.hpp"
#include "directory/entry.hpp"
#include "directory/filter.hpp"

namespace jamm::directory {

class WalStorage;
class WriteAheadLog;

enum class SearchScope {
  kBase,      // the base entry only
  kOneLevel,  // direct children of the base
  kSubtree,   // base and everything beneath
};

enum class Operation { kRead, kWrite, kBind };

struct Referral {
  Dn suffix;            // subtree this referral covers
  std::string target;   // address of the server holding it
};

struct SearchResult {
  std::vector<Entry> entries;
  std::vector<Referral> referrals;  // continuation references hit
};

/// Change-log record: the unit of the WAL and of replication.
struct Change {
  enum class Type {
    kAdd,
    kModify,
    kDelete,
    kLease,     // lease renewal: dn + expiry only (compact hot-path record)
    kReferral,  // referral install (shard split cutover): dn + target
  };
  std::uint64_t seq = 0;
  Type type = Type::kAdd;
  Entry entry;                   // kDelete/kLease/kReferral use only the dn
  TimePoint lease_expiry = 0;    // kLease
  std::string referral_target;   // kReferral
};

class DirectoryServer {
 public:
  /// `suffix` roots this server's tree (e.g. "ou=sensors, o=jamm");
  /// `address` is its dialable name for referrals/diagnostics. `storage`
  /// is the durable medium for the WAL — share one across Crash()/
  /// restart cycles (and hand it to a fresh server to adopt the data);
  /// null creates a private one.
  DirectoryServer(Dn suffix, std::string address,
                  std::shared_ptr<WalStorage> storage = nullptr);
  ~DirectoryServer();

  const Dn& suffix() const { return suffix_; }
  const std::string& address() const { return address_; }

  // ------------------------------------------------------------- writes
  //
  // Every write is WAL-appended and fsync-simulated before it returns OK:
  // an acked write survives Crash()+Restart(). Writes targeting a DN the
  // server has referred away (shard split cutover) fail kAborted with the
  // referral target in the message — DirectoryPool chases instead.

  /// Add an entry. Its DN must be the suffix itself or have an existing
  /// parent under the suffix (LDAP tree integrity).
  Status Add(const Entry& entry, const std::string& principal = "");

  /// Replace the attributes of an existing entry (DN unchanged).
  Status Modify(const Entry& entry, const std::string& principal = "");

  /// Add or modify, whichever applies.
  Status Upsert(const Entry& entry, const std::string& principal = "");

  /// Upsert many entries in one transaction: one bucket-clone pass, one
  /// WAL group commit, one snapshot publication. The bulk-load path
  /// (shard migration copy, bench population). Entries must be ordered
  /// parents-first; the batch fails atomically on the first bad entry.
  Status UpsertBatch(const std::vector<Entry>& entries,
                     const std::string& principal = "");

  /// Delete a leaf entry.
  Status Delete(const Dn& dn, const std::string& principal = "");

  // ------------------------------------------------------------- leases
  //
  // ISSUE 4: the read-optimized directory's weak spot is staleness — a
  // crashed sensor manager leaves entries consumers dial forever. Entries
  // stamped with schema::kAttrLeaseExpires are liveness-tracked: owners
  // renew them via heartbeat batches; the reaper tombstones overdue ones
  // (the tombstones replicate like any delete, so replicas converge).

  /// Renew the lease of every entry in `dns` to `expiry` in one batch.
  /// Missing entries (already reaped or referred to another shard — the
  /// owner should re-publish through the pool) are appended to `missing`
  /// when given. Renewals are atomic stores into the entries' lease
  /// cells plus one WAL group commit: no snapshot swap, no search-cache
  /// invalidation, and every read restamps from the cell so nothing
  /// stale is ever served. Returns renewals.
  Result<std::size_t> RenewLeases(const std::vector<Dn>& dns, TimePoint expiry,
                                  const std::string& principal = "",
                                  std::vector<Dn>* missing = nullptr);

  /// Reap every entry whose lease expired at or before `now`, logging a
  /// kDelete tombstone each. An expired entry with a surviving descendant
  /// is kept (tree integrity) until its subtree drains. Returns the number
  /// of entries tombstoned.
  Result<std::size_t> ExpireLeases(TimePoint now);

  /// Clock for live_only reads (lease expiry is checked against it).
  /// Without one, live_only requests fail InvalidArgument.
  void SetClock(const Clock* clock);

  // -------------------------------------------------------------- reads
  //
  // Reads never take the write lock: they walk the published snapshot.

  /// `live_only` (ISSUE 4) filters out entries whose lease has expired but
  /// that the reaper has not yet swept — consumers never dial the dead.
  Result<Entry> Lookup(const Dn& dn, const std::string& principal = "",
                       bool live_only = false) const;

  Result<SearchResult> Search(const Dn& base, SearchScope scope,
                              const Filter& filter,
                              const std::string& principal = "",
                              bool live_only = false) const;

  // ------------------------------------------------------ bind / access

  /// Register a simple-bind credential ("user/password style protection",
  /// §7.1). Passwords are stored as-is: the paper notes they normally
  /// travel in clear text; the security module layers certificates on top.
  void SetCredential(const Dn& user, const std::string& password);
  Status Bind(const Dn& user, const std::string& password) const;

  /// Authorization hook consulted on every operation when set; principal
  /// is whatever identity the caller presented (possibly empty).
  using AccessChecker =
      std::function<bool(Operation op, const Dn& target,
                         const std::string& principal)>;
  void SetAccessChecker(AccessChecker checker);

  // ---------------------------------------------------------- referrals

  /// Install a referral: `suffix` subtree lives at `target`. WAL-logged
  /// and replicated (shard layout must survive crashes and reach
  /// replicas).
  void AddReferral(Dn suffix, std::string target);

  /// The referral covering `dn`, if any (deepest match wins).
  std::optional<Referral> MatchReferral(const Dn& dn) const;

  /// Shard-split cutover: atomically install a referral for `subtree` at
  /// `target_address` and tombstone every local entry beneath it — one
  /// snapshot swap, so a concurrent read sees either the entries or the
  /// referral, never neither. Returns the final authoritative entries
  /// (leases restamped), parents-first, for the migrator to flush to the
  /// target shard. See shard.hpp.
  Result<std::vector<Entry>> CutoverSubtree(const Dn& subtree,
                                            const std::string& target_address,
                                            const std::string& principal = "");

  // -------------------------------------------------------- replication

  /// Changes with seq > `after_seq`, decoded from the committed WAL —
  /// kept for coarse catch-up and tests; Replicator ships by byte offset.
  std::vector<Change> ChangesSince(std::uint64_t after_seq) const;
  std::uint64_t last_seq() const;

  /// Apply a replicated change without re-minting a sequence number; the
  /// change is WAL-logged locally (a replica must also survive its own
  /// crash) and bypasses referral write-guards (log order is authority).
  Status ApplyReplicated(const Change& change);

  /// Apply a batch under one lock / one WAL commit / one snapshot swap.
  /// Stops at the first failure; `*applied` (optional) reports how many
  /// changes landed either way.
  Status ApplyReplicatedBatch(const std::vector<Change>& changes,
                              std::size_t* applied = nullptr);

  /// The server's log, for offset-based replication shipping.
  const WriteAheadLog& wal() const { return *wal_; }
  std::shared_ptr<WalStorage> wal_storage() const;

  // ---------------------------------------------------- crash / recovery

  /// Simulated soft-down for failover experiments: a down server returns
  /// Unavailable from every operation but keeps its state.
  void SetAlive(bool alive);
  bool alive() const;

  /// Hard crash: every volatile structure (entry tree, lease cells,
  /// search cache, sequence counter) is lost, along with any WAL bytes
  /// not yet fsync-simulated. The server is down until Restart().
  /// Deployment configuration (clock, credentials, access checker)
  /// survives, as it would in config files.
  void Crash();

  struct RecoveryStats {
    std::uint64_t records_replayed = 0;
    std::uint64_t truncated_bytes = 0;  // torn WAL tail removed
    std::uint64_t entries = 0;          // live entries after replay
    std::uint64_t last_seq = 0;
  };

  /// Replay the WAL from byte 0 (truncating a torn tail), rebuild the
  /// snapshot, and come back up. Every write acked before the crash is
  /// present afterwards.
  RecoveryStats Restart();

  // --------------------------------------------------------------- stats

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t leases_renewed = 0;   // heartbeat renewals applied
    std::uint64_t leases_expired = 0;   // entries tombstoned by the reaper
    std::uint64_t live_only_filtered = 0;  // expired entries hidden on read
    std::uint64_t snapshot_swaps = 0;   // structural publications
    std::uint64_t wal_commits = 0;      // simulated fsyncs acked
  };
  Stats stats() const;

 private:
  // ---- RCU snapshot structures --------------------------------------
  static constexpr std::size_t kBuckets = 256;

  /// Authoritative lease expiry, shared by every snapshot generation
  /// holding the entry — renewals store here without republishing.
  struct LeaseCell {
    std::atomic<TimePoint> expires{0};
  };

  struct Node {
    std::shared_ptr<const Entry> entry;
    std::shared_ptr<LeaseCell> lease;  // null == immortal
  };

  using Bucket = std::map<std::string, Node>;  // key: normalized DN string

  struct Snapshot {
    std::array<std::shared_ptr<const Bucket>, kBuckets> buckets;
    std::vector<Referral> referrals;
    std::size_t entry_count = 0;
  };

  /// A structural write under construction: starts as a cheap copy of the
  /// current snapshot's bucket-pointer array and clones buckets lazily.
  struct Txn {
    std::shared_ptr<Snapshot> snap;
    std::array<bool, kBuckets> cloned{};
    bool dirty = false;
  };

  static std::size_t BucketOf(const std::string& key);
  std::shared_ptr<const Snapshot> LoadSnapshot() const;
  static const Node* FindNode(const Snapshot& snap, const std::string& key);
  /// Entry copy with `leaseexpires` restamped from the authoritative cell.
  static Entry Materialize(const Node& node);
  static bool LiveAt(const Node& node, TimePoint now);

  Txn BeginTxn();
  Bucket& MutableBucket(Txn& txn, std::size_t index);
  /// Append `changes` to the WAL, group-commit, publish the txn snapshot
  /// (if dirty) and clear the search cache. The single ack barrier.
  void CommitLocked(Txn* txn, std::vector<Change> changes);

  Status AddTxn(Txn& txn, const Entry& entry);
  Status ModifyTxn(Txn& txn, const Entry& entry);
  Status DeleteTxn(Txn& txn, const Dn& dn);
  /// Shared apply path for replication and WAL replay (lenient: add
  /// collisions become modifies, missing deletes succeed).
  Status ApplyChangeTxn(Txn& txn, const Change& change);

  Status CheckAccess(Operation op, const Dn& target,
                     const std::string& principal) const;
  Status CheckAlive() const;
  static std::optional<Referral> MatchReferralIn(const Snapshot& snap,
                                                 const Dn& dn);
  std::string CacheKey(const Dn& base, SearchScope scope,
                       const Filter& filter) const;

  Dn suffix_;
  std::string address_;
  std::atomic<const Clock*> clock_{nullptr};  // for live_only reads
  std::atomic<bool> alive_{true};

  // Writer lock: serializes structural writes, lease batches, WAL appends
  // and snapshot publication. Readers never take it.
  mutable std::mutex mu_;
  std::unique_ptr<WriteAheadLog> wal_;         // appended under mu_
  std::uint64_t next_seq_ = 1;                 // under mu_
  std::atomic<std::uint64_t> last_seq_{0};     // published for lock-free read
  std::map<std::string, std::string> creds_;   // user DN → password; under mu_

  // RCU handoff latch: held only to copy or swap a shared_ptr (a few
  // instructions), never while a bucket or the checker is used — readers
  // still never wait on mu_. Deliberately not std::atomic<shared_ptr>:
  // libstdc++ 12's _Sp_atomic is lock-based anyway and its relaxed
  // reader-side unlock gives TSan no happens-before edge to the next
  // writer, flagging every load/store pair.
  mutable std::mutex snap_mu_;
  std::shared_ptr<const AccessChecker> access_checker_;  // under snap_mu_
  std::shared_ptr<const Snapshot> snap_;                 // under snap_mu_

  // Read-optimization model: search-result cache invalidated by structural
  // writes (snapshot swaps). Caches DN keys, not entries — hits
  // materialize from the live snapshot, so lease values and entry bodies
  // are always authoritative.
  struct CachedSearch {
    std::vector<std::string> keys;
    std::vector<Referral> referrals;
  };
  mutable std::mutex cache_mu_;
  mutable std::map<std::string, CachedSearch> search_cache_;

  struct Counters {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> cache_misses{0};
    std::atomic<std::uint64_t> leases_renewed{0};
    std::atomic<std::uint64_t> leases_expired{0};
    std::atomic<std::uint64_t> live_only_filtered{0};
    std::atomic<std::uint64_t> snapshot_swaps{0};
  };
  mutable Counters counters_;
};

}  // namespace jamm::directory
