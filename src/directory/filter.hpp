// LDAP search filters (RFC 1960 string representation), the query language
// consumers use to discover sensors: e.g.
//
//   (&(objectclass=jammSensor)(type=cpu)(host=dpss*.lbl.gov))
//
// Supported: & | ! conjunctions, equality, presence (attr=*), substring
// (values with '*' wildcards), >= and <= (numeric when both sides parse as
// numbers, else lexicographic).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "directory/entry.hpp"

namespace jamm::directory {

class Filter {
 public:
  /// Parse an RFC1960 filter string; the outer parentheses are required.
  static Result<Filter> Parse(std::string_view text);

  /// Matches everything — "(objectclass=*)" shorthand.
  static Filter MatchAll();

  bool Matches(const Entry& entry) const;

  /// Canonical string form (round-trips through Parse).
  std::string ToString() const;

  /// Implementation node; public only so the parser in the .cpp can build
  /// trees — not part of the API surface.
  struct Node;

 private:
  std::shared_ptr<const Node> root_;
};

}  // namespace jamm::directory
