#include "directory/entry.hpp"

#include "common/strings.hpp"

namespace jamm::directory {

void Entry::Set(std::string_view attr, std::string value) {
  attrs_[ToLower(attr)] = {std::move(value)};
}

void Entry::Set(std::string_view attr, std::vector<std::string> values) {
  attrs_[ToLower(attr)] = std::move(values);
}

void Entry::Add(std::string_view attr, std::string value) {
  attrs_[ToLower(attr)].push_back(std::move(value));
}

void Entry::Remove(std::string_view attr) { attrs_.erase(ToLower(attr)); }

bool Entry::Has(std::string_view attr) const {
  return attrs_.find(ToLower(attr)) != attrs_.end();
}

std::string Entry::Get(std::string_view attr) const {
  auto it = attrs_.find(ToLower(attr));
  if (it == attrs_.end() || it->second.empty()) return "";
  return it->second.front();
}

const std::vector<std::string>* Entry::GetAll(std::string_view attr) const {
  auto it = attrs_.find(ToLower(attr));
  return it == attrs_.end() ? nullptr : &it->second;
}

std::string Entry::ToString() const {
  std::string out = "dn: " + dn_.ToString() + "\n";
  for (const auto& [attr, values] : attrs_) {
    for (const auto& v : values) {
      out += attr + ": " + v + "\n";
    }
  }
  return out;
}

}  // namespace jamm::directory
