// Directory entries: a DN plus multi-valued, case-insensitively named
// attributes, matching the LDAP data model the paper relies on.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "directory/dn.hpp"

namespace jamm::directory {

class Entry {
 public:
  Entry() = default;
  explicit Entry(Dn dn) : dn_(std::move(dn)) {}

  const Dn& dn() const { return dn_; }
  void set_dn(Dn dn) { dn_ = std::move(dn); }

  /// Replace all values of `attr`.
  void Set(std::string_view attr, std::string value);
  void Set(std::string_view attr, std::vector<std::string> values);
  /// Append one value.
  void Add(std::string_view attr, std::string value);
  void Remove(std::string_view attr);

  bool Has(std::string_view attr) const;
  /// First value or empty.
  std::string Get(std::string_view attr) const;
  const std::vector<std::string>* GetAll(std::string_view attr) const;

  const std::map<std::string, std::vector<std::string>>& attrs() const {
    return attrs_;
  }

  /// LDIF-ish rendering for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Entry&, const Entry&) = default;

 private:
  Dn dn_;
  std::map<std::string, std::vector<std::string>> attrs_;  // keys lower-cased
};

}  // namespace jamm::directory
