// Distinguished Names for the LDAP-model directory service (paper §2.2:
// "The directory service is used to publish the location of all sensors and
// their associated gateway ... We are currently using LDAP").
//
// A DN is an ordered list of attribute=value RDNs, most-specific first:
//   "cn=vmstat, host=dpss1.lbl.gov, ou=sensors, o=jamm"
// Attribute names compare case-insensitively; values case-sensitively.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace jamm::directory {

struct Rdn {
  std::string attr;   // stored lower-cased
  std::string value;

  friend bool operator==(const Rdn&, const Rdn&) = default;
  friend auto operator<=>(const Rdn&, const Rdn&) = default;
};

class Dn {
 public:
  Dn() = default;

  /// Parse "attr=value, attr=value, ...". Whitespace around separators is
  /// ignored; empty input yields the root DN.
  static Result<Dn> Parse(std::string_view text);

  /// Build from explicit RDNs (most-specific first).
  static Dn Of(std::vector<Rdn> rdns);

  bool IsRoot() const { return rdns_.empty(); }
  std::size_t depth() const { return rdns_.size(); }
  const std::vector<Rdn>& rdns() const { return rdns_; }

  /// Leading (most-specific) RDN; requires !IsRoot().
  const Rdn& leaf() const { return rdns_.front(); }

  /// DN with the leaf removed; root stays root.
  Dn Parent() const;

  /// Prepend a new leaf RDN.
  Dn Child(std::string attr, std::string value) const;

  /// True if `this` is exactly one level below `ancestor`.
  bool IsChildOf(const Dn& ancestor) const;

  /// True if `this` equals `ancestor` or lies anywhere beneath it.
  bool IsUnder(const Dn& ancestor) const;

  std::string ToString() const;

  friend bool operator==(const Dn&, const Dn&) = default;
  friend auto operator<=>(const Dn&, const Dn&) = default;

 private:
  std::vector<Rdn> rdns_;
};

}  // namespace jamm::directory
