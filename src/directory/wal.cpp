#include "directory/wal.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace jamm::directory {
namespace {

// Local CRC-32 (IEEE 802.3, reflected). The archive has its own copy but
// jamm_directory does not link jamm_archive; the table is 20 lines.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  PutU32(static_cast<std::uint32_t>(v), out);
  PutU32(static_cast<std::uint32_t>(v >> 32), out);
}

void PutString(const std::string& s, std::vector<std::uint8_t>* out) {
  PutU32(static_cast<std::uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  bool U32(std::uint32_t* v) {
    if (size - pos < 4) return false;
    *v = static_cast<std::uint32_t>(data[pos]) |
         static_cast<std::uint32_t>(data[pos + 1]) << 8 |
         static_cast<std::uint32_t>(data[pos + 2]) << 16 |
         static_cast<std::uint32_t>(data[pos + 3]) << 24;
    pos += 4;
    return true;
  }

  bool U64(std::uint64_t* v) {
    std::uint32_t lo = 0, hi = 0;
    if (!U32(&lo) || !U32(&hi)) return false;
    *v = static_cast<std::uint64_t>(hi) << 32 | lo;
    return true;
  }

  bool String(std::string* s) {
    std::uint32_t len = 0;
    if (!U32(&len)) return false;
    if (size - pos < len) return false;
    s->assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    return true;
  }
};

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

}  // namespace

void EncodeChange(const Change& change, std::vector<std::uint8_t>* out) {
  PutU64(change.seq, out);
  out->push_back(static_cast<std::uint8_t>(change.type));
  PutString(change.entry.dn().ToString(), out);
  switch (change.type) {
    case Change::Type::kAdd:
    case Change::Type::kModify: {
      const auto& attrs = change.entry.attrs();
      PutU32(static_cast<std::uint32_t>(attrs.size()), out);
      for (const auto& [name, values] : attrs) {
        PutString(name, out);
        PutU32(static_cast<std::uint32_t>(values.size()), out);
        for (const auto& value : values) PutString(value, out);
      }
      break;
    }
    case Change::Type::kDelete:
      break;
    case Change::Type::kLease:
      PutU64(static_cast<std::uint64_t>(change.lease_expiry), out);
      break;
    case Change::Type::kReferral:
      PutString(change.referral_target, out);
      break;
  }
}

bool DecodeChange(const std::uint8_t* data, std::size_t size, Change* out) {
  Reader r{data, size};
  Change c;
  if (!r.U64(&c.seq)) return false;
  if (r.pos >= r.size) return false;
  const std::uint8_t type = data[r.pos++];
  if (type > static_cast<std::uint8_t>(Change::Type::kReferral)) return false;
  c.type = static_cast<Change::Type>(type);
  std::string dn_text;
  if (!r.String(&dn_text)) return false;
  auto dn = Dn::Parse(dn_text);
  if (!dn.ok()) return false;
  c.entry = Entry(std::move(dn).value());
  switch (c.type) {
    case Change::Type::kAdd:
    case Change::Type::kModify: {
      std::uint32_t count = 0;
      if (!r.U32(&count)) return false;
      for (std::uint32_t i = 0; i < count; ++i) {
        std::string name;
        std::uint32_t value_count = 0;
        if (!r.String(&name) || !r.U32(&value_count)) return false;
        std::vector<std::string> values;
        values.reserve(value_count);
        for (std::uint32_t j = 0; j < value_count; ++j) {
          std::string value;
          if (!r.String(&value)) return false;
          values.push_back(std::move(value));
        }
        c.entry.Set(name, std::move(values));
      }
      break;
    }
    case Change::Type::kDelete:
      break;
    case Change::Type::kLease: {
      std::uint64_t expiry = 0;
      if (!r.U64(&expiry)) return false;
      c.lease_expiry = static_cast<TimePoint>(expiry);
      break;
    }
    case Change::Type::kReferral:
      if (!r.String(&c.referral_target)) return false;
      break;
  }
  if (r.pos != size) return false;  // trailing garbage == corrupt frame
  *out = std::move(c);
  return true;
}

// ----------------------------------------------------------- WalStorage

std::uint64_t WalStorage::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_.size();
}

std::uint64_t WalStorage::synced_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_;
}

std::uint64_t WalStorage::fsyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsyncs_;
}

void WalStorage::DropUnsynced() {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_.resize(synced_);
}

std::size_t WalStorage::CorruptTail(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = std::min<std::size_t>(bytes, synced_);
  for (std::size_t i = 0; i < n; ++i) {
    bytes_[synced_ - 1 - i] ^= 0x5A;
  }
  return n;
}

void WalStorage::TruncateRaw(std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (size < bytes_.size()) bytes_.resize(size);
  if (synced_ > bytes_.size()) synced_ = bytes_.size();
}

// ------------------------------------------------------- WriteAheadLog

WriteAheadLog::WriteAheadLog(std::shared_ptr<WalStorage> storage)
    : storage_(storage ? std::move(storage)
                       : std::make_shared<WalStorage>()) {}

void WriteAheadLog::Append(const Change& change) {
  std::vector<std::uint8_t> payload;
  EncodeChange(change, &payload);
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeader + payload.size());
  PutU32(static_cast<std::uint32_t>(payload.size()), &frame);
  PutU32(Crc32(payload.data(), payload.size()), &frame);
  frame.insert(frame.end(), payload.begin(), payload.end());

  std::lock_guard<std::mutex> lock(storage_->mu_);
  storage_->bytes_.insert(storage_->bytes_.end(), frame.begin(), frame.end());
}

void WriteAheadLog::Commit() {
  std::lock_guard<std::mutex> lock(storage_->mu_);
  if (storage_->synced_ != storage_->bytes_.size()) {
    storage_->synced_ = storage_->bytes_.size();
    ++storage_->fsyncs_;
  }
}

WriteAheadLog::ReplayStats WriteAheadLog::Replay(
    const std::function<void(const Change&)>& fn) {
  // Copy the committed bytes out so replay (which calls back into server
  // code) runs without the storage lock held.
  std::vector<std::uint8_t> log;
  {
    std::lock_guard<std::mutex> lock(storage_->mu_);
    log.assign(storage_->bytes_.begin(),
               storage_->bytes_.begin() +
                   static_cast<std::ptrdiff_t>(storage_->synced_));
  }

  ReplayStats stats;
  std::size_t pos = 0;
  while (pos < log.size()) {
    Reader r{log.data(), log.size(), pos};
    std::uint32_t len = 0, crc = 0;
    if (!r.U32(&len) || !r.U32(&crc)) break;                 // torn header
    if (log.size() - r.pos < len) break;                     // torn payload
    const std::uint8_t* payload = log.data() + r.pos;
    if (Crc32(payload, len) != crc) break;                   // corrupt frame
    Change change;
    if (!DecodeChange(payload, len, &change)) break;         // corrupt frame
    fn(change);
    pos = r.pos + len;
    ++stats.records;
  }
  stats.bytes = pos;
  if (pos < log.size()) {
    stats.truncated_bytes = log.size() - pos;
    std::lock_guard<std::mutex> lock(storage_->mu_);
    storage_->bytes_.resize(pos);
    storage_->synced_ = pos;
  }
  return stats;
}

std::vector<Change> WriteAheadLog::ReadFrom(std::uint64_t offset,
                                            std::size_t max_records,
                                            std::uint64_t* next_offset) const {
  std::vector<std::uint8_t> log;
  {
    std::lock_guard<std::mutex> lock(storage_->mu_);
    log.assign(storage_->bytes_.begin(),
               storage_->bytes_.begin() +
                   static_cast<std::ptrdiff_t>(storage_->synced_));
  }

  std::vector<Change> changes;
  std::size_t pos = std::min<std::uint64_t>(offset, log.size());
  while (changes.size() < max_records && pos < log.size()) {
    Reader r{log.data(), log.size(), pos};
    std::uint32_t len = 0, crc = 0;
    if (!r.U32(&len) || !r.U32(&crc)) break;
    if (log.size() - r.pos < len) break;
    const std::uint8_t* payload = log.data() + r.pos;
    Change change;
    if (Crc32(payload, len) != crc || !DecodeChange(payload, len, &change)) {
      break;
    }
    changes.push_back(std::move(change));
    pos = r.pos + len;
  }
  if (next_offset != nullptr) *next_offset = pos;
  return changes;
}

std::uint64_t WriteAheadLog::OffsetAfterSeq(std::uint64_t seq) const {
  std::uint64_t offset = 0;
  std::uint64_t next = 0;
  for (;;) {
    const auto batch = ReadFrom(offset, 256, &next);
    if (batch.empty()) return offset;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].seq > seq) {
        // Re-walk frames up to i to find the exact byte boundary.
        std::uint64_t boundary = offset;
        ReadFrom(offset, i, &boundary);
        return boundary;
      }
    }
    offset = next;
  }
}

}  // namespace jamm::directory
