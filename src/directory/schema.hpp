// JAMM directory schema conventions: how sensors, gateways, and archives
// publish themselves. The paper's Sensor Data GUI "lists all sensors
// stored in a specific LDAP server, and displays their current status,
// including such details as frequency, duration, startup time, current
// number of consumers, and last message" — those are the attributes here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "directory/entry.hpp"

namespace jamm::directory::schema {

// objectclass values
inline constexpr char kSensorClass[] = "jammSensor";
inline constexpr char kGatewayClass[] = "jammGateway";
inline constexpr char kArchiveClass[] = "jammArchive";
inline constexpr char kHostClass[] = "jammHost";
inline constexpr char kSummaryClass[] = "jammSummary";
/// A federation level (ISSUE 6): a republisher gateway re-exporting the
/// merged stream of its children. Carries tier + children attrs so
/// consumers can discover the nearest tier that covers what they watch.
inline constexpr char kFederationClass[] = "jammFederation";

// attribute names (lower-case, the directory's canonical form)
inline constexpr char kAttrObjectClass[] = "objectclass";
inline constexpr char kAttrHost[] = "host";
inline constexpr char kAttrSensorName[] = "sensorname";
inline constexpr char kAttrSensorType[] = "sensortype";
inline constexpr char kAttrGateway[] = "gateway";        // gateway address
inline constexpr char kAttrFrequencyMs[] = "frequencyms";
inline constexpr char kAttrStatus[] = "status";          // running | stopped
inline constexpr char kAttrStartTime[] = "starttime";    // ULM DATE
inline constexpr char kAttrConsumers[] = "consumers";    // current count
inline constexpr char kAttrLastMessage[] = "lastmessage";
inline constexpr char kAttrAddress[] = "address";
inline constexpr char kAttrContents[] = "contents";      // archive contents
inline constexpr char kAttrSegments[] = "segments";      // archive segments
inline constexpr char kAttrSpanMin[] = "spanmin";        // oldest record, ULM DATE
inline constexpr char kAttrSpanMax[] = "spanmax";        // newest record, ULM DATE
inline constexpr char kAttrMetric[] = "metric";          // summary data name
inline constexpr char kAttrValue[] = "value";            // summary data value
/// Lease expiry (ISSUE 4), microseconds on the deployment's injected
/// clock. An entry carrying this attribute is liveness-tracked: its owner
/// renews it via heartbeats and the directory's reaper tombstones it once
/// overdue. Entries without it (hosts, archives) are immortal.
inline constexpr char kAttrLeaseExpires[] = "leaseexpires";
/// Federation level height (ISSUE 6): 0 = a leaf (host) gateway, each
/// republisher is one more than its tallest child. Decimal string.
inline constexpr char kAttrTier[] = "tier";
/// Comma-separated names of the level's direct children — child federation
/// levels for mid-tiers, leaf gateway names at the bottom.
inline constexpr char kAttrChildren[] = "children";

/// "host=<host>, <suffix>"
Dn HostDn(const Dn& suffix, const std::string& host);
/// "cn=<sensor>, host=<host>, <suffix>"
Dn SensorDn(const Dn& suffix, const std::string& host,
            const std::string& sensor_name);
/// "cn=gateway, host=<host>, <suffix>"
Dn GatewayDn(const Dn& suffix, const std::string& host);
/// "cn=<archive>, ou=archives, <suffix>"
Dn ArchiveDn(const Dn& suffix, const std::string& archive_name);
/// "cn=<level>, ou=federation, <suffix>"
Dn FederationDn(const Dn& suffix, const std::string& level_name);

Entry MakeHostEntry(const Dn& suffix, const std::string& host);

/// Publication entry for an active sensor; `gateway_address` is where
/// consumers subscribe (paper: "publish the location of all sensors and
/// their associated gateway").
Entry MakeSensorEntry(const Dn& suffix, const std::string& host,
                      const std::string& sensor_name,
                      const std::string& sensor_type,
                      const std::string& gateway_address,
                      std::int64_t frequency_ms, TimePoint start_time);

Entry MakeGatewayEntry(const Dn& suffix, const std::string& host,
                       const std::string& address);

/// `segments` and the [span_min, span_max] record-time span (ISSUE 5) let
/// consumers judge an archive's coverage from the directory alone; a span
/// of {0, 0} (empty archive) publishes no span attributes.
Entry MakeArchiveEntry(const Dn& suffix, const std::string& archive_name,
                       const std::string& address,
                       const std::string& contents,
                       std::uint64_t segments = 0, TimePoint span_min = 0,
                       TimePoint span_max = 0);

/// Summary-data publication (paper §7.0: "network sensors publish summary
/// throughput and latency data in the directory service").
Entry MakeSummaryEntry(const Dn& suffix, const std::string& host,
                       const std::string& metric, double value);

/// Publication entry for one federation level (ISSUE 6): where to
/// subscribe (`address`), how high it sits (`tier`), and which levels or
/// leaf gateways feed it (`children`).
Entry MakeFederationEntry(const Dn& suffix, const std::string& level_name,
                          const std::string& address, int tier,
                          const std::vector<std::string>& children);

// ----------------------------------------------------------------- leases

/// Stamp (or renew) `entry`'s lease to expire at `expiry`.
void StampLease(Entry& entry, TimePoint expiry);

/// The entry's lease expiry, or nullopt if it carries none (immortal).
std::optional<TimePoint> LeaseExpiry(const Entry& entry);

}  // namespace jamm::directory::schema
