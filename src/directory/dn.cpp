#include "directory/dn.hpp"

#include "common/strings.hpp"

namespace jamm::directory {

Result<Dn> Dn::Parse(std::string_view text) {
  Dn dn;
  std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return dn;
  for (const auto& part : Split(trimmed, ',')) {
    const std::string piece = Trim(part);
    const std::size_t eq = piece.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::ParseError("bad RDN '" + piece + "' in DN '" +
                                std::string(text) + "'");
    }
    Rdn rdn;
    rdn.attr = ToLower(Trim(piece.substr(0, eq)));
    rdn.value = Trim(piece.substr(eq + 1));
    if (rdn.value.empty()) {
      return Status::ParseError("empty value in RDN '" + piece + "'");
    }
    dn.rdns_.push_back(std::move(rdn));
  }
  return dn;
}

Dn Dn::Of(std::vector<Rdn> rdns) {
  Dn dn;
  dn.rdns_ = std::move(rdns);
  for (auto& rdn : dn.rdns_) rdn.attr = ToLower(rdn.attr);
  return dn;
}

Dn Dn::Parent() const {
  Dn parent;
  if (rdns_.size() > 1) {
    parent.rdns_.assign(rdns_.begin() + 1, rdns_.end());
  }
  return parent;
}

Dn Dn::Child(std::string attr, std::string value) const {
  Dn child;
  child.rdns_.reserve(rdns_.size() + 1);
  child.rdns_.push_back({ToLower(attr), std::move(value)});
  child.rdns_.insert(child.rdns_.end(), rdns_.begin(), rdns_.end());
  return child;
}

bool Dn::IsChildOf(const Dn& ancestor) const {
  return depth() == ancestor.depth() + 1 && IsUnder(ancestor);
}

bool Dn::IsUnder(const Dn& ancestor) const {
  if (ancestor.depth() > depth()) return false;
  const std::size_t skip = depth() - ancestor.depth();
  for (std::size_t i = 0; i < ancestor.depth(); ++i) {
    if (rdns_[skip + i] != ancestor.rdns_[i]) return false;
  }
  return true;
}

std::string Dn::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i) out += ", ";
    out += rdns_[i].attr + "=" + rdns_[i].value;
  }
  return out;
}

}  // namespace jamm::directory
