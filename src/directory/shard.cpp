#include "directory/shard.hpp"

#include <algorithm>

#include "directory/filter.hpp"
#include "telemetry/metrics.hpp"

namespace jamm::directory {

namespace {

telemetry::Counter& MigrationsCompleted() {
  static telemetry::Counter& c =
      telemetry::Metrics().counter("directory.shard.migrations_completed");
  return c;
}

/// Wrap entries as lenient replicated adds (seq 0: the target mints its
/// own — migration changes enter the target's log as local history).
std::vector<Change> AsAdds(const std::vector<Entry>& entries) {
  std::vector<Change> changes;
  changes.reserve(entries.size());
  for (const Entry& entry : entries) {
    Change change;
    change.type = Change::Type::kAdd;
    change.entry = entry;
    changes.push_back(std::move(change));
  }
  return changes;
}

}  // namespace

ShardMigrator::ShardMigrator(std::shared_ptr<DirectoryServer> source,
                             std::shared_ptr<DirectoryServer> target,
                             Dn subtree, Options options)
    : source_(std::move(source)),
      target_(std::move(target)),
      subtree_(std::move(subtree)),
      options_(options) {}

Status ShardMigrator::StepCopy() {
  if (!copy_started_) {
    // Fence first, then read: every change after `catchup_seq_` will be
    // re-shipped in kCatchUp, so a write racing this snapshot read is
    // never lost — at worst it is applied twice (the apply is lenient).
    catchup_seq_ = source_->last_seq();
    auto result =
        source_->Search(subtree_, SearchScope::kSubtree, Filter::MatchAll());
    if (!result.ok()) return result.status();
    copy_list_ = std::move(result->entries);
    std::sort(copy_list_.begin(), copy_list_.end(),
              [](const Entry& a, const Entry& b) {
                if (a.dn().depth() != b.dn().depth()) {
                  return a.dn().depth() < b.dn().depth();  // parents first
                }
                return a.dn().ToString() < b.dn().ToString();
              });
    copy_started_ = true;
  }
  const std::size_t end =
      std::min(copy_cursor_ + options_.copy_batch, copy_list_.size());
  if (copy_cursor_ < end) {
    std::vector<Entry> batch(copy_list_.begin() + copy_cursor_,
                             copy_list_.begin() + end);
    JAMM_RETURN_IF_ERROR(target_->ApplyReplicatedBatch(AsAdds(batch)));
    stats_.copied += batch.size();
    copy_cursor_ = end;
  }
  if (copy_cursor_ >= copy_list_.size()) {
    copy_list_.clear();
    phase_ = Phase::kCatchUp;
  }
  return Status::Ok();
}

Status ShardMigrator::StepCatchUp() {
  if (!source_->alive()) {
    return Status::Unavailable("migration source down: " + source_->address());
  }
  auto delta = source_->ChangesSince(catchup_seq_);
  std::uint64_t max_seq = catchup_seq_;
  std::vector<Change> relevant;
  for (Change& change : delta) {
    max_seq = std::max(max_seq, change.seq);
    // The target owns its own referral layout; everything else under the
    // subtree replays (leases included — renewals must not be lost).
    if (change.type == Change::Type::kReferral) continue;
    if (!change.entry.dn().IsUnder(subtree_)) continue;
    change.seq = 0;  // the target mints its own
    relevant.push_back(std::move(change));
  }
  if (!relevant.empty()) {
    JAMM_RETURN_IF_ERROR(target_->ApplyReplicatedBatch(relevant));
    stats_.caught_up += relevant.size();
  }
  const bool drained = relevant.empty();
  catchup_seq_ = max_seq;
  if (drained) phase_ = Phase::kCutover;
  return Status::Ok();
}

Status ShardMigrator::StepCutover() {
  // One snapshot swap on the source installs the referral and removes the
  // local entries; the returned set is the final authoritative state
  // (leases as of the swap) and is flushed to the target. Writes racing
  // the cutover either land before it (caught by this final set) or get
  // the referral and chase to the target through the pool.
  auto final_entries = source_->CutoverSubtree(subtree_, target_->address());
  if (!final_entries.ok()) return final_entries.status();
  if (!final_entries->empty()) {
    JAMM_RETURN_IF_ERROR(target_->ApplyReplicatedBatch(AsAdds(*final_entries)));
    stats_.moved_final = final_entries->size();
  }
  phase_ = Phase::kDone;
  MigrationsCompleted().Increment();
  return Status::Ok();
}

Result<ShardMigrator::Phase> ShardMigrator::Step() {
  ++stats_.steps;
  Status status = Status::Ok();
  switch (phase_) {
    case Phase::kCopy:
      status = StepCopy();
      break;
    case Phase::kCatchUp:
      status = StepCatchUp();
      break;
    case Phase::kCutover:
      status = StepCutover();
      break;
    case Phase::kDone:
      break;
  }
  if (!status.ok()) return status;
  return phase_;
}

Status ShardMigrator::Run() {
  while (phase_ != Phase::kDone) {
    auto step = Step();
    if (!step.ok()) return step.status();
  }
  return Status::Ok();
}

}  // namespace jamm::directory
