#include "directory/filter.hpp"

#include "common/strings.hpp"

namespace jamm::directory {

struct Filter::Node {
  enum class Kind { kAnd, kOr, kNot, kEquality, kPresence, kSubstring, kGe, kLe };
  Kind kind;
  std::vector<std::shared_ptr<const Node>> children;  // kAnd/kOr/kNot
  std::string attr;                                   // leaf kinds
  std::string value;                                  // leaf kinds
};

namespace {

using Node = Filter::Node;

// Recursive descent over "(...)" — `i` points at the expected '('.
Result<std::shared_ptr<const Node>> ParseNode(std::string_view text,
                                              std::size_t& i);

Result<std::shared_ptr<const Node>> ParseLeaf(std::string_view body) {
  // body is "attr<op>value" with op in {=, >=, <=}.
  auto make = [](Node::Kind kind, std::string attr, std::string value) {
    auto node = std::make_shared<Node>();
    node->kind = kind;
    node->attr = ToLower(attr);
    node->value = std::move(value);
    return std::shared_ptr<const Node>(node);
  };
  for (std::size_t p = 0; p < body.size(); ++p) {
    if (body[p] == '=') {
      std::string value(body.substr(p + 1));
      if (p > 0 && (body[p - 1] == '>' || body[p - 1] == '<')) {
        std::string attr(body.substr(0, p - 1));
        if (attr.empty()) return Status::ParseError("filter: empty attribute");
        return make(body[p - 1] == '>' ? Node::Kind::kGe : Node::Kind::kLe,
                    std::move(attr), std::move(value));
      }
      std::string attr(body.substr(0, p));
      if (attr.empty()) return Status::ParseError("filter: empty attribute");
      if (value == "*") {
        return make(Node::Kind::kPresence, std::move(attr), "");
      }
      if (value.find('*') != std::string::npos) {
        return make(Node::Kind::kSubstring, std::move(attr), std::move(value));
      }
      return make(Node::Kind::kEquality, std::move(attr), std::move(value));
    }
  }
  return Status::ParseError("filter: no comparison in '" + std::string(body) +
                            "'");
}

Result<std::shared_ptr<const Node>> ParseNode(std::string_view text,
                                              std::size_t& i) {
  if (i >= text.size() || text[i] != '(') {
    return Status::ParseError("filter: expected '(' at offset " +
                              std::to_string(i));
  }
  ++i;
  if (i >= text.size()) return Status::ParseError("filter: truncated");
  const char op = text[i];
  if (op == '&' || op == '|') {
    ++i;
    auto node = std::make_shared<Node>();
    node->kind = op == '&' ? Node::Kind::kAnd : Node::Kind::kOr;
    while (i < text.size() && text[i] == '(') {
      auto child = ParseNode(text, i);
      if (!child.ok()) return child;
      node->children.push_back(*child);
    }
    if (node->children.empty()) {
      return Status::ParseError("filter: empty conjunction");
    }
    if (i >= text.size() || text[i] != ')') {
      return Status::ParseError("filter: expected ')' closing conjunction");
    }
    ++i;
    return std::shared_ptr<const Node>(node);
  }
  if (op == '!') {
    ++i;
    auto child = ParseNode(text, i);
    if (!child.ok()) return child;
    if (i >= text.size() || text[i] != ')') {
      return Status::ParseError("filter: expected ')' closing negation");
    }
    ++i;
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kNot;
    node->children.push_back(*child);
    return std::shared_ptr<const Node>(node);
  }
  // Leaf: scan to the matching ')'.
  const std::size_t close = text.find(')', i);
  if (close == std::string_view::npos) {
    return Status::ParseError("filter: unterminated leaf");
  }
  auto leaf = ParseLeaf(text.substr(i, close - i));
  if (!leaf.ok()) return leaf;
  i = close + 1;
  return leaf;
}

bool CompareOrdered(const std::string& entry_value,
                    const std::string& filter_value, bool want_ge) {
  auto lhs = ParseDouble(entry_value);
  auto rhs = ParseDouble(filter_value);
  if (lhs.ok() && rhs.ok()) {
    return want_ge ? *lhs >= *rhs : *lhs <= *rhs;
  }
  return want_ge ? entry_value >= filter_value : entry_value <= filter_value;
}

bool NodeMatches(const Node& node, const Entry& entry) {
  switch (node.kind) {
    case Node::Kind::kAnd:
      for (const auto& c : node.children) {
        if (!NodeMatches(*c, entry)) return false;
      }
      return true;
    case Node::Kind::kOr:
      for (const auto& c : node.children) {
        if (NodeMatches(*c, entry)) return true;
      }
      return false;
    case Node::Kind::kNot:
      return !NodeMatches(*node.children[0], entry);
    case Node::Kind::kPresence:
      return entry.Has(node.attr);
    case Node::Kind::kEquality:
    case Node::Kind::kSubstring:
    case Node::Kind::kGe:
    case Node::Kind::kLe: {
      const auto* values = entry.GetAll(node.attr);
      if (!values) return false;
      for (const auto& v : *values) {
        switch (node.kind) {
          case Node::Kind::kEquality:
            if (v == node.value) return true;
            break;
          case Node::Kind::kSubstring:
            if (GlobMatch(node.value, v)) return true;
            break;
          case Node::Kind::kGe:
            if (CompareOrdered(v, node.value, /*want_ge=*/true)) return true;
            break;
          case Node::Kind::kLe:
            if (CompareOrdered(v, node.value, /*want_ge=*/false)) return true;
            break;
          default:
            break;
        }
      }
      return false;
    }
  }
  return false;
}

std::string NodeToString(const Node& node) {
  switch (node.kind) {
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      std::string out = node.kind == Node::Kind::kAnd ? "(&" : "(|";
      for (const auto& c : node.children) out += NodeToString(*c);
      return out + ")";
    }
    case Node::Kind::kNot:
      return "(!" + NodeToString(*node.children[0]) + ")";
    case Node::Kind::kPresence:
      return "(" + node.attr + "=*)";
    case Node::Kind::kEquality:
    case Node::Kind::kSubstring:
      return "(" + node.attr + "=" + node.value + ")";
    case Node::Kind::kGe:
      return "(" + node.attr + ">=" + node.value + ")";
    case Node::Kind::kLe:
      return "(" + node.attr + "<=" + node.value + ")";
  }
  return "(?)";
}

}  // namespace

Result<Filter> Filter::Parse(std::string_view text) {
  std::string_view trimmed = TrimView(text);
  std::size_t i = 0;
  auto root = ParseNode(trimmed, i);
  if (!root.ok()) return root.status();
  if (i != trimmed.size()) {
    return Status::ParseError("filter: trailing characters after ')'");
  }
  Filter f;
  f.root_ = *root;
  return f;
}

Filter Filter::MatchAll() {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kPresence;
  node->attr = "objectclass";
  Filter f;
  f.root_ = node;
  return f;
}

bool Filter::Matches(const Entry& entry) const {
  return root_ && NodeMatches(*root_, entry);
}

std::string Filter::ToString() const {
  return root_ ? NodeToString(*root_) : "()";
}

}  // namespace jamm::directory
