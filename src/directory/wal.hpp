// Durable write-ahead log for the directory (ISSUE 9). Every change the
// server acks is serialized, checksummed, and fsync-simulated into a
// WalStorage that outlives the DirectoryServer object, so a Crash() /
// Restart() cycle recovers to exactly the last acked write. The same log
// is the replication feed: replicas catch up from any byte offset
// (Replicator ships committed frames in batches instead of pushing an
// in-memory change list).
//
// Frame format, repeated to end of log:
//     u32  payload length
//     u32  crc32 of the payload bytes
//     u8[] payload (one serialized Change)
//
// Recovery walks frames from byte 0 and stops at the first frame whose
// length overruns the log or whose CRC fails — a torn tail from a crash
// mid-append — and truncates the log there. Nothing before the torn
// frame is lost; nothing after it was ever acked (Commit() is the ack
// barrier).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "directory/server.hpp"

namespace jamm::directory {

/// Serialize one change-log record into `out` (appended).
void EncodeChange(const Change& change, std::vector<std::uint8_t>* out);

/// Decode one change record; false on any malformed/truncated input.
bool DecodeChange(const std::uint8_t* data, std::size_t size, Change* out);

/// The simulated durable medium. Lives in a shared_ptr that survives the
/// owning server's Crash(); bytes up to the sync high-water mark are
/// durable, anything past it is lost with the process. Internally locked:
/// a Replicator may read committed frames while the owner appends.
class WalStorage {
 public:
  /// Total bytes written (durable + unsynced tail).
  std::uint64_t size() const;
  /// Bytes guaranteed to survive a crash (advanced by Commit()).
  std::uint64_t synced_size() const;
  /// Number of simulated fsyncs (group commit: one per acked batch).
  std::uint64_t fsyncs() const;

  /// Crash simulation: drop everything past the sync high-water mark.
  void DropUnsynced();

  /// Test hook — deterministically flip `bytes` trailing *synced* bytes,
  /// simulating a torn or corrupted tail the recovery replay must detect
  /// and truncate. Returns how many bytes were actually flipped.
  std::size_t CorruptTail(std::size_t bytes);

  /// Test hook — chop the log to `size` raw bytes (mid-frame allowed).
  void TruncateRaw(std::uint64_t size);

 private:
  friend class WriteAheadLog;

  mutable std::mutex mu_;
  std::vector<std::uint8_t> bytes_;
  std::uint64_t synced_ = 0;
  std::uint64_t fsyncs_ = 0;
};

class WriteAheadLog {
 public:
  /// A null `storage` gets a fresh private one (server-local durability).
  explicit WriteAheadLog(std::shared_ptr<WalStorage> storage);

  const std::shared_ptr<WalStorage>& storage() const { return storage_; }

  /// Frame and append one change. NOT durable until Commit() — callers
  /// append a whole batch, then Commit() once (group commit), then ack.
  void Append(const Change& change);

  /// Simulated fsync: everything appended so far becomes durable.
  void Commit();

  struct ReplayStats {
    std::uint64_t records = 0;          // intact frames replayed
    std::uint64_t bytes = 0;            // bytes covered by intact frames
    std::uint64_t truncated_bytes = 0;  // torn/corrupt tail removed
  };

  /// Walk every committed frame from byte 0, calling `fn` per change; a
  /// torn tail is truncated from the storage. The recovery path.
  ReplayStats Replay(const std::function<void(const Change&)>& fn);

  /// Read up to `max_records` committed changes starting at byte
  /// `offset`, advancing `*next_offset` past the frames consumed. An
  /// offset beyond the committed size (a primary that crashed and lost
  /// its unsynced tail) yields nothing and clamps `*next_offset` back.
  /// The replication shipping path: replicas resume from any offset.
  std::vector<Change> ReadFrom(std::uint64_t offset, std::size_t max_records,
                               std::uint64_t* next_offset) const;

  /// Byte offset just past the last committed frame whose seq is
  /// <= `seq` — where a replica that has applied `seq` should resume.
  std::uint64_t OffsetAfterSeq(std::uint64_t seq) const;

  std::uint64_t committed_size() const { return storage_->synced_size(); }
  std::uint64_t fsyncs() const { return storage_->fsyncs(); }

 private:
  std::shared_ptr<WalStorage> storage_;
};

}  // namespace jamm::directory
