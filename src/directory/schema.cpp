#include "directory/schema.hpp"

#include "common/strings.hpp"
#include "common/time_util.hpp"

namespace jamm::directory::schema {

Dn HostDn(const Dn& suffix, const std::string& host) {
  return suffix.Child("host", host);
}

Dn SensorDn(const Dn& suffix, const std::string& host,
            const std::string& sensor_name) {
  return HostDn(suffix, host).Child("cn", sensor_name);
}

Dn GatewayDn(const Dn& suffix, const std::string& host) {
  return HostDn(suffix, host).Child("cn", "gateway");
}

Dn ArchiveDn(const Dn& suffix, const std::string& archive_name) {
  return suffix.Child("ou", "archives").Child("cn", archive_name);
}

Dn FederationDn(const Dn& suffix, const std::string& level_name) {
  return suffix.Child("ou", "federation").Child("cn", level_name);
}

Entry MakeHostEntry(const Dn& suffix, const std::string& host) {
  Entry entry(HostDn(suffix, host));
  entry.Set(kAttrObjectClass, std::string(kHostClass));
  entry.Set(kAttrHost, host);
  return entry;
}

Entry MakeSensorEntry(const Dn& suffix, const std::string& host,
                      const std::string& sensor_name,
                      const std::string& sensor_type,
                      const std::string& gateway_address,
                      std::int64_t frequency_ms, TimePoint start_time) {
  Entry entry(SensorDn(suffix, host, sensor_name));
  entry.Set(kAttrObjectClass, std::string(kSensorClass));
  entry.Set(kAttrHost, host);
  entry.Set(kAttrSensorName, sensor_name);
  entry.Set(kAttrSensorType, sensor_type);
  entry.Set(kAttrGateway, gateway_address);
  entry.Set(kAttrFrequencyMs, std::to_string(frequency_ms));
  entry.Set(kAttrStatus, "running");
  entry.Set(kAttrStartTime, FormatUlmDate(start_time));
  entry.Set(kAttrConsumers, "0");
  return entry;
}

Entry MakeGatewayEntry(const Dn& suffix, const std::string& host,
                       const std::string& address) {
  Entry entry(GatewayDn(suffix, host));
  entry.Set(kAttrObjectClass, std::string(kGatewayClass));
  entry.Set(kAttrHost, host);
  entry.Set(kAttrAddress, address);
  return entry;
}

Entry MakeArchiveEntry(const Dn& suffix, const std::string& archive_name,
                       const std::string& address,
                       const std::string& contents, std::uint64_t segments,
                       TimePoint span_min, TimePoint span_max) {
  Entry entry(ArchiveDn(suffix, archive_name));
  entry.Set(kAttrObjectClass, std::string(kArchiveClass));
  entry.Set(kAttrAddress, address);
  entry.Set(kAttrContents, contents);
  entry.Set(kAttrSegments, std::to_string(segments));
  if (span_min != 0 || span_max != 0) {
    entry.Set(kAttrSpanMin, FormatUlmDate(span_min));
    entry.Set(kAttrSpanMax, FormatUlmDate(span_max));
  }
  return entry;
}

void StampLease(Entry& entry, TimePoint expiry) {
  entry.Set(kAttrLeaseExpires, std::to_string(expiry));
}

std::optional<TimePoint> LeaseExpiry(const Entry& entry) {
  if (!entry.Has(kAttrLeaseExpires)) return std::nullopt;
  auto expiry = ParseInt(entry.Get(kAttrLeaseExpires));
  if (!expiry.ok()) return std::nullopt;
  return static_cast<TimePoint>(*expiry);
}

Entry MakeFederationEntry(const Dn& suffix, const std::string& level_name,
                          const std::string& address, int tier,
                          const std::vector<std::string>& children) {
  Entry entry(FederationDn(suffix, level_name));
  entry.Set(kAttrObjectClass, std::string(kFederationClass));
  entry.Set(kAttrAddress, address);
  entry.Set(kAttrTier, std::to_string(tier));
  entry.Set(kAttrChildren, Join(children, ","));
  return entry;
}

Entry MakeSummaryEntry(const Dn& suffix, const std::string& host,
                       const std::string& metric, double value) {
  Entry entry(HostDn(suffix, host).Child("cn", "summary-" + metric));
  entry.Set(kAttrObjectClass, std::string(kSummaryClass));
  entry.Set(kAttrHost, host);
  entry.Set(kAttrMetric, metric);
  entry.Set(kAttrValue, std::to_string(value));
  return entry;
}

}  // namespace jamm::directory::schema
