// Matisse application simulation (paper §6, Figures 5-7): MEMS video
// frames striped across DPSS storage servers at Berkeley stream over
// DARPA Supernet to a compute cluster at ISI East, which analyses each
// frame and hands the result to a visualization workstation.
//
// The pipeline per frame:
//   MPLAY_START_READ_FRAME  (player requests the next frame)
//   DPSS_START_SEND ×N      (each stripe server starts sending)
//   ... TCP transfer over the WAN (netsim) ...
//   MPLAY_END_READ_FRAME    (all stripes received at the compute host)
//   [compute_time]          (frame analysis)
//   MPLAY_START_PUT_IMAGE   (result displayed on the workstation)
//   MPLAY_END_PUT_IMAGE
// and the next frame's read begins as soon as the previous read ends
// (fetch is pipelined with analysis/display, as a double-buffered player).
//
// The app also:
//  * records every application read() size — reads drain the socket in
//    chunks of at most `read_chunk_limit`, which is what produces the
//    Figure-3 two-cluster scatter (full-buffer reads vs trickle reads);
//  * couples the netsim state to a sysmon::SimHost for the receiving
//    host so ordinary JAMM vmstat/netstat sensors observe the Figure-7
//    signals (high system CPU, TCP retransmits, window changes).
#pragma once

#include <memory>
#include <vector>

#include "netsim/profiles.hpp"
#include "netsim/tcp.hpp"
#include "sysmon/simhost.hpp"
#include "ulm/record.hpp"

namespace jamm::matisse {

struct MatisseConfig {
  int dpss_servers = 4;                       // stripes (the demo used 4)
  std::uint64_t frame_bytes = 3'000'000;      // ≈3 MB per video frame
  Duration compute_time = 20 * kMillisecond;  // per-frame analysis
  Duration display_time = 30 * kMillisecond;  // put-image on the viz host
  std::size_t read_chunk_limit = 64 * 1024;   // app read() buffer size
  Duration read_poll = kMillisecond;          // reader loop period
  std::uint64_t max_frames = 0;               // 0 = run until Stop()
};

class MatisseApp {
 public:
  MatisseApp(netsim::Simulator& sim, netsim::Network& net,
             const netsim::MatisseTopology& topo, MatisseConfig config = {});
  ~MatisseApp();

  MatisseApp(const MatisseApp&) = delete;
  MatisseApp& operator=(const MatisseApp&) = delete;

  void Start();
  void Stop();

  // ----------------------------------------------------------- outputs

  /// Every ULM event emitted so far (MPLAY_*, DPSS_*, TCPD_RETRANSMITS),
  /// in emission order.
  const std::vector<ulm::Record>& events() const { return events_; }

  /// read() sizes observed by the application reader (Figure 3 data).
  const std::vector<double>& read_sizes() const { return read_sizes_; }

  /// Completion stamp of each frame's read (frame arrival times — the
  /// frame-rate series comes from these).
  const std::vector<TimePoint>& frame_arrivals() const {
    return frame_arrivals_;
  }

  std::uint64_t frames_completed() const { return frames_completed_; }

  /// Simulated host mirroring the receiving compute node; run JAMM host
  /// sensors against it. Its CPU/system load, TCP retransmit counter, and
  /// window size are refreshed from the network simulation every 500 ms.
  sysmon::SimHost& compute_host() { return *compute_host_; }

  /// Total retransmissions across all stripe flows.
  std::uint64_t total_retransmits() const;
  /// Aggregate goodput so far (bits/s).
  double AggregateThroughputBps() const;

 private:
  void StartFrame();
  void ReaderTick();
  void FinishFrameRead();
  void CoupleSensors();
  ulm::Record MakeEvent(const std::string& host, const std::string& prog,
                        std::string_view event_name) const;

  netsim::Simulator& sim_;
  netsim::Network& net_;
  netsim::MatisseTopology topo_;
  MatisseConfig config_;

  std::vector<std::unique_ptr<netsim::TcpFlow>> flows_;
  std::unique_ptr<sysmon::SimHost> compute_host_;

  bool running_ = false;
  std::uint64_t frame_id_ = 0;
  std::uint64_t frame_received_ = 0;   // bytes of current frame read
  std::uint64_t available_ = 0;        // delivered but not yet read()
  bool frame_in_flight_ = false;

  std::vector<ulm::Record> events_;
  std::vector<double> read_sizes_;
  std::vector<TimePoint> frame_arrivals_;
  std::uint64_t frames_completed_ = 0;
};

/// Event names (Figure 7's y-axis).
namespace event {
inline constexpr char kStartReadFrame[] = "MPLAY_START_READ_FRAME";
inline constexpr char kEndReadFrame[] = "MPLAY_END_READ_FRAME";
inline constexpr char kStartPutImage[] = "MPLAY_START_PUT_IMAGE";
inline constexpr char kEndPutImage[] = "MPLAY_END_PUT_IMAGE";
inline constexpr char kDpssStartSend[] = "DPSS_START_SEND";
inline constexpr char kTcpdRetransmits[] = "TCPD_RETRANSMITS";
}  // namespace event

}  // namespace jamm::matisse
