#include "matisse/matisse.hpp"

#include <algorithm>

namespace jamm::matisse {

MatisseApp::MatisseApp(netsim::Simulator& sim, netsim::Network& net,
                       const netsim::MatisseTopology& topo,
                       MatisseConfig config)
    : sim_(sim), net_(net), topo_(topo), config_(config) {
  compute_host_ = std::make_unique<sysmon::SimHost>(
      net_.NodeName(topo_.compute), sim_.clock());
  compute_host_->SetBaseLoad(8, 2);  // idle analysis code + OS

  const int n = std::min<int>(config_.dpss_servers,
                              static_cast<int>(topo_.dpss.size()));
  for (int i = 0; i < n; ++i) {
    netsim::TcpConfig tcp = netsim::PaperTcpConfig();  // app-driven flow
    auto flow = std::make_unique<netsim::TcpFlow>(
        net_, topo_.dpss[static_cast<std::size_t>(i)], topo_.compute, tcp);
    flow->on_deliver = [this](std::uint64_t bytes, TimePoint) {
      available_ += bytes;
    };
    flow->on_retransmit = [this](TimePoint) {
      if (!running_) return;
      compute_host_->AddTcpRetransmits(1);
      auto rec = MakeEvent(compute_host_->host(), "tcpdump",
                           event::kTcpdRetransmits);
      rec.SetField("VAL", std::int64_t{1});
      events_.push_back(std::move(rec));
    };
    flow->on_window_change = [this](double cwnd_bytes) {
      compute_host_->SetTcpWindow(static_cast<std::int64_t>(cwnd_bytes));
    };
    flows_.push_back(std::move(flow));
  }
}

MatisseApp::~MatisseApp() { Stop(); }

ulm::Record MatisseApp::MakeEvent(const std::string& host,
                                  const std::string& prog,
                                  std::string_view event_name) const {
  return ulm::Record(sim_.Now(), host, prog, "Usage",
                     std::string(event_name));
}

void MatisseApp::Start() {
  if (running_) return;
  running_ = true;
  for (auto& flow : flows_) flow->Start();
  StartFrame();
  ReaderTick();
  CoupleSensors();
}

void MatisseApp::Stop() { running_ = false; }

void MatisseApp::StartFrame() {
  if (!running_) return;
  if (config_.max_frames > 0 && frame_id_ >= config_.max_frames) return;
  ++frame_id_;
  frame_in_flight_ = true;
  frame_received_ = 0;

  auto start = MakeEvent(net_.NodeName(topo_.viz), "mplay",
                         event::kStartReadFrame);
  start.SetField("FRAME.ID", static_cast<std::int64_t>(frame_id_));
  events_.push_back(std::move(start));

  // Each stripe server pushes its share of the frame.
  const std::uint64_t stripe =
      config_.frame_bytes / static_cast<std::uint64_t>(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    auto send = MakeEvent(net_.NodeName(topo_.dpss[i]), "dpss",
                          event::kDpssStartSend);
    send.SetField("FRAME.ID", static_cast<std::int64_t>(frame_id_));
    send.SetField("STRIPE.SZ", static_cast<std::int64_t>(stripe));
    events_.push_back(std::move(send));
    flows_[i]->OfferBytes(stripe);
  }
}

void MatisseApp::ReaderTick() {
  if (!running_) return;
  // The application's read() loop: drain at most read_chunk_limit bytes
  // per call — the Figure-3 distribution comes from these sizes.
  if (available_ > 0 && frame_in_flight_) {
    const std::uint64_t got =
        std::min<std::uint64_t>(available_, config_.read_chunk_limit);
    available_ -= got;
    frame_received_ += got;
    read_sizes_.push_back(static_cast<double>(got));
    const std::uint64_t stripe_total =
        (config_.frame_bytes / flows_.size()) * flows_.size();
    if (frame_received_ >= stripe_total) {
      FinishFrameRead();
    }
  }
  sim_.Schedule(config_.read_poll, [this] { ReaderTick(); });
}

void MatisseApp::FinishFrameRead() {
  frame_in_flight_ = false;
  ++frames_completed_;
  frame_arrivals_.push_back(sim_.Now());

  auto end = MakeEvent(compute_host_->host(), "mplay", event::kEndReadFrame);
  end.SetField("FRAME.ID", static_cast<std::int64_t>(frame_id_));
  events_.push_back(std::move(end));

  const std::uint64_t display_frame = frame_id_;
  // Analysis, then display on the workstation; fetch of the next frame is
  // pipelined with both.
  sim_.Schedule(config_.compute_time, [this, display_frame] {
    if (!running_) return;
    auto start = MakeEvent(net_.NodeName(topo_.viz), "mplay",
                           event::kStartPutImage);
    start.SetField("FRAME.ID", static_cast<std::int64_t>(display_frame));
    events_.push_back(std::move(start));
    sim_.Schedule(config_.display_time, [this, display_frame] {
      if (!running_) return;
      auto end_put = MakeEvent(net_.NodeName(topo_.viz), "mplay",
                               event::kEndPutImage);
      end_put.SetField("FRAME.ID", static_cast<std::int64_t>(display_frame));
      events_.push_back(std::move(end_put));
    });
  });
  StartFrame();
}

void MatisseApp::CoupleSensors() {
  if (!running_) return;
  // Mirror the receiving host's simulated NIC/driver load into the
  // SimHost the JAMM vmstat sensor reads.
  compute_host_->SetBaseLoad(8, 2 + net_.ReceiverCpuPct(topo_.compute));
  sim_.Schedule(500 * kMillisecond, [this] { CoupleSensors(); });
}

std::uint64_t MatisseApp::total_retransmits() const {
  std::uint64_t total = 0;
  for (const auto& flow : flows_) total += flow->stats().retransmits;
  return total;
}

double MatisseApp::AggregateThroughputBps() const {
  double total = 0;
  for (const auto& flow : flows_) total += flow->ThroughputBps();
  return total;
}

}  // namespace jamm::matisse
