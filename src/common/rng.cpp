#include "common/rng.hpp"

#include <cmath>

namespace jamm {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Seed(std::uint64_t seed) {
  // Expand the seed through SplitMix64 as the xoshiro authors recommend;
  // guarantees a non-zero state for any seed.
  for (auto& s : s_) s = SplitMix64(seed);
  has_spare_normal_ = false;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::Uniform(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  // Lemire-style rejection-free mapping is overkill here; modulo bias is
  // negligible for the span sizes simulations use, but reject the biased
  // tail anyway so property tests see exact uniformity.
  const std::uint64_t limit = ~0ull - (~0ull % span + 1) % span;
  std::uint64_t v;
  do {
    v = Next();
  } while (v > limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  // Avoid log(0) by mapping into (0,1].
  double u = 1.0 - NextDouble();
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Pareto(double xm, double alpha) {
  double u = 1.0 - NextDouble();
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace jamm
