#include "common/time_util.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace jamm {
namespace {

// Howard Hinnant's proleptic-Gregorian algorithms; branch-free, valid far
// beyond any timestamp this system will see, and independent of the C
// library's timezone database.
constexpr std::int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

struct Civil {
  int year;
  unsigned month;  // [1, 12]
  unsigned day;    // [1, 31]
};

constexpr Civil CivilFromDays(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);               // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);               // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                    // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                            // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                                 // [1, 12]
  return {static_cast<int>(y + (m <= 2)), m, d};
}

struct BrokenDown {
  Civil date;
  unsigned hour, minute, second;
  std::int64_t micros;
};

BrokenDown Decompose(TimePoint t) {
  std::int64_t secs = t / kSecond;
  std::int64_t micros = t % kSecond;
  if (micros < 0) {  // floor division for pre-epoch times
    micros += kSecond;
    secs -= 1;
  }
  std::int64_t days = secs / 86400;
  std::int64_t sod = secs % 86400;
  if (sod < 0) {
    sod += 86400;
    days -= 1;
  }
  BrokenDown out;
  out.date = CivilFromDays(days);
  out.hour = static_cast<unsigned>(sod / 3600);
  out.minute = static_cast<unsigned>((sod / 60) % 60);
  out.second = static_cast<unsigned>(sod % 60);
  out.micros = micros;
  return out;
}

bool ParseDigits(std::string_view s, std::size_t pos, std::size_t n,
                 std::int64_t& out) {
  if (pos + n > s.size()) return false;
  std::int64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = s[pos + i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  out = v;
  return true;
}

}  // namespace

std::string FormatUlmDate(TimePoint t) {
  const BrokenDown b = Decompose(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d%02u%02u%02u%02u%02u.%06" PRId64,
                b.date.year, b.date.month, b.date.day, b.hour, b.minute,
                b.second, b.micros);
  return buf;
}

std::string FormatIsoDate(TimePoint t) {
  const BrokenDown b = Decompose(t);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02u:%02u:%02u.%06" PRId64,
                b.date.year, b.date.month, b.date.day, b.hour, b.minute,
                b.second, b.micros);
  return buf;
}

Result<TimePoint> ParseUlmDate(std::string_view text) {
  // YYYYMMDDHHMMSS[.f{1,6}]
  std::int64_t year, month, day, hour, minute, second;
  if (!ParseDigits(text, 0, 4, year) || !ParseDigits(text, 4, 2, month) ||
      !ParseDigits(text, 6, 2, day) || !ParseDigits(text, 8, 2, hour) ||
      !ParseDigits(text, 10, 2, minute) || !ParseDigits(text, 12, 2, second)) {
    return Status::ParseError("ULM DATE too short or non-numeric: '" +
                              std::string(text) + "'");
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    return Status::ParseError("ULM DATE field out of range: '" +
                              std::string(text) + "'");
  }
  std::int64_t micros = 0;
  if (text.size() > 14) {
    if (text[14] != '.') {
      return Status::ParseError("ULM DATE: expected '.' before fraction");
    }
    std::string_view frac = text.substr(15);
    if (frac.empty() || frac.size() > 6) {
      return Status::ParseError("ULM DATE: fraction must be 1-6 digits");
    }
    std::int64_t scale = 100000;
    for (char c : frac) {
      if (c < '0' || c > '9') {
        return Status::ParseError("ULM DATE: non-digit in fraction");
      }
      micros += (c - '0') * scale;
      scale /= 10;
    }
  }
  const std::int64_t days = DaysFromCivil(static_cast<int>(year),
                                          static_cast<unsigned>(month),
                                          static_cast<unsigned>(day));
  const std::int64_t secs =
      days * 86400 + hour * 3600 + minute * 60 + second;
  return secs * kSecond + micros;
}

}  // namespace jamm
