// Internal diagnostic logging for the jamm components themselves (distinct
// from the ULM monitoring events the system exists to move around).
// Writes to stderr; level-filtered; safe from multiple threads.
#pragma once

#include <sstream>
#include <string>

namespace jamm {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; default kWarn so tests/benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogWrite(LogLevel level, const std::string& component,
              const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { LogWrite(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace internal

#define JAMM_LOG(level, component) \
  ::jamm::internal::LogLine(::jamm::LogLevel::level, component)

}  // namespace jamm
