// Clock abstraction. Everything in jamm that needs "now" takes a Clock&,
// so simulations and tests run deterministically (DESIGN.md §8) while the
// real-transport examples use the system clock.
//
// Time is a 64-bit count of microseconds since the Unix epoch (UTC); the
// paper's ULM DATE field carries microsecond precision, so this is the
// native resolution of the whole system.
#pragma once

#include <cstdint>

namespace jamm {

/// Microseconds since the Unix epoch (UTC).
using TimePoint = std::int64_t;
/// Microsecond duration.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;

/// Fractional seconds from a Duration, for reporting.
inline double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
inline Duration FromSeconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint Now() const = 0;
};

/// Wall clock (gettimeofday resolution via std::chrono::system_clock).
class SystemClock final : public Clock {
 public:
  TimePoint Now() const override;

  /// Shared process-wide instance.
  static SystemClock& Instance();
};

/// Manually advanced clock for deterministic tests and simulations.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimePoint start = 0) : now_(start) {}

  TimePoint Now() const override { return now_; }

  void Advance(Duration d) { now_ += d; }
  void Set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

}  // namespace jamm
