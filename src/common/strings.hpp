// Small string utilities shared across modules. Nothing clever: split,
// trim, join, predicates, and number parsing that reports failure via
// Result instead of silently returning 0.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace jamm {

/// Split on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Split on runs of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Split into at most `max_fields` pieces (the last piece keeps the rest).
std::vector<std::string> SplitN(std::string_view text, char sep,
                                std::size_t max_fields);

std::string_view TrimView(std::string_view text);
std::string Trim(std::string_view text);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// ASCII-only case transforms (ULM field names, DN attributes, OIDs).
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

Result<std::int64_t> ParseInt(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// Simple glob match supporting '*' and '?'; used by directory substring
/// filters and archive queries.
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace jamm
