// Deterministic pseudo-random number generation for simulations, workload
// generators, and property tests. xoshiro256** seeded via SplitMix64 —
// fast, high quality, and reproducible across platforms (unlike
// std::default_random_engine, whose behaviour is implementation-defined).
#pragma once

#include <cstdint>

namespace jamm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Bernoulli trial with probability p of true.
  bool Chance(double p);

  /// Exponential with the given mean (> 0); used for inter-arrival times.
  double Exponential(double mean);

  /// Normal via Box-Muller.
  double Normal(double mean, double stddev);

  /// Pareto with shape alpha (> 0) and minimum xm (> 0); heavy-tailed sizes.
  double Pareto(double xm, double alpha);

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return Next(); }

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace jamm
