#include "common/clock.hpp"

#include <chrono>

namespace jamm {

TimePoint SystemClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SystemClock& SystemClock::Instance() {
  static SystemClock clock;
  return clock;
}

}  // namespace jamm
