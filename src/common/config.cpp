#include "common/config.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace jamm {

bool ConfigSection::Has(std::string_view key) const {
  return entries_.find(std::string(key)) != entries_.end();
}

std::string ConfigSection::GetString(std::string_view key,
                                     std::string_view dflt) const {
  auto it = entries_.find(std::string(key));
  return it == entries_.end() ? std::string(dflt) : it->second;
}

std::int64_t ConfigSection::GetInt(std::string_view key,
                                   std::int64_t dflt) const {
  auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return dflt;
  auto parsed = ParseInt(it->second);
  return parsed.ok() ? *parsed : dflt;
}

double ConfigSection::GetDouble(std::string_view key, double dflt) const {
  auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return dflt;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? *parsed : dflt;
}

bool ConfigSection::GetBool(std::string_view key, bool dflt) const {
  auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return dflt;
  const std::string v = ToLower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return dflt;
}

std::vector<std::string> ConfigSection::GetList(std::string_view key) const {
  std::vector<std::string> out;
  auto it = entries_.find(std::string(key));
  if (it == entries_.end()) return out;
  for (const auto& piece : Split(it->second, ',')) {
    std::string trimmed = Trim(piece);
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

void ConfigSection::Set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

std::string ConfigSection::ToString() const {
  std::string out;
  if (!name_.empty()) {
    out += "[" + name_ + "]\n";
  }
  for (const auto& [k, v] : entries_) {
    out += k + " = " + v + "\n";
  }
  return out;
}

Result<Config> Config::ParseString(std::string_view text) {
  Config config;
  ConfigSection* current = nullptr;
  int line_no = 0;
  for (const auto& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = TrimView(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return Status::ParseError("config line " + std::to_string(line_no) +
                                  ": malformed section header");
      }
      current = &config.AddSection(Trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("config line " + std::to_string(line_no) +
                                ": expected key = value");
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::ParseError("config line " + std::to_string(line_no) +
                                ": empty key");
    }
    if (current == nullptr) {
      current = &config.AddSection("");  // global section
    }
    current->Set(std::move(key), std::move(value));
  }
  return config;
}

Result<Config> Config::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("config file not found: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseString(buf.str());
}

std::vector<const ConfigSection*> Config::SectionsNamed(
    std::string_view name) const {
  std::vector<const ConfigSection*> out;
  for (const auto& s : sections_) {
    if (s.name() == name) out.push_back(&s);
  }
  return out;
}

const ConfigSection* Config::FindSection(std::string_view name) const {
  for (const auto& s : sections_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

ConfigSection& Config::AddSection(std::string name) {
  sections_.emplace_back(std::move(name));
  return sections_.back();
}

std::string Config::ToString() const {
  std::string out;
  for (const auto& s : sections_) {
    out += s.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace jamm
