// Bounded thread-safe MPMC queue. This is the only cross-thread hand-off
// primitive in jamm (DESIGN.md §8): real-transport components are
// single-threaded state machines that exchange messages through it.
// Locking is plain mutex + condition_variable with RAII guards (CP.20);
// no lock-free code (CP.100).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/clock.hpp"

namespace jamm {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 1024) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Empty optional means closed-and-drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Pop with a deadline; empty optional on timeout or closed-and-drained.
  std::optional<T> PopFor(Duration timeout_us) {
    std::unique_lock lock(mu_);
    not_empty_.wait_for(lock, std::chrono::microseconds(timeout_us),
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// After Close, pushes fail; pops drain remaining items then return empty.
  void Close() {
    std::lock_guard lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace jamm
