// Process-unique identifiers for sensors, subscriptions, sessions, and
// NetLogger object lifelines.
#pragma once

#include <cstdint>
#include <string>

namespace jamm {

/// Monotonically increasing process-wide id; thread-safe.
std::uint64_t NextId();

/// "prefix-<n>" convenience, e.g. MakeId("sub") -> "sub-17".
std::string MakeId(const std::string& prefix);

}  // namespace jamm
