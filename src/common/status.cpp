#include "common/status.hpp"

namespace jamm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace jamm
