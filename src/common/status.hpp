// Status / Result types used across all jamm modules for recoverable errors.
//
// Conventions (see DESIGN.md §8): functions that can fail for reasons the
// caller is expected to handle return Status or Result<T>; exceptions are
// reserved for programming errors and constructor failures.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace jamm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnavailable,
  kTimeout,
  kParseError,
  kInternal,
  kUnimplemented,
  kAborted,
};

/// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status NotFound(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status PermissionDenied(std::string m) {
    return {StatusCode::kPermissionDenied, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status Timeout(std::string m) {
    return {StatusCode::kTimeout, std::move(m)};
  }
  static Status ParseError(std::string m) {
    return {StatusCode::kParseError, std::move(m)};
  }
  static Status Internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  static Status Unimplemented(std::string m) {
    return {StatusCode::kUnimplemented, std::move(m)};
  }
  static Status Aborted(std::string m) {
    return {StatusCode::kAborted, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Result<T>: either a value or an error Status. Never holds both.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {   // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

/// Propagate-on-error helper:  JAMM_RETURN_IF_ERROR(DoThing());
#define JAMM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::jamm::Status _jamm_status = (expr);           \
    if (!_jamm_status.ok()) return _jamm_status;    \
  } while (0)

}  // namespace jamm
