// Conversions between jamm::TimePoint (µs since epoch, UTC) and the ULM
// DATE field format used by the paper: YYYYMMDDHHMMSS.ffffff, e.g.
// "20000330112320.957943" (§4.2). All conversions are UTC; the original
// NetLogger required synchronized clocks, not local time.
#pragma once

#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace jamm {

/// Format a TimePoint as a ULM DATE: "YYYYMMDDHHMMSS.ffffff".
std::string FormatUlmDate(TimePoint t);

/// Parse a ULM DATE. Accepts 1-6 fractional digits (NetLogger default is 6);
/// a missing fractional part is treated as .000000.
Result<TimePoint> ParseUlmDate(std::string_view text);

/// Human-oriented "YYYY-MM-DD HH:MM:SS.ffffff" for reports and diagnostics.
std::string FormatIsoDate(TimePoint t);

}  // namespace jamm
