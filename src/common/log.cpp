#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace jamm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void LogWrite(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard lock(g_write_mu);
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(),
               message.c_str());
}

}  // namespace internal
}  // namespace jamm
