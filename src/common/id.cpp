#include "common/id.hpp"

#include <atomic>

namespace jamm {

std::uint64_t NextId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1) + 1;
}

std::string MakeId(const std::string& prefix) {
  return prefix + "-" + std::to_string(NextId());
}

}  // namespace jamm
