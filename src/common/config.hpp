// INI-style configuration, the on-disk format of the sensor manager's
// configuration file (paper §2.2: "Sensors to be run are specified by a
// configuration file, which may be local or on a remote HTTP server").
//
// Format:
//   # comment
//   [section-name]
//   key = value
//
// Section names repeat (one [sensor] block per sensor); order is preserved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace jamm {

class ConfigSection {
 public:
  ConfigSection() = default;
  explicit ConfigSection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  bool Has(std::string_view key) const;

  /// Value lookups with typed defaults; keys are case-sensitive.
  std::string GetString(std::string_view key, std::string_view dflt = "") const;
  std::int64_t GetInt(std::string_view key, std::int64_t dflt = 0) const;
  double GetDouble(std::string_view key, double dflt = 0.0) const;
  bool GetBool(std::string_view key, bool dflt = false) const;

  /// Comma-separated list value ("ports = 21, 80, 8080").
  std::vector<std::string> GetList(std::string_view key) const;

  void Set(std::string key, std::string value);

  const std::map<std::string, std::string>& entries() const { return entries_; }

  /// Serialize back to INI text (used for remote config serving).
  std::string ToString() const;

 private:
  std::string name_;
  std::map<std::string, std::string> entries_;
};

class Config {
 public:
  static Result<Config> ParseString(std::string_view text);
  static Result<Config> LoadFile(const std::string& path);

  /// All sections, in file order. The unnamed leading section (global keys
  /// before any [header]) has an empty name and is present only if used.
  const std::vector<ConfigSection>& sections() const { return sections_; }

  /// All sections with the given name, in order.
  std::vector<const ConfigSection*> SectionsNamed(std::string_view name) const;

  /// First section with the given name, or nullptr.
  const ConfigSection* FindSection(std::string_view name) const;

  ConfigSection& AddSection(std::string name);

  std::string ToString() const;

 private:
  std::vector<ConfigSection> sections_;
};

}  // namespace jamm
