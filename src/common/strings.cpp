#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace jamm {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitN(std::string_view text, char sep,
                                std::size_t max_fields) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (out.size() + 1 < max_fields) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  out.emplace_back(text.substr(start));
  return out;
}

std::string_view TrimView(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Trim(std::string_view text) { return std::string(TrimView(text)); }

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::int64_t> ParseInt(std::string_view text) {
  text = TrimView(text);
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("not an integer: '" + std::string(text) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  text = TrimView(text);
  if (text.empty()) return Status::ParseError("empty number");
  // std::from_chars<double> is available in libstdc++ 11+, but strtod is
  // simpler to bound-check here and locale issues don't arise for our data.
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("not a number: '" + std::string(text) + "'");
  }
  return value;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with backtracking on the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace jamm
