#include "ulm/binary.hpp"

namespace jamm::ulm {
namespace detail {

void PutVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view data, std::size_t& i, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (i < data.size() && shift < 64) {
    const std::uint8_t byte = static_cast<std::uint8_t>(data[i++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return true;
    shift += 7;
  }
  return false;
}

void PutString(std::string& out, std::string_view s) {
  PutVarint(out, s.size());
  out.append(s);
}

bool GetStringView(std::string_view data, std::size_t& i,
                   std::string_view& s) {
  std::uint64_t len;
  if (!GetVarint(data, i, len)) return false;
  // NOT `i + len > data.size()`: a hostile varint length near SIZE_MAX
  // would wrap i + len to a small value, pass the check, and then wrap
  // `i += len` back into already-consumed input — on a stream decode that
  // is an infinite loop re-reading the same bytes. GetVarint leaves
  // i <= data.size(), so the subtraction cannot underflow.
  if (len > data.size() - i) return false;
  s = data.substr(i, static_cast<std::size_t>(len));
  i += static_cast<std::size_t>(len);
  return true;
}

}  // namespace detail

namespace {

constexpr std::uint16_t kMagic = 0x554C;
constexpr std::uint8_t kVersion = 1;

using detail::GetStringView;
using detail::GetVarint;
using detail::PutString;
using detail::PutVarint;

bool GetString(std::string_view data, std::size_t& i, std::string& s) {
  std::string_view v;
  if (!GetStringView(data, i, v)) return false;
  s.assign(v);
  return true;
}

}  // namespace

void EncodeBinary(const Record& rec, std::string& out) {
  out.push_back(static_cast<char>(kMagic & 0xFF));
  out.push_back(static_cast<char>(kMagic >> 8));
  out.push_back(static_cast<char>(kVersion));
  const std::uint64_t ts = static_cast<std::uint64_t>(rec.timestamp());
  for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((ts >> (8 * b)) & 0xFF));
  PutVarint(out, 4 + rec.fields().size());
  PutString(out, field::kHost);
  PutString(out, rec.host());
  PutString(out, field::kProg);
  PutString(out, rec.prog());
  PutString(out, field::kLevel);
  PutString(out, rec.lvl());
  PutString(out, field::kEvent);
  PutString(out, rec.event_name());
  for (const auto& [k, v] : rec.fields()) {
    PutString(out, k);
    PutString(out, v);
  }
}

std::string EncodeBinary(const Record& rec) {
  std::string out;
  EncodeBinary(rec, out);
  return out;
}

Result<Record> DecodeBinary(std::string_view data, std::size_t* offset) {
  std::size_t i = *offset;
  // Overflow-safe form of `i + 11 > data.size()`: a caller-supplied
  // offset near SIZE_MAX must not wrap past the bound.
  if (i > data.size() || data.size() - i < 11) {
    return Status::ParseError("binary ULM: truncated header");
  }
  const std::uint16_t magic = static_cast<std::uint8_t>(data[i]) |
                              (static_cast<std::uint8_t>(data[i + 1]) << 8);
  if (magic != kMagic) return Status::ParseError("binary ULM: bad magic");
  const std::uint8_t version = static_cast<std::uint8_t>(data[i + 2]);
  if (version != kVersion) {
    return Status::ParseError("binary ULM: unsupported version " +
                              std::to_string(version));
  }
  i += 3;
  std::uint64_t ts = 0;
  for (int b = 0; b < 8; ++b) {
    ts |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[i + b]))
          << (8 * b);
  }
  i += 8;
  std::uint64_t nfields;
  if (!GetVarint(data, i, nfields)) {
    return Status::ParseError("binary ULM: truncated field count");
  }
  if (nfields < 4) {
    return Status::ParseError("binary ULM: record missing required fields");
  }
  Record rec;
  rec.set_timestamp(static_cast<TimePoint>(ts));
  std::string key, value;
  for (std::uint64_t f = 0; f < nfields; ++f) {
    if (!GetString(data, i, key) || !GetString(data, i, value)) {
      return Status::ParseError("binary ULM: truncated field " +
                                std::to_string(f));
    }
    // Fast path: route required names directly, append the rest without
    // the duplicate scan SetField performs (the encoder never emits
    // duplicates).
    if (key == field::kHost) {
      rec.set_host(std::move(value));
    } else if (key == field::kProg) {
      rec.set_prog(std::move(value));
    } else if (key == field::kLevel) {
      rec.set_lvl(std::move(value));
    } else if (key == field::kEvent) {
      rec.set_event_name(std::move(value));
    } else {
      rec.AppendFieldUnchecked(std::move(key), std::move(value));
    }
  }
  *offset = i;
  return rec;
}

Result<std::vector<Record>> DecodeBinaryStream(std::string_view data) {
  std::vector<Record> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto rec = DecodeBinary(data, &offset);
    if (!rec.ok()) return rec.status();
    out.push_back(std::move(*rec));
  }
  return out;
}

}  // namespace jamm::ulm
