#include "ulm/encoded.hpp"

#include "ulm/binary.hpp"
#include "ulm/xml.hpp"

namespace jamm::ulm {

const std::string& EncodedRecord::Ascii() const {
  ++accesses_;
  if (!ascii_) {
    ++encodes_;
    ascii_ = rec_->ToAscii();
  }
  return *ascii_;
}

const std::string& EncodedRecord::Binary() const {
  ++accesses_;
  if (!binary_) {
    ++encodes_;
    binary_ = EncodeBinary(*rec_);
  }
  return *binary_;
}

const std::string& EncodedRecord::Xml() const {
  ++accesses_;
  if (!xml_) {
    ++encodes_;
    xml_ = ToXml(*rec_);
  }
  return *xml_;
}

}  // namespace jamm::ulm
