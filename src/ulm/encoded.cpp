#include "ulm/encoded.hpp"

#include "ulm/binary.hpp"
#include "ulm/xml.hpp"

namespace jamm::ulm {

const Record& EncodedRecord::record() const {
  if (rec_ != nullptr) return *rec_;
  if (!materialized_) materialized_ = view_.ToRecord();
  return *materialized_;
}

const std::string& EncodedRecord::Ascii() const {
  ++accesses_;
  if (!ascii_) {
    ++encodes_;
    ascii_ = rec_ != nullptr ? rec_->ToAscii() : view_.ToAscii();
  }
  return *ascii_;
}

const std::string& EncodedRecord::Binary() const {
  ++accesses_;
  if (!binary_) {
    ++encodes_;
    if (rec_ != nullptr) {
      binary_ = EncodeBinary(*rec_);
    } else {
      std::string out;
      view_.EncodeBinary(out);
      binary_ = std::move(out);
    }
  }
  return *binary_;
}

const std::string& EncodedRecord::Xml() const {
  ++accesses_;
  if (!xml_) {
    ++encodes_;
    xml_ = rec_ != nullptr ? ToXml(*rec_) : view_.ToXml();
  }
  return *xml_;
}

}  // namespace jamm::ulm
