// Process-wide string interning for the flat ULM record core (ISSUE 7).
//
// Monitoring streams repeat the same small strings millions of times —
// event names, hosts, program names, levels, field keys — and the legacy
// string-keyed Record paid hashing, small-string churn, and compares for
// every one on every hop. A SymbolTable maps each distinct string to a
// dense 32-bit Symbol once; after that, every hop compares and copies
// 4-byte ids.
//
// Lifetime: interned strings live for the lifetime of the table (for the
// global table, the process). The id space is append-only — symbols are
// never recycled — so a Symbol, and the string_view Name() returns for
// it, remain valid forever. That is what lets RecordView alias interned
// names with no reference counting (DESIGN.md §15).
//
// Thread safety: Intern/Find take a short per-shard lock; Name() is
// lock-free (ids are published with release/acquire ordering), so the
// read side — the hot fan-out and ingest paths — never blocks.
//
// Growth: the table grows with the set of DISTINCT strings, which is
// small and bounded for production sensor traffic. Do not intern
// unbounded attacker-controlled values (record field VALUES are never
// interned — only keys and the low-cardinality required fields).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace jamm::ulm {

/// Dense id for an interned string. Symbol 0 is always the empty string.
using Symbol = std::uint32_t;
inline constexpr Symbol kEmptySymbol = 0;

class SymbolTable {
 public:
  SymbolTable();
  ~SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Insert-or-find. Interning the same bytes always yields the same id.
  Symbol Intern(std::string_view s);

  /// Find without inserting — for query-side lookups that must not grow
  /// the table (an unknown string can match nothing, so callers treat
  /// nullopt as "matches no record").
  std::optional<Symbol> Find(std::string_view s) const;

  /// The interned bytes for `id`. Lock-free; the view is valid for the
  /// table's lifetime. `id` must have been returned by Intern on this
  /// table.
  std::string_view Name(Symbol id) const;

  /// Distinct strings interned so far.
  std::size_t size() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide table every FlatRecord/FlatBatch uses.
SymbolTable& Symbols();

/// Shorthands against the global table.
inline Symbol InternSymbol(std::string_view s) { return Symbols().Intern(s); }
inline std::string_view SymbolName(Symbol id) { return Symbols().Name(id); }
inline std::optional<Symbol> FindSymbol(std::string_view s) {
  return Symbols().Find(s);
}

}  // namespace jamm::ulm
