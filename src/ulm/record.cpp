#include "ulm/record.hpp"

#include <cstdio>

#include "common/strings.hpp"
#include "common/time_util.hpp"

namespace jamm::ulm {
namespace {

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '\t' || c == '"' || c == '\n' || c == '\\') return true;
  }
  return false;
}

void AppendValue(std::string& out, std::string_view value) {
  if (!NeedsQuoting(value)) {
    out += value;
    return;
  }
  out += '"';
  for (char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

// Scans one field=value token starting at `i`; advances `i` past it.
Status ScanPair(std::string_view line, std::size_t& i, std::string& key,
                std::string& value) {
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size()) return Status::NotFound("end of line");
  const std::size_t key_start = i;
  // Tab delimits a key exactly like space does — the value scan below
  // already stopped at tabs, and Validate rejects tabs in field names, so
  // the tokenizer and the validator agree on what a key can contain.
  while (i < line.size() && line[i] != '=' && line[i] != ' ' &&
         line[i] != '\t') {
    ++i;
  }
  if (i >= line.size() || line[i] != '=') {
    return Status::ParseError("expected '=' after field name near offset " +
                              std::to_string(key_start));
  }
  key.assign(line.substr(key_start, i - key_start));
  if (key.empty()) return Status::ParseError("empty field name");
  ++i;  // consume '='
  value.clear();
  if (i < line.size() && line[i] == '"') {
    ++i;
    bool closed = false;
    while (i < line.size()) {
      char c = line[i++];
      if (c == '\\' && i < line.size()) {
        char esc = line[i++];
        switch (esc) {
          case 'n': value += '\n'; break;
          case '"': value += '"'; break;
          case '\\': value += '\\'; break;
          default: value += esc;
        }
      } else if (c == '"') {
        closed = true;
        break;
      } else {
        value += c;
      }
    }
    if (!closed) return Status::ParseError("unterminated quoted value");
  } else {
    const std::size_t value_start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    value.assign(line.substr(value_start, i - value_start));
  }
  return Status::Ok();
}

}  // namespace

namespace detail {

void AppendUlmPair(std::string& out, std::string_view key,
                   std::string_view value) {
  if (!out.empty()) out += ' ';
  out += key;
  out += '=';
  AppendValue(out, value);
}

void AppendUlmDouble(std::string& out, double value) {
  // %.6f expands huge magnitudes in fixed notation (1e300 needs ~308
  // digits), so the buffer must grow on demand — a fixed 32-byte buffer
  // silently truncated anything >= ~1e26 and the record round-tripped as
  // a different number.
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.6f", value);
  if (n < 0) return;
  if (static_cast<std::size_t>(n) < sizeof(buf)) {
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  const std::size_t old = out.size();
  out.resize(old + static_cast<std::size_t>(n) + 1);
  std::snprintf(out.data() + old, static_cast<std::size_t>(n) + 1, "%.6f",
                value);
  out.resize(old + static_cast<std::size_t>(n));
}

}  // namespace detail

using detail::AppendUlmPair;

Record::Record(TimePoint timestamp, std::string host, std::string prog,
               std::string lvl, std::string event_name)
    : timestamp_(timestamp),
      host_(std::move(host)),
      prog_(std::move(prog)),
      lvl_(std::move(lvl)),
      event_name_(std::move(event_name)) {}

void Record::SetField(std::string_view key, std::string_view value) {
  if (key == field::kDate) {
    if (auto t = ParseUlmDate(value); t.ok()) timestamp_ = *t;
    return;
  }
  if (key == field::kHost) { host_ = value; return; }
  if (key == field::kProg) { prog_ = value; return; }
  if (key == field::kLevel) { lvl_ = value; return; }
  if (key == field::kEvent) { event_name_ = value; return; }
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  fields_.emplace_back(std::string(key), std::string(value));
}

void Record::SetField(std::string_view key, std::int64_t value) {
  SetField(key, std::string_view(std::to_string(value)));
}

void Record::SetField(std::string_view key, double value) {
  std::string formatted;
  detail::AppendUlmDouble(formatted, value);
  SetField(key, std::string_view(formatted));
}

std::optional<std::string> Record::GetField(std::string_view key) const {
  if (key == field::kHost) return host_;
  if (key == field::kProg) return prog_;
  if (key == field::kLevel) return lvl_;
  // NL.EVNT follows the same present-and-empty contract as the other
  // core fields (see record.hpp); emptiness only affects serialization.
  if (key == field::kEvent) return event_name_;
  for (const auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

Result<std::int64_t> Record::GetInt(std::string_view key) const {
  auto v = GetField(key);
  if (!v) return Status::NotFound("no field " + std::string(key));
  return ParseInt(*v);
}

Result<double> Record::GetDouble(std::string_view key) const {
  auto v = GetField(key);
  if (!v) return Status::NotFound("no field " + std::string(key));
  return ParseDouble(*v);
}

bool Record::HasField(std::string_view key) const {
  return GetField(key).has_value();
}

std::string Record::ToAscii() const {
  std::string out;
  AppendUlmPair(out, field::kDate, FormatUlmDate(timestamp_));
  AppendUlmPair(out, field::kHost, host_);
  AppendUlmPair(out, field::kProg, prog_);
  AppendUlmPair(out, field::kLevel, lvl_);
  if (!event_name_.empty()) AppendUlmPair(out, field::kEvent, event_name_);
  for (const auto& [k, v] : fields_) AppendUlmPair(out, k, v);
  return out;
}

Result<Record> Record::FromAscii(std::string_view line) {
  Record rec;
  bool saw_date = false, saw_host = false, saw_prog = false, saw_lvl = false;
  std::size_t i = 0;
  std::string key, value;
  while (true) {
    Status s = ScanPair(line, i, key, value);
    if (s.code() == StatusCode::kNotFound) break;  // clean end of line
    if (!s.ok()) return s;
    if (key == field::kDate) {
      auto t = ParseUlmDate(value);
      if (!t.ok()) return t.status();
      rec.timestamp_ = *t;
      saw_date = true;
    } else if (key == field::kHost) {
      rec.host_ = value;
      saw_host = true;
    } else if (key == field::kProg) {
      rec.prog_ = value;
      saw_prog = true;
    } else if (key == field::kLevel) {
      rec.lvl_ = value;
      saw_lvl = true;
    } else if (key == field::kEvent) {
      rec.event_name_ = value;
    } else {
      rec.fields_.emplace_back(key, value);
    }
  }
  if (!saw_date || !saw_host || !saw_prog || !saw_lvl) {
    return Status::ParseError(
        "ULM record missing required field(s) in: " + std::string(line));
  }
  return rec;
}

Status Record::Validate() const {
  if (host_.empty()) return Status::InvalidArgument("ULM record: empty HOST");
  if (prog_.empty()) return Status::InvalidArgument("ULM record: empty PROG");
  if (lvl_.empty()) return Status::InvalidArgument("ULM record: empty LVL");
  if (timestamp_ < 0) {
    return Status::InvalidArgument("ULM record: negative timestamp");
  }
  for (const auto& [k, v] : fields_) {
    (void)v;
    if (k.empty()) return Status::InvalidArgument("ULM record: empty field name");
    for (char c : k) {
      // Tab and newline would desync the ASCII tokenizer (keys are never
      // quoted), so they are as illegal in a field name as space/'='/'"'.
      if (c == ' ' || c == '=' || c == '"' || c == '\t' || c == '\n') {
        return Status::InvalidArgument("ULM record: bad char in field name '" +
                                       k + "'");
      }
    }
  }
  return Status::Ok();
}

bool operator==(const Record& a, const Record& b) {
  return a.timestamp_ == b.timestamp_ && a.host_ == b.host_ &&
         a.prog_ == b.prog_ && a.lvl_ == b.lvl_ &&
         a.event_name_ == b.event_name_ && a.fields_ == b.fields_;
}

std::vector<Record> ParseLog(std::string_view text, Status* error) {
  std::vector<Record> out;
  if (error) *error = Status::Ok();
  for (const auto& line : Split(text, '\n')) {
    std::string_view trimmed = TrimView(line);
    if (trimmed.empty()) continue;
    auto rec = Record::FromAscii(trimmed);
    if (!rec.ok()) {
      if (error && error->ok()) *error = rec.status();
      continue;
    }
    out.push_back(std::move(*rec));
  }
  return out;
}

}  // namespace jamm::ulm
