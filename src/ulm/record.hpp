// ULM (Universal Logger Message) event records — the wire and log format of
// the whole system (paper §4.2, IETF draft-abela-ulm).
//
// A record is a whitespace-separated list of field=value pairs. Required
// fields: DATE, HOST, PROG, LVL. NetLogger adds NL.EVNT (unique event name).
// Example from the paper:
//
//   DATE=20000330112320.957943 HOST=dpss1.lbl.gov PROG=testProg LVL=Usage
//   NL.EVNT=WriteData SEND.SZ=49332
//
// User-defined fields follow the required ones and preserve insertion order
// so serialized records round-trip byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace jamm::ulm {

/// Standard LVL values from the ULM draft; LVL is carried as a string so
/// user-defined levels pass through, but these are the recognized names.
namespace level {
inline constexpr std::string_view kEmergency = "Emergency";
inline constexpr std::string_view kAlert = "Alert";
inline constexpr std::string_view kError = "Error";
inline constexpr std::string_view kWarning = "Warning";
inline constexpr std::string_view kAuth = "Auth";
inline constexpr std::string_view kSecurity = "Security";
inline constexpr std::string_view kUsage = "Usage";
inline constexpr std::string_view kSystem = "System";
inline constexpr std::string_view kImportant = "Important";
inline constexpr std::string_view kDebug = "Debug";
}  // namespace level

/// Well-known field names.
namespace field {
inline constexpr std::string_view kDate = "DATE";
inline constexpr std::string_view kHost = "HOST";
inline constexpr std::string_view kProg = "PROG";
inline constexpr std::string_view kLevel = "LVL";
inline constexpr std::string_view kEvent = "NL.EVNT";  // NetLogger extension
}  // namespace field

class Record {
 public:
  Record() = default;
  /// Typical construction path used by sensors and the NetLogger API.
  Record(TimePoint timestamp, std::string host, std::string prog,
         std::string lvl, std::string event_name);

  TimePoint timestamp() const { return timestamp_; }
  void set_timestamp(TimePoint t) { timestamp_ = t; }

  const std::string& host() const { return host_; }
  void set_host(std::string h) { host_ = std::move(h); }

  const std::string& prog() const { return prog_; }
  void set_prog(std::string p) { prog_ = std::move(p); }

  const std::string& lvl() const { return lvl_; }
  void set_lvl(std::string l) { lvl_ = std::move(l); }

  /// NL.EVNT value; empty when the record is plain ULM without NetLogger's
  /// event-name extension.
  const std::string& event_name() const { return event_name_; }
  void set_event_name(std::string e) { event_name_ = std::move(e); }

  /// Append or overwrite a user field. Setting a required field name
  /// (DATE/HOST/PROG/LVL/NL.EVNT) routes to the dedicated member instead.
  void SetField(std::string_view key, std::string_view value);
  void SetField(std::string_view key, std::int64_t value);
  void SetField(std::string_view key, double value);

  /// Append without the overwrite scan — for decoders that guarantee
  /// unique keys (the binary codec). Key must not be a required name.
  void AppendFieldUnchecked(std::string key, std::string value) {
    fields_.emplace_back(std::move(key), std::move(value));
  }

  /// Field lookup; nullopt when absent.
  ///
  /// Core-field contract (uniform across HOST/PROG/LVL/NL.EVNT): these
  /// four are members of every Record, so GetField always returns their
  /// current value — possibly the empty string — and HasField is always
  /// true for them. Emptiness is not absence: an empty NL.EVNT means "no
  /// NetLogger event-name extension" for serialization (ToAscii omits
  /// it), but the field still reads as present-and-empty, exactly like
  /// an empty HOST/PROG/LVL. DATE is not surfaced through GetField; use
  /// timestamp().
  std::optional<std::string> GetField(std::string_view key) const;
  Result<std::int64_t> GetInt(std::string_view key) const;
  Result<double> GetDouble(std::string_view key) const;
  bool HasField(std::string_view key) const;

  /// User fields in insertion order (excludes the required fields).
  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

  /// Single-line ASCII ULM form, required fields first. Values containing
  /// whitespace or '"' are double-quoted with backslash escapes.
  std::string ToAscii() const;

  /// Parse one ASCII ULM line. Missing DATE/HOST/PROG/LVL is a ParseError
  /// (they are required by the ULM draft).
  static Result<Record> FromAscii(std::string_view line);

  /// Validation used by gateways before forwarding third-party events.
  Status Validate() const;

  friend bool operator==(const Record& a, const Record& b);

 private:
  TimePoint timestamp_ = 0;
  std::string host_;
  std::string prog_;
  std::string lvl_;
  std::string event_name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Parse a whole log (one record per line; blank lines skipped). Returns
/// records parsed so far plus the first error, if any, via `error`.
std::vector<Record> ParseLog(std::string_view text, Status* error = nullptr);

namespace detail {
/// Append " key=value" (no leading space when `out` is empty) using the
/// ULM quoting rules. Shared by Record::ToAscii and the flat transcoder
/// so both emit byte-identical lines.
void AppendUlmPair(std::string& out, std::string_view key,
                   std::string_view value);
/// Append the canonical ULM decimal form of `value` (%.6f, grown on
/// demand so huge magnitudes are never truncated). Shared by
/// Record::SetField(double) and FlatRecord::SetField(double).
void AppendUlmDouble(std::string& out, double value);
}  // namespace detail

}  // namespace jamm::ulm
