// Encode-once record wrapper (ISSUE 3). The gateway fan-out used to
// re-serialize every published record once per subscriber — O(subscribers
// × encode) on the hottest path in the system. An EncodedRecord wraps one
// published Record and lazily caches each wire form (ASCII / binary / XML)
// the first time any subscriber asks for it, so N subscribers of the same
// format cost one encode plus N-1 string reads.
//
// Lifetime: the wrapper borrows the Record; both live only for the
// duration of one Publish() fan-out. Callbacks must copy what they keep.
// Single-threaded like the poll-driven fan-out that creates it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ulm/record.hpp"

namespace jamm::ulm {

class EncodedRecord {
 public:
  explicit EncodedRecord(const Record& rec) : rec_(&rec) {}

  EncodedRecord(const EncodedRecord&) = delete;
  EncodedRecord& operator=(const EncodedRecord&) = delete;

  const Record& record() const { return *rec_; }

  /// Each accessor encodes at most once per EncodedRecord; later calls
  /// return the cached string by reference.
  const std::string& Ascii() const;
  const std::string& Binary() const;
  const std::string& Xml() const;

  /// Cache effectiveness for this record: how many accessor calls were
  /// served ("accesses") and how many actually encoded ("encodes").
  /// The gateway folds these into the process-wide telemetry counters
  /// after each fan-out (ulm cannot link telemetry — it sits below it).
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t encodes() const { return encodes_; }

 private:
  const Record* rec_;
  mutable std::optional<std::string> ascii_;
  mutable std::optional<std::string> binary_;
  mutable std::optional<std::string> xml_;
  mutable std::uint64_t accesses_ = 0;
  mutable std::uint64_t encodes_ = 0;
};

}  // namespace jamm::ulm
