// Encode-once record wrapper (ISSUE 3, extended for the flat core in
// ISSUE 7). The gateway fan-out used to re-serialize every published
// record once per subscriber — O(subscribers × encode) on the hottest
// path in the system. An EncodedRecord wraps one published record and
// lazily caches each wire form (ASCII / binary / XML) the first time any
// subscriber asks for it, so N subscribers of the same format cost one
// encode plus N-1 string reads.
//
// Two backings, one behavior:
//   * legacy — borrows a `Record`; encoders run the string-keyed codecs.
//   * flat   — holds a `RecordView` by value (it is a few words);
//     encoders run the flat transcoders, which emit byte-identical wire
//     forms, and record() materializes a legacy Record only if some
//     subscriber actually needs one.
//
// Lifetime: the wrapper borrows whatever backs it (the Record, or the
// arena behind the view); both live only for the duration of one
// Publish() fan-out. Callbacks must copy what they keep. Single-threaded
// like the poll-driven fan-out that creates it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ulm/flat.hpp"
#include "ulm/record.hpp"

namespace jamm::ulm {

class EncodedRecord {
 public:
  explicit EncodedRecord(const Record& rec) : rec_(&rec) {}
  explicit EncodedRecord(const RecordView& view) : view_(view) {}

  EncodedRecord(const EncodedRecord&) = delete;
  EncodedRecord& operator=(const EncodedRecord&) = delete;

  /// The legacy Record. For a view-backed wrapper this materializes (and
  /// caches) a copy on first call — only legacy-API consumers pay it.
  const Record& record() const;

  /// True when backed by a flat view (record() would copy).
  bool is_flat() const { return rec_ == nullptr; }
  const RecordView& view() const { return view_; }

  /// Each accessor encodes at most once per EncodedRecord; later calls
  /// return the cached string by reference.
  const std::string& Ascii() const;
  const std::string& Binary() const;
  const std::string& Xml() const;

  /// Cache effectiveness for this record: how many accessor calls were
  /// served ("accesses") and how many actually encoded ("encodes").
  /// The gateway folds these into the process-wide telemetry counters
  /// after each fan-out (ulm cannot link telemetry — it sits below it).
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t encodes() const { return encodes_; }

 private:
  const Record* rec_ = nullptr;  // null ⇒ view-backed
  RecordView view_;
  mutable std::optional<Record> materialized_;
  mutable std::optional<std::string> ascii_;
  mutable std::optional<std::string> binary_;
  mutable std::optional<std::string> xml_;
  mutable std::uint64_t accesses_ = 0;
  mutable std::uint64_t encodes_ = 0;
};

}  // namespace jamm::ulm
