// ULM → XML conversion. The paper (§7.0) describes "a ULM to XML filter for
// the gateway, so a consumer can request either format for event data".
// The schema is a straightforward attribute/element mapping since the Grid
// Forum schema standardization the paper awaited never applied here.
#pragma once

#include <string>
#include <vector>

#include "ulm/record.hpp"

namespace jamm::ulm {

/// One <event> element:
///   <event date="..." host="..." prog="..." lvl="..." name="...">
///     <field name="SEND.SZ">49332</field>
///   </event>
std::string ToXml(const Record& rec);

/// A whole <events> document.
std::string ToXmlDocument(const std::vector<Record>& records);

/// Escape &<>"' for attribute and text positions.
std::string XmlEscape(std::string_view text);

}  // namespace jamm::ulm
