// Arena-backed flat ULM records (ISSUE 7, ROADMAP item 2).
//
// The legacy `Record` stores every field as a pair of heap strings and is
// copied at each hop — sensor → manager → gateway → subscriber → archive.
// At millions of records per second the allocator and the string compares
// dominate. The flat core splits a record into:
//
//   * Symbols — event name / host / prog / lvl / field KEYS interned once
//     in the process-wide SymbolTable (ulm/intern.hpp) and carried as
//     dense 32-bit ids thereafter; and
//   * one contiguous value buffer per record (FlatRecord) or per batch
//     (FlatBatch), with fields described by {key symbol, offset, len}.
//
// A RecordView is the non-owning face of either: 40-odd bytes passed by
// value/reference through the pipeline with zero allocation. The codecs
// here are flat↔wire TRANSCODERS built on the same primitives as the
// legacy codecs (ulm/record.cpp, ulm/binary.cpp, ulm/xml.cpp), so a view
// serializes byte-identically to the equivalent Record — property tests
// enforce this, and it is what lets flat and legacy paths interoperate on
// the wire indefinitely.
//
// Aliasing rules (DESIGN.md §15):
//   * A RecordView borrows its owner. Views from FlatRecord::View() are
//     invalidated by any subsequent mutation of that FlatRecord; views
//     from FlatBatch::View(i) are invalidated by Append/Clear on the
//     batch. Take views after building, never across mutation.
//   * Symbol names outlive everything (the global table never evicts), so
//     host()/prog()/field_name() views are safe to keep forever.
//   * Field VALUES are never interned — only keys and the low-cardinality
//     required fields — so hostile high-cardinality values cannot grow
//     the process-wide table. Keys decoded from untrusted wire input DO
//     intern; transports that accept third-party records should validate
//     first (Record::Validate rejects malformed keys).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "ulm/intern.hpp"
#include "ulm/record.hpp"

namespace jamm::ulm {

/// One user field: interned key, value bytes at [offset, offset+len) in
/// the owning arena. 12 bytes; a record's fields sit contiguously.
struct FlatField {
  Symbol key = kEmptySymbol;
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
};

class FlatRecord;
class FlatBatch;

/// Non-owning view of one flat record. Cheap to copy (it is three
/// pointers and a handful of ints); see the aliasing rules above for how
/// long it stays valid.
class RecordView {
 public:
  RecordView() = default;
  RecordView(TimePoint ts, Symbol host, Symbol prog, Symbol lvl, Symbol event,
             const char* values, const FlatField* fields, std::uint32_t nfields)
      : ts_(ts),
        host_(host),
        prog_(prog),
        lvl_(lvl),
        event_(event),
        values_(values),
        fields_(fields),
        nfields_(nfields) {}

  TimePoint timestamp() const { return ts_; }

  Symbol host_sym() const { return host_; }
  Symbol prog_sym() const { return prog_; }
  Symbol lvl_sym() const { return lvl_; }
  Symbol event_sym() const { return event_; }

  std::string_view host() const { return SymbolName(host_); }
  std::string_view prog() const { return SymbolName(prog_); }
  std::string_view lvl() const { return SymbolName(lvl_); }
  std::string_view event_name() const { return SymbolName(event_); }

  std::uint32_t field_count() const { return nfields_; }
  Symbol field_key(std::uint32_t i) const { return fields_[i].key; }
  std::string_view field_name(std::uint32_t i) const {
    return SymbolName(fields_[i].key);
  }
  std::string_view field_value(std::uint32_t i) const {
    return std::string_view(values_ + fields_[i].offset, fields_[i].len);
  }

  /// Same present-and-empty core-field contract as Record::GetField
  /// (record.hpp): HOST/PROG/LVL/NL.EVNT always answer, DATE is
  /// timestamp(). The Symbol overload is the hot path — one 4-byte
  /// compare per field, no hashing, no allocation.
  std::optional<std::string_view> GetField(Symbol key) const;
  std::optional<std::string_view> GetField(std::string_view key) const;
  bool HasField(Symbol key) const { return GetField(key).has_value(); }
  Result<std::int64_t> GetInt(Symbol key) const;
  Result<double> GetDouble(Symbol key) const;

  /// Flat→wire transcoders, byte-identical to the legacy codecs applied
  /// to the equivalent Record.
  void AppendAscii(std::string& out) const;
  std::string ToAscii() const;
  void EncodeBinary(std::string& out) const;
  std::string ToXml() const;

  /// Materialize a legacy Record (copies everything). The bridge for
  /// code still on the string-keyed API.
  Record ToRecord() const;

 private:
  TimePoint ts_ = 0;
  Symbol host_ = kEmptySymbol;
  Symbol prog_ = kEmptySymbol;
  Symbol lvl_ = kEmptySymbol;
  Symbol event_ = kEmptySymbol;
  const char* values_ = nullptr;
  const FlatField* fields_ = nullptr;
  std::uint32_t nfields_ = 0;
};

/// Owning single flat record — what sensors build and publishers stamp.
/// One value arena, one field vector; Clear() keeps both capacities so a
/// producer loop allocates only on its first iterations.
class FlatRecord {
 public:
  FlatRecord() = default;
  FlatRecord(TimePoint ts, std::string_view host, std::string_view prog,
             std::string_view lvl, std::string_view event_name)
      : ts_(ts),
        host_(InternSymbol(host)),
        prog_(InternSymbol(prog)),
        lvl_(InternSymbol(lvl)),
        event_(InternSymbol(event_name)) {}

  TimePoint timestamp() const { return ts_; }
  void set_timestamp(TimePoint t) { ts_ = t; }

  Symbol host_sym() const { return host_; }
  Symbol prog_sym() const { return prog_; }
  Symbol lvl_sym() const { return lvl_; }
  Symbol event_sym() const { return event_; }
  std::string_view host() const { return SymbolName(host_); }
  std::string_view prog() const { return SymbolName(prog_); }
  std::string_view lvl() const { return SymbolName(lvl_); }
  std::string_view event_name() const { return SymbolName(event_); }

  void set_host(std::string_view h) { host_ = InternSymbol(h); }
  void set_prog(std::string_view p) { prog_ = InternSymbol(p); }
  void set_lvl(std::string_view l) { lvl_ = InternSymbol(l); }
  void set_event_name(std::string_view e) { event_ = InternSymbol(e); }
  void set_host_sym(Symbol h) { host_ = h; }
  void set_prog_sym(Symbol p) { prog_ = p; }
  void set_lvl_sym(Symbol l) { lvl_ = l; }
  void set_event_sym(Symbol e) { event_ = e; }

  /// Record::SetField semantics: required names route to the dedicated
  /// members, an existing key is overwritten (the old bytes stay in the
  /// arena as slack until Clear()), otherwise the field appends.
  void SetField(std::string_view key, std::string_view value);
  void SetField(std::string_view key, std::int64_t value);
  void SetField(std::string_view key, double value);
  void SetField(Symbol key, std::string_view value);
  void SetField(Symbol key, std::int64_t value);
  void SetField(Symbol key, double value);

  /// Append without the overwrite scan — for decoders and converters
  /// that guarantee unique, non-required keys.
  void AddFieldUnchecked(Symbol key, std::string_view value);

  std::uint32_t field_count() const {
    return static_cast<std::uint32_t>(fields_.size());
  }

  /// Borrow; invalidated by any mutation of this FlatRecord.
  RecordView View() const {
    return RecordView(ts_, host_, prog_, lvl_, event_, values_.data(),
                      fields_.data(), static_cast<std::uint32_t>(fields_.size()));
  }

  /// Reset to empty, keeping arena/vector capacity for reuse.
  void Clear();

  /// Conversions to/from the legacy Record. AssignRecord refills this
  /// FlatRecord in place, reusing arena/vector capacity — the bridge the
  /// gateway uses so legacy Publish costs one conversion and zero
  /// steady-state allocations.
  static FlatRecord FromRecord(const Record& rec);
  void AssignRecord(const Record& rec);
  Record ToRecord() const { return View().ToRecord(); }

  /// Parse one ASCII ULM line (same grammar and errors as
  /// Record::FromAscii).
  static Result<FlatRecord> FromAscii(std::string_view line);

 private:
  TimePoint ts_ = 0;
  Symbol host_ = kEmptySymbol;
  Symbol prog_ = kEmptySymbol;
  Symbol lvl_ = kEmptySymbol;
  Symbol event_ = kEmptySymbol;
  std::string values_;
  std::vector<FlatField> fields_;
};

/// Many flat records sharing ONE value arena and ONE field vector — the
/// batch shape the archive ingests and the batched decoder fills. Three
/// allocations amortized over the whole batch instead of a dozen per
/// record.
///
/// Offsets are 32-bit: one batch holds at most ~4 GiB of value bytes.
/// Appends that would overflow fail (AppendOk) — callers that chunk
/// (archive segments, gateway frames) rotate long before that.
class FlatBatch {
 public:
  std::size_t size() const { return metas_.size(); }
  bool empty() const { return metas_.empty(); }
  std::size_t value_bytes() const { return values_.size(); }
  /// In-memory bytes this batch holds records in: the value arena plus the
  /// field and per-record metadata vectors. The archive's bytes_scanned
  /// accounting (QueryStats) is denominated in this.
  std::size_t footprint_bytes() const {
    return values_.size() + fields_.size() * sizeof(FlatField) +
           metas_.size() * sizeof(Meta);
  }

  /// Borrow record i; invalidated by Append*/Clear on this batch.
  RecordView View(std::size_t i) const {
    const Meta& m = metas_[i];
    return RecordView(m.ts, m.host, m.prog, m.lvl, m.event, values_.data(),
                      fields_.data() + m.field_begin, m.field_count);
  }

  void Reserve(std::size_t records, std::size_t value_bytes_hint);

  /// Copy one record into the batch arena (true on success, false only
  /// on 32-bit arena overflow — in which case the batch is unchanged).
  bool Append(const RecordView& v);
  bool Append(const Record& rec);

  void Clear();

  /// Decode a concatenated binary ULM stream into this batch, appending.
  /// Same grammar and hostile-input hardening as DecodeBinaryStream; on
  /// error the batch keeps the records decoded before the bad frame.
  Status DecodeBinaryStreamInto(std::string_view data);

 private:
  struct Meta {
    TimePoint ts;
    Symbol host, prog, lvl, event;
    std::uint32_t field_begin;
    std::uint32_t field_count;
  };

  bool AppendCommon(TimePoint ts, Symbol host, Symbol prog, Symbol lvl,
                    Symbol event);
  bool AppendField(Symbol key, std::string_view value);

  std::string values_;
  std::vector<FlatField> fields_;
  std::vector<Meta> metas_;
};

/// Free-function spellings used by code templated over record types.
inline std::string ToXml(const RecordView& v) { return v.ToXml(); }
inline void EncodeBinary(const RecordView& v, std::string& out) {
  v.EncodeBinary(out);
}
inline std::string EncodeBinary(const RecordView& v) {
  std::string out;
  v.EncodeBinary(out);
  return out;
}

}  // namespace jamm::ulm
