#include "ulm/flat.hpp"

#include <cassert>
#include <limits>

#include "common/strings.hpp"
#include "common/time_util.hpp"
#include "ulm/binary.hpp"
#include "ulm/xml.hpp"

namespace jamm::ulm {
namespace {

// Interned ids of the required field names, resolved once per process.
// SetField/GetField route these to the dedicated members exactly like
// Record does for the string spellings.
struct CoreSyms {
  Symbol date = InternSymbol(field::kDate);
  Symbol host = InternSymbol(field::kHost);
  Symbol prog = InternSymbol(field::kProg);
  Symbol lvl = InternSymbol(field::kLevel);
  Symbol event = InternSymbol(field::kEvent);
};

const CoreSyms& Core() {
  static const CoreSyms core;
  return core;
}

constexpr std::uint32_t kBinaryMagicLo = 0x4C;  // "L"
constexpr std::uint32_t kBinaryMagicHi = 0x55;  // "U"
constexpr std::uint8_t kBinaryVersion = 1;

}  // namespace

// ---------------------------------------------------------------------------
// RecordView

std::optional<std::string_view> RecordView::GetField(Symbol key) const {
  const CoreSyms& core = Core();
  if (key == core.host) return host();
  if (key == core.prog) return prog();
  if (key == core.lvl) return lvl();
  if (key == core.event) return event_name();
  for (std::uint32_t i = 0; i < nfields_; ++i) {
    if (fields_[i].key == key) return field_value(i);
  }
  return std::nullopt;
}

std::optional<std::string_view> RecordView::GetField(
    std::string_view key) const {
  // Find-not-intern: an unknown key matches nothing and must not grow
  // the table on the query side.
  auto sym = FindSymbol(key);
  if (!sym) return std::nullopt;
  return GetField(*sym);
}

Result<std::int64_t> RecordView::GetInt(Symbol key) const {
  auto v = GetField(key);
  if (!v) return Status::NotFound("no field " + std::string(SymbolName(key)));
  return ParseInt(*v);
}

Result<double> RecordView::GetDouble(Symbol key) const {
  auto v = GetField(key);
  if (!v) return Status::NotFound("no field " + std::string(SymbolName(key)));
  return ParseDouble(*v);
}

void RecordView::AppendAscii(std::string& out) const {
  using detail::AppendUlmPair;
  // AppendUlmPair keys its leading space off `out` being non-empty, so a
  // non-empty destination gets the line built separately and appended.
  if (!out.empty()) {
    std::string line;
    AppendAscii(line);
    out += line;
    return;
  }
  // Same field order and quoting as Record::ToAscii — byte-identical.
  AppendUlmPair(out, field::kDate, FormatUlmDate(ts_));
  AppendUlmPair(out, field::kHost, host());
  AppendUlmPair(out, field::kProg, prog());
  AppendUlmPair(out, field::kLevel, lvl());
  if (event_ != kEmptySymbol) AppendUlmPair(out, field::kEvent, event_name());
  for (std::uint32_t i = 0; i < nfields_; ++i) {
    AppendUlmPair(out, field_name(i), field_value(i));
  }
}

std::string RecordView::ToAscii() const {
  std::string out;
  AppendAscii(out);
  return out;
}

void RecordView::EncodeBinary(std::string& out) const {
  using detail::PutString;
  using detail::PutVarint;
  out.push_back(static_cast<char>(kBinaryMagicLo));
  out.push_back(static_cast<char>(kBinaryMagicHi));
  out.push_back(static_cast<char>(kBinaryVersion));
  const std::uint64_t ts = static_cast<std::uint64_t>(ts_);
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<char>((ts >> (8 * b)) & 0xFF));
  }
  PutVarint(out, 4 + static_cast<std::uint64_t>(nfields_));
  PutString(out, field::kHost);
  PutString(out, host());
  PutString(out, field::kProg);
  PutString(out, prog());
  PutString(out, field::kLevel);
  PutString(out, lvl());
  PutString(out, field::kEvent);
  PutString(out, event_name());
  for (std::uint32_t i = 0; i < nfields_; ++i) {
    PutString(out, field_name(i));
    PutString(out, field_value(i));
  }
}

std::string RecordView::ToXml() const {
  std::string out = "<event date=\"" + FormatUlmDate(ts_) + "\" host=\"" +
                    XmlEscape(host()) + "\" prog=\"" + XmlEscape(prog()) +
                    "\" lvl=\"" + XmlEscape(lvl()) + "\"";
  if (event_ != kEmptySymbol) {
    out += " name=\"" + XmlEscape(event_name()) + "\"";
  }
  if (nfields_ == 0) {
    out += "/>";
    return out;
  }
  out += ">";
  for (std::uint32_t i = 0; i < nfields_; ++i) {
    out += "<field name=\"" + XmlEscape(field_name(i)) + "\">" +
           XmlEscape(field_value(i)) + "</field>";
  }
  out += "</event>";
  return out;
}

Record RecordView::ToRecord() const {
  Record rec(ts_, std::string(host()), std::string(prog()), std::string(lvl()),
             std::string(event_name()));
  for (std::uint32_t i = 0; i < nfields_; ++i) {
    // Flat records never hold duplicate or required-name keys, so the
    // unchecked append is safe and skips Record's overwrite scan.
    rec.AppendFieldUnchecked(std::string(field_name(i)),
                             std::string(field_value(i)));
  }
  return rec;
}

// ---------------------------------------------------------------------------
// FlatRecord

void FlatRecord::SetField(Symbol key, std::string_view value) {
  const CoreSyms& core = Core();
  if (key == core.date) {
    if (auto t = ParseUlmDate(value); t.ok()) ts_ = *t;
    return;
  }
  if (key == core.host) { host_ = InternSymbol(value); return; }
  if (key == core.prog) { prog_ = InternSymbol(value); return; }
  if (key == core.lvl) { lvl_ = InternSymbol(value); return; }
  if (key == core.event) { event_ = InternSymbol(value); return; }
  assert(values_.size() + value.size() <=
         std::numeric_limits<std::uint32_t>::max());
  for (FlatField& f : fields_) {
    if (f.key == key) {
      // Overwrite-in-place when the new value fits the old slot; append
      // fresh bytes otherwise (the old bytes become arena slack).
      if (value.size() <= f.len) {
        values_.replace(f.offset, value.size(), value);
        f.len = static_cast<std::uint32_t>(value.size());
      } else {
        f.offset = static_cast<std::uint32_t>(values_.size());
        f.len = static_cast<std::uint32_t>(value.size());
        values_.append(value);
      }
      return;
    }
  }
  fields_.push_back(FlatField{key, static_cast<std::uint32_t>(values_.size()),
                              static_cast<std::uint32_t>(value.size())});
  values_.append(value);
}

void FlatRecord::SetField(std::string_view key, std::string_view value) {
  SetField(InternSymbol(key), value);
}

void FlatRecord::SetField(std::string_view key, std::int64_t value) {
  SetField(InternSymbol(key), value);
}

void FlatRecord::SetField(std::string_view key, double value) {
  SetField(InternSymbol(key), value);
}

void FlatRecord::SetField(Symbol key, std::int64_t value) {
  SetField(key, std::string_view(std::to_string(value)));
}

void FlatRecord::SetField(Symbol key, double value) {
  // Same canonical %.6f form as Record::SetField(double).
  std::string formatted;
  detail::AppendUlmDouble(formatted, value);
  SetField(key, std::string_view(formatted));
}

void FlatRecord::AddFieldUnchecked(Symbol key, std::string_view value) {
  assert(values_.size() + value.size() <=
         std::numeric_limits<std::uint32_t>::max());
  fields_.push_back(FlatField{key, static_cast<std::uint32_t>(values_.size()),
                              static_cast<std::uint32_t>(value.size())});
  values_.append(value);
}

void FlatRecord::Clear() {
  ts_ = 0;
  host_ = prog_ = lvl_ = event_ = kEmptySymbol;
  values_.clear();
  fields_.clear();
}

FlatRecord FlatRecord::FromRecord(const Record& rec) {
  FlatRecord flat;
  flat.AssignRecord(rec);
  return flat;
}

void FlatRecord::AssignRecord(const Record& rec) {
  Clear();
  ts_ = rec.timestamp();
  host_ = InternSymbol(rec.host());
  prog_ = InternSymbol(rec.prog());
  lvl_ = InternSymbol(rec.lvl());
  event_ = InternSymbol(rec.event_name());
  for (const auto& [k, v] : rec.fields()) {
    AddFieldUnchecked(InternSymbol(k), v);
  }
}

Result<FlatRecord> FlatRecord::FromAscii(std::string_view line) {
  auto rec = Record::FromAscii(line);
  if (!rec.ok()) return rec.status();
  return FromRecord(*rec);
}

// ---------------------------------------------------------------------------
// FlatBatch

void FlatBatch::Reserve(std::size_t records, std::size_t value_bytes_hint) {
  metas_.reserve(metas_.size() + records);
  fields_.reserve(fields_.size() + records * 4);
  values_.reserve(values_.size() + value_bytes_hint);
}

bool FlatBatch::AppendCommon(TimePoint ts, Symbol host, Symbol prog,
                             Symbol lvl, Symbol event) {
  metas_.push_back(Meta{ts, host, prog, lvl, event,
                        static_cast<std::uint32_t>(fields_.size()), 0});
  return true;
}

bool FlatBatch::AppendField(Symbol key, std::string_view value) {
  if (value.size() >
      std::numeric_limits<std::uint32_t>::max() - values_.size()) {
    return false;
  }
  fields_.push_back(FlatField{key, static_cast<std::uint32_t>(values_.size()),
                              static_cast<std::uint32_t>(value.size())});
  values_.append(value);
  ++metas_.back().field_count;
  return true;
}

bool FlatBatch::Append(const RecordView& v) {
  // Check the arena bound up front so a failed append leaves the batch
  // untouched.
  std::size_t need = 0;
  for (std::uint32_t i = 0; i < v.field_count(); ++i) {
    need += v.field_value(i).size();
  }
  if (need > std::numeric_limits<std::uint32_t>::max() - values_.size()) {
    return false;
  }
  AppendCommon(v.timestamp(), v.host_sym(), v.prog_sym(), v.lvl_sym(),
               v.event_sym());
  for (std::uint32_t i = 0; i < v.field_count(); ++i) {
    AppendField(v.field_key(i), v.field_value(i));
  }
  return true;
}

bool FlatBatch::Append(const Record& rec) {
  std::size_t need = 0;
  for (const auto& [k, val] : rec.fields()) {
    (void)k;
    need += val.size();
  }
  if (need > std::numeric_limits<std::uint32_t>::max() - values_.size()) {
    return false;
  }
  AppendCommon(rec.timestamp(), InternSymbol(rec.host()),
               InternSymbol(rec.prog()), InternSymbol(rec.lvl()),
               InternSymbol(rec.event_name()));
  for (const auto& [k, val] : rec.fields()) {
    AppendField(InternSymbol(k), val);
  }
  return true;
}

void FlatBatch::Clear() {
  values_.clear();
  fields_.clear();
  metas_.clear();
}

Status FlatBatch::DecodeBinaryStreamInto(std::string_view data) {
  using detail::GetStringView;
  using detail::GetVarint;
  std::size_t i = 0;
  while (i < data.size()) {
    // Snapshot for rollback of a partially decoded frame.
    const std::size_t values_mark = values_.size();
    const std::size_t fields_mark = fields_.size();
    auto fail = [&](std::string msg) {
      values_.resize(values_mark);
      fields_.resize(fields_mark);
      return Status::ParseError(std::move(msg));
    };
    if (data.size() - i < 11) return fail("binary ULM: truncated header");
    const std::uint8_t lo = static_cast<std::uint8_t>(data[i]);
    const std::uint8_t hi = static_cast<std::uint8_t>(data[i + 1]);
    if (lo != kBinaryMagicLo || hi != kBinaryMagicHi) {
      return fail("binary ULM: bad magic");
    }
    const std::uint8_t version = static_cast<std::uint8_t>(data[i + 2]);
    if (version != kBinaryVersion) {
      return fail("binary ULM: unsupported version " +
                  std::to_string(version));
    }
    i += 3;
    std::uint64_t ts = 0;
    for (int b = 0; b < 8; ++b) {
      ts |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[i + b]))
            << (8 * b);
    }
    i += 8;
    std::uint64_t nfields;
    if (!GetVarint(data, i, nfields)) {
      return fail("binary ULM: truncated field count");
    }
    if (nfields < 4) {
      return fail("binary ULM: record missing required fields");
    }
    Symbol host = kEmptySymbol, prog = kEmptySymbol, lvl = kEmptySymbol,
           event = kEmptySymbol;
    // User fields append directly; required names (any position, like the
    // legacy decoder) land in the symbols above. field_count is fixed up
    // after the loop, once we know how many pairs were required names.
    const std::size_t record_fields_mark = fields_.size();
    bool ok = true;
    std::string_view key, value;
    std::uint64_t f = 0;
    std::uint32_t user_fields = 0;
    for (; f < nfields; ++f) {
      if (!GetStringView(data, i, key) || !GetStringView(data, i, value)) {
        ok = false;
        break;
      }
      if (key == field::kHost) {
        host = InternSymbol(value);
      } else if (key == field::kProg) {
        prog = InternSymbol(value);
      } else if (key == field::kLevel) {
        lvl = InternSymbol(value);
      } else if (key == field::kEvent) {
        event = InternSymbol(value);
      } else {
        if (value.size() >
            std::numeric_limits<std::uint32_t>::max() - values_.size()) {
          return fail("binary ULM: record overflows batch arena");
        }
        fields_.push_back(
            FlatField{InternSymbol(key),
                      static_cast<std::uint32_t>(values_.size()),
                      static_cast<std::uint32_t>(value.size())});
        values_.append(value);
        ++user_fields;
      }
    }
    if (!ok) {
      return fail("binary ULM: truncated field " + std::to_string(f));
    }
    metas_.push_back(Meta{static_cast<TimePoint>(ts), host, prog, lvl, event,
                          static_cast<std::uint32_t>(record_fields_mark),
                          user_fields});
  }
  return Status::Ok();
}

}  // namespace jamm::ulm
