#include "ulm/xml.hpp"

#include "common/time_util.hpp"

namespace jamm::ulm {

std::string XmlEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string ToXml(const Record& rec) {
  std::string out = "<event date=\"" + FormatUlmDate(rec.timestamp()) +
                    "\" host=\"" + XmlEscape(rec.host()) + "\" prog=\"" +
                    XmlEscape(rec.prog()) + "\" lvl=\"" + XmlEscape(rec.lvl()) +
                    "\"";
  if (!rec.event_name().empty()) {
    out += " name=\"" + XmlEscape(rec.event_name()) + "\"";
  }
  if (rec.fields().empty()) {
    out += "/>";
    return out;
  }
  out += ">";
  for (const auto& [k, v] : rec.fields()) {
    out += "<field name=\"" + XmlEscape(k) + "\">" + XmlEscape(v) + "</field>";
  }
  out += "</event>";
  return out;
}

std::string ToXmlDocument(const std::vector<Record>& records) {
  std::string out = "<?xml version=\"1.0\"?>\n<events>\n";
  for (const auto& rec : records) {
    out += "  ";
    out += ToXml(rec);
    out += "\n";
  }
  out += "</events>\n";
  return out;
}

}  // namespace jamm::ulm
