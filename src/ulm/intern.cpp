#include "ulm/intern.hpp"

#include <array>
#include <atomic>
#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace jamm::ulm {

namespace {

// Id → name lookup is a two-level array so Name() never takes a lock:
// fixed-size blocks are allocated under the writer lock and published
// with a release store; readers index with acquire loads. Entries for
// ids < size_ are written before size_ is advanced, so any id a reader
// legitimately holds (handed out by Intern after the advance) names a
// fully published entry.
constexpr std::size_t kBlockBits = 12;  // 4096 entries per block
constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
constexpr std::size_t kMaxBlocks = 1 << 14;  // 67M symbols — a backstop

constexpr std::size_t kShards = 16;

std::size_t ShardOf(std::size_t hash) { return hash & (kShards - 1); }

// Lock-free read path: each shard carries a fixed open-addressing probe
// array of (hash32, symbol) entries, published with release stores after
// the symbol's name is readable through the lock-free Name() path. The
// steady state of a monitoring stream — every event name, host, and field
// key already interned — then resolves with a handful of atomic loads and
// one string compare, no lock. Strings that fall out of the probe array
// (capacity exhausted, long probe chains) still resolve through the
// mutex-protected shard map; the array is an accelerator, not the truth.
constexpr std::size_t kProbeSlots = 8192;  // per shard; 16 shards → 1 MiB
constexpr std::size_t kMaxProbe = 16;

std::uint32_t HashTag(std::size_t hash) {
  // A second mix of the hash, so the tag disagrees with the slot index
  // bits and false tag matches are rare (and caught by the compare).
  return static_cast<std::uint32_t>((hash * 0x9E3779B97F4A7C15ull) >> 32) | 1u;
}

}  // namespace

struct SymbolTable::Impl {
  using Block = std::array<std::string_view, kBlockSize>;

  struct Shard {
    mutable std::mutex mu;
    // Keys are views into `storage` strings, which never move.
    std::unordered_map<std::string_view, Symbol> map;
    // Packed (HashTag << 32 | symbol + 1); 0 = empty. Append-only.
    std::array<std::atomic<std::uint64_t>, kProbeSlots> probe{};
  };

  std::array<Shard, kShards> shards;

  // Writer state, serialized by grow_mu: id assignment and the backing
  // byte storage. deque never relocates elements, so views stay valid.
  std::mutex grow_mu;
  std::deque<std::string> storage;

  std::array<std::atomic<Block*>, kMaxBlocks> blocks{};
  std::atomic<std::uint32_t> count{0};

  ~Impl() {
    for (auto& slot : blocks) delete slot.load(std::memory_order_relaxed);
  }

  std::string_view Entry(Symbol id) const {
    const Block* block =
        blocks[id >> kBlockBits].load(std::memory_order_acquire);
    assert(block != nullptr && "symbol id from a different table?");
    return (*block)[id & (kBlockSize - 1)];
  }

  // Lock-free lookup in the shard's probe array. A hit is verified by
  // comparing the interned name, so a HashTag collision can never return
  // the wrong symbol. Returns nullopt on miss (which includes "interned
  // but evicted from the probe array" — callers fall back to the map).
  std::optional<Symbol> ProbeFind(const Shard& shard, std::size_t hash,
                                  std::string_view s) const {
    const std::uint64_t tag = HashTag(hash);
    std::size_t idx = (hash >> 4) & (kProbeSlots - 1);
    for (std::size_t i = 0; i < kMaxProbe; ++i) {
      const std::uint64_t e =
          shard.probe[idx].load(std::memory_order_acquire);
      if (e == 0) return std::nullopt;  // chain ends: never inserted
      if ((e >> 32) == tag) {
        const Symbol id = static_cast<Symbol>(e & 0xFFFFFFFFu) - 1;
        if (Entry(id) == s) return id;
      }
      idx = (idx + 1) & (kProbeSlots - 1);
    }
    return std::nullopt;
  }

  // Publish (hash, id) into the probe array. Runs under grow_mu, so
  // writers don't race each other; plain CAS guards against nothing more
  // than the ordering the memory model demands for readers. If the probe
  // window is full the entry is simply not cached — the shard map still
  // has it.
  void ProbeInsert(Shard& shard, std::size_t hash, Symbol id) {
    const std::uint64_t entry =
        (static_cast<std::uint64_t>(HashTag(hash)) << 32) |
        (static_cast<std::uint64_t>(id) + 1);
    std::size_t idx = (hash >> 4) & (kProbeSlots - 1);
    for (std::size_t i = 0; i < kMaxProbe; ++i) {
      std::uint64_t expected = 0;
      if (shard.probe[idx].compare_exchange_strong(
              expected, entry, std::memory_order_release,
              std::memory_order_relaxed)) {
        return;
      }
      idx = (idx + 1) & (kProbeSlots - 1);
    }
  }
};

SymbolTable::SymbolTable() : impl_(new Impl) {
  // Symbol 0 is the empty string by construction, everywhere.
  const Symbol empty = Intern("");
  (void)empty;
  assert(empty == kEmptySymbol);
}

SymbolTable::~SymbolTable() { delete impl_; }

Symbol SymbolTable::Intern(std::string_view s) {
  const std::size_t hash = std::hash<std::string_view>{}(s);
  Impl::Shard& shard = impl_->shards[ShardOf(hash)];
  // Hot path: already interned and still in the probe window — no lock.
  // This is the steady state of a monitoring stream, where every field
  // key, host, and event name repeats millions of times.
  if (auto hit = impl_->ProbeFind(shard, hash, s)) return *hit;
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.map.find(s);
    if (it != shard.map.end()) return it->second;
  }
  // Miss: assign the id and publish the name under the writer lock, then
  // insert into the shard map. Another thread may have raced the same
  // string in — re-check under the shard lock and keep the winner (the
  // loser's arena copy is wasted bytes, not a correctness problem).
  std::lock_guard grow(impl_->grow_mu);
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.map.find(s);
    if (it != shard.map.end()) return it->second;
  }
  const Symbol id = impl_->count.load(std::memory_order_relaxed);
  if ((id >> kBlockBits) >= kMaxBlocks) {
    assert(false && "symbol table exhausted");
    return kEmptySymbol;
  }
  impl_->storage.emplace_back(s);
  const std::string_view stable = impl_->storage.back();
  auto& slot = impl_->blocks[id >> kBlockBits];
  Impl::Block* block = slot.load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Impl::Block{};
    slot.store(block, std::memory_order_release);
  }
  (*block)[id & (kBlockSize - 1)] = stable;
  impl_->count.store(id + 1, std::memory_order_release);
  {
    std::lock_guard lock(shard.mu);
    shard.map.emplace(stable, id);
  }
  // Cache in the lock-free probe array last, so any reader that sees the
  // probe entry can already resolve the name through Entry().
  impl_->ProbeInsert(shard, hash, id);
  return id;
}

std::optional<Symbol> SymbolTable::Find(std::string_view s) const {
  const std::size_t hash = std::hash<std::string_view>{}(s);
  const Impl::Shard& shard = impl_->shards[ShardOf(hash)];
  if (auto hit = impl_->ProbeFind(shard, hash, s)) return hit;
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(s);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

std::string_view SymbolTable::Name(Symbol id) const {
  // The acquire load pairs with Intern's release store: every entry with
  // an id below `n` is fully published before this thread reads it.
  const std::uint32_t n = impl_->count.load(std::memory_order_acquire);
  (void)n;
  assert(id < n);
  return impl_->Entry(id);
}

std::size_t SymbolTable::size() const {
  return impl_->count.load(std::memory_order_acquire);
}

SymbolTable& Symbols() {
  // Leaked intentionally: interned views must outlive every static
  // consumer, and the table is process-lifetime by contract.
  static SymbolTable* table = new SymbolTable;
  return *table;
}

}  // namespace jamm::ulm
