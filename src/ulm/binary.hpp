// Binary ULM codec — the paper (§3) plans "a binary format option for high
// throughput event data that can not tolerate the parsing overhead of ASCII
// formats". Layout (little-endian):
//
//   magic   u16   0x554C ("UL")
//   version u8    1
//   ts      i64   microseconds since epoch
//   nfields varint  number of (key,value) pairs INCLUDING the required
//                   HOST/PROG/LVL/NL.EVNT carried as pairs 0..3
//   pairs   (varint len + bytes) * 2 per field
//
// Encoded records are self-delimiting, so streams concatenate directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "ulm/record.hpp"

namespace jamm::ulm {

/// Append the binary encoding of `rec` to `out`.
void EncodeBinary(const Record& rec, std::string& out);
std::string EncodeBinary(const Record& rec);

/// Decode one record starting at *offset; advances *offset past it.
Result<Record> DecodeBinary(std::string_view data, std::size_t* offset);

/// Decode a whole concatenated stream.
Result<std::vector<Record>> DecodeBinaryStream(std::string_view data);

namespace detail {
/// Wire primitives shared with the flat transcoder (ulm/flat.cpp) so both
/// codecs emit byte-identical streams. GetStringView returns a view into
/// `data` — valid only while the buffer lives.
void PutVarint(std::string& out, std::uint64_t v);
bool GetVarint(std::string_view data, std::size_t& i, std::uint64_t& v);
void PutString(std::string& out, std::string_view s);
bool GetStringView(std::string_view data, std::size_t& i, std::string_view& s);
}  // namespace detail

}  // namespace jamm::ulm
