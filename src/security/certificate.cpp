#include "security/certificate.hpp"

namespace jamm::security {

std::string Certificate::SignedPayload() const {
  std::string out;
  out += kind == Kind::kIdentity ? "identity\n" : "attribute\n";
  out += "subject=" + subject + "\n";
  out += "issuer=" + issuer + "\n";
  out += "key=" + public_key + "\n";
  out += "from=" + std::to_string(not_before) + "\n";
  out += "to=" + std::to_string(not_after) + "\n";
  for (const auto& [k, v] : attributes) {
    out += "attr:" + k + "=" + v + "\n";
  }
  return out;
}

CertificateAuthority::CertificateAuthority(std::string subject, Rng& rng)
    : subject_(std::move(subject)), keys_(GenerateKeyPair(rng)) {
  Certificate cert;
  cert.kind = Certificate::Kind::kIdentity;
  cert.subject = subject_;
  cert.issuer = subject_;  // self-signed root
  cert.public_key = keys_.public_key;
  cert.not_before = 0;
  cert.not_after = 1ll << 62;
  ca_cert_ = SignCert(std::move(cert));
}

Certificate CertificateAuthority::SignCert(Certificate cert) const {
  cert.signature = Sign(keys_.private_key, cert.SignedPayload());
  return cert;
}

Certificate CertificateAuthority::IssueIdentity(
    const std::string& subject, const std::string& subject_public_key,
    TimePoint not_before, TimePoint not_after) const {
  Certificate cert;
  cert.kind = Certificate::Kind::kIdentity;
  cert.subject = subject;
  cert.issuer = subject_;
  cert.public_key = subject_public_key;
  cert.not_before = not_before;
  cert.not_after = not_after;
  return SignCert(std::move(cert));
}

Certificate CertificateAuthority::IssueAttribute(
    const std::string& subject, std::map<std::string, std::string> attributes,
    TimePoint not_before, TimePoint not_after) const {
  Certificate cert;
  cert.kind = Certificate::Kind::kAttribute;
  cert.subject = subject;
  cert.issuer = subject_;
  cert.attributes = std::move(attributes);
  cert.not_before = not_before;
  cert.not_after = not_after;
  return SignCert(std::move(cert));
}

Status VerifyCertificate(const Certificate& cert,
                         const std::vector<Certificate>& trusted,
                         TimePoint now) {
  if (now < cert.not_before || now > cert.not_after) {
    return Status::PermissionDenied("certificate for " + cert.subject +
                                    " expired or not yet valid");
  }
  for (const auto& anchor : trusted) {
    if (anchor.subject != cert.issuer) continue;
    if (Verify(anchor.public_key, cert.SignedPayload(), cert.signature)) {
      return Status::Ok();
    }
  }
  return Status::PermissionDenied("no trusted issuer validates " +
                                  cert.subject);
}

}  // namespace jamm::security
