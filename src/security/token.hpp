// Capability tokens (ISSUE 10) — the fast path of the paper's §7.1
// authorization design. The full Akenti evaluation (certificate chain,
// attribute certificates, use-condition globs) runs ONCE, at
// authentication/subscribe time; its verdict is sealed into a short-lived
// signed token naming the principal, the resource, and the exact action
// set granted. Every later enforcement point verifies one signature and
// consults a set — the per-event fan-out path re-checks nothing at all.
//
// Tokens are bearer credentials: once minted they are honored until
// not_after even if the policy changes underneath (the generation stamp
// records the policy epoch for observability, not validity — revocation
// is "wait out the TTL", which is why TTLs are short). Validity is
// inclusive at both window edges, matching VerifyCertificate.
//
// Signatures use the simulated PKI from crypto.hpp — NOT real
// cryptography (see crypto.hpp's banner).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "security/crypto.hpp"

namespace jamm::security {

struct CapabilityToken {
  std::string principal;             // authenticated subject DN
  std::string resource;              // e.g. "gw.lbl" — one token per resource
  std::vector<std::string> actions;  // granted actions, sorted + deduped
  TimePoint not_before = 0;
  TimePoint not_after = 0;           // inclusive: valid AT not_after
  std::uint64_t generation = 0;      // policy epoch at mint time
  std::string issuer;                // minting authority's name
  std::string signature;             // authority's signature over the rest

  /// Canonical byte string the signature covers (binary-safe framing).
  std::string SignedPayload() const;

  bool HasAction(std::string_view action) const;
};

/// Wire form (rpc::EncodeStrings framing, binary-safe).
std::string EncodeToken(const CapabilityToken& token);
Result<CapabilityToken> DecodeToken(std::string_view data);

/// Signature + validity-window check against the issuing authority's
/// public key. Window is inclusive at both edges: a token presented
/// exactly at not_after is still good, one microsecond later it is not.
Status VerifyToken(const CapabilityToken& token,
                   const std::string& issuer_public_key, TimePoint now);

/// Mints and verifies tokens under one key pair. An Authorizer owns one;
/// remote verifiers need only the issuer name + public key.
class TokenAuthority {
 public:
  TokenAuthority(std::string issuer, Rng& rng);

  CapabilityToken Mint(std::string principal, std::string resource,
                       const std::set<std::string>& actions,
                       TimePoint not_before, TimePoint not_after,
                       std::uint64_t generation) const;

  /// VerifyToken + issuer-name match.
  Status Verify(const CapabilityToken& token, TimePoint now) const;

  const std::string& issuer() const { return issuer_; }
  const std::string& public_key() const { return keys_.public_key; }

 private:
  std::string issuer_;
  KeyPair keys_;
};

}  // namespace jamm::security
