// SSL-sim secure channel (paper §7.1): "When the certificate is presented
// through a secure protocol such as SSL, the server side can be assured
// that the connection is indeed to the legitimate user named in the
// certificate." Also supports the manager-side peer allowlist: "a sensor
// manager only needs to communicate with a small known set of gateway
// agents and thus can just have a list of the Identity Certificates for
// each agent to which it will allow a connection."
//
// Handshake: each side sends its certificate + nonce; both verify against
// their trusted roots (and the optional subject allowlist); a session key
// is derived and every subsequent message carries a keyed digest. Uses
// the simulated PKI from crypto.hpp — NOT real cryptography.
//
// ISSUE 10: the handshake is split-phase so single-threaded poll loops
// can use secure channels. Our hello goes out eagerly (StartHandshake);
// the exchange completes inside Receive/TryReceive when the peer's hello
// arrives. Sends issued before completion are buffered (bounded) and
// flushed, sealed, once the peer is verified — so a dialer can wrap a
// channel, hand it to a GatewayClient or RpcClient, and the normal
// request/reply flow drives the handshake underneath. Verification
// failures are sticky: the channel closes and every later call returns
// the failure. SecureListener and MakeSecureDialer package the two ends.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "security/certificate.hpp"
#include "transport/message.hpp"

namespace jamm::security {

/// Serialize/parse certificates for the wire.
std::string SerializeCertificate(const Certificate& cert);
Result<Certificate> ParseCertificate(std::string_view data);

struct SecureChannelOptions {
  Certificate local_cert;                 // presented to the peer
  std::string local_private_key;          // proves cert ownership
  std::vector<Certificate> trusted_roots;
  /// When non-empty, only these peer subjects may connect (the sensor
  /// manager's known-gateways list).
  std::set<std::string> allowed_peers;
  Duration handshake_timeout = 5 * kSecond;
};

/// Wraps an established (plaintext) channel in the authenticated
/// envelope. Either call Handshake() from both sides (blocking, needs
/// two threads), or just start sending/receiving: the split-phase
/// handshake completes under the first receives.
class SecureChannel final : public transport::Channel {
 public:
  SecureChannel(std::unique_ptr<transport::Channel> inner,
                SecureChannelOptions options);

  /// Run the certificate exchange to completion (blocks on the peer's
  /// hello). On success, peer_subject() is set.
  Status Handshake();

  /// Split-phase: send our hello now; completion happens lazily inside
  /// Receive/TryReceive. Idempotent.
  Status StartHandshake();

  const std::string& peer_subject() const { return peer_subject_; }
  bool handshake_done() const { return handshake_done_; }
  /// Sticky verification failure, Ok while pending or succeeded.
  const Status& handshake_status() const { return failed_; }

  // transport::Channel interface (envelope-protected). Before the
  // handshake completes, Send buffers (bounded at kMaxBufferedSends) and
  // TryReceive returns nothing while advancing the handshake. Buffered
  // sends are best-effort: if verification later fails they are dropped,
  // and the sticky handshake_status() reports how many were lost.
  Status Send(const transport::Message& msg) override;
  Result<transport::Message> Receive(Duration timeout) override;
  std::optional<transport::Message> TryReceive() override;
  void Close() override { inner_->Close(); }
  bool IsOpen() const override { return failed_.ok() && inner_->IsOpen(); }
  std::string peer() const override;

  static constexpr std::size_t kMaxBufferedSends = 256;

 private:
  Result<transport::Message> Unwrap(const transport::Message& wire);
  /// Verify the peer's tls.hello and derive the session key; failures
  /// become sticky and close the channel.
  Status CompleteWithHello(const transport::Message& hello);
  Status SendSealed(const transport::Message& msg);
  Status FlushBuffered();
  Status Fail(Status status);

  std::unique_ptr<transport::Channel> inner_;
  SecureChannelOptions options_;
  std::string nonce_;
  std::string session_key_;
  std::string peer_subject_;
  bool hello_sent_ = false;
  bool handshake_done_ = false;
  Status failed_ = Status::Ok();
  std::deque<transport::Message> buffered_sends_;
};

/// Server side of ISSUE 10's authenticated endpoints: accepted channels
/// come back wrapped, with the server hello already sent; the handshake
/// completes under the service's normal TryReceive polling. Front a
/// GatewayService or RpcServer listener with this (allowed_peers gives
/// the manager's known-gateways restriction).
class SecureListener final : public transport::Listener {
 public:
  SecureListener(std::unique_ptr<transport::Listener> inner,
                 SecureChannelOptions options)
      : inner_(std::move(inner)), options_(std::move(options)) {}

  Result<std::unique_ptr<transport::Channel>> Accept(Duration timeout) override;
  void Close() override { inner_->Close(); }
  std::string address() const override { return inner_->address(); }

 private:
  std::unique_ptr<transport::Listener> inner_;
  SecureChannelOptions options_;
};

/// Client side: wrap any dialer (GatewayClient::Dialer and
/// RpcClient::Dialer are this same type) so every (re-)dial yields a
/// SecureChannel with our hello already on the wire.
using ChannelDialer =
    std::function<Result<std::unique_ptr<transport::Channel>>()>;
ChannelDialer MakeSecureDialer(ChannelDialer inner,
                               SecureChannelOptions options);

}  // namespace jamm::security
