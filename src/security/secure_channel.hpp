// SSL-sim secure channel (paper §7.1): "When the certificate is presented
// through a secure protocol such as SSL, the server side can be assured
// that the connection is indeed to the legitimate user named in the
// certificate." Also supports the manager-side peer allowlist: "a sensor
// manager only needs to communicate with a small known set of gateway
// agents and thus can just have a list of the Identity Certificates for
// each agent to which it will allow a connection."
//
// Handshake: each side sends its certificate + nonce; both verify against
// their trusted roots (and the optional subject allowlist); a session key
// is derived and every subsequent message carries a keyed digest. Uses
// the simulated PKI from crypto.hpp — NOT real cryptography.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "security/certificate.hpp"
#include "transport/message.hpp"

namespace jamm::security {

/// Serialize/parse certificates for the wire.
std::string SerializeCertificate(const Certificate& cert);
Result<Certificate> ParseCertificate(std::string_view data);

struct SecureChannelOptions {
  Certificate local_cert;                 // presented to the peer
  std::string local_private_key;          // proves cert ownership
  std::vector<Certificate> trusted_roots;
  /// When non-empty, only these peer subjects may connect (the sensor
  /// manager's known-gateways list).
  std::set<std::string> allowed_peers;
  Duration handshake_timeout = 5 * kSecond;
};

/// Wraps an established (plaintext) channel in the authenticated
/// envelope. Both sides must call Handshake before exchanging messages.
class SecureChannel final : public transport::Channel {
 public:
  SecureChannel(std::unique_ptr<transport::Channel> inner,
                SecureChannelOptions options);

  /// Run the certificate exchange. On success, peer_subject() is set.
  Status Handshake();

  const std::string& peer_subject() const { return peer_subject_; }
  bool handshake_done() const { return handshake_done_; }

  // transport::Channel interface (envelope-protected).
  Status Send(const transport::Message& msg) override;
  Result<transport::Message> Receive(Duration timeout) override;
  std::optional<transport::Message> TryReceive() override;
  void Close() override { inner_->Close(); }
  bool IsOpen() const override { return inner_->IsOpen(); }
  std::string peer() const override;

 private:
  Result<transport::Message> Unwrap(const transport::Message& wire);

  std::unique_ptr<transport::Channel> inner_;
  SecureChannelOptions options_;
  std::string session_key_;
  std::string peer_subject_;
  bool handshake_done_ = false;
};

}  // namespace jamm::security
