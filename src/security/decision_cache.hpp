// Sharded authorization decision cache (ISSUE 10). The Akenti evaluation
// — glob matches over use-conditions, attribute-certificate scans — is
// far too slow to sit on a request path that fires per subscribe/query
// across millions of consumers, so verdicts are memoized per
// (principal × resource × action).
//
// Invalidation is a generation bump, not a scan: every entry is stamped
// with the generation current at insert; a policy change bumps the global
// generation, making every older entry miss (and lazily evicting it on
// the next lookup). Bumping is one atomic increment regardless of cache
// size — policy reloads stay O(1) while lookups stay lock-narrow
// (one shard mutex, hashed by key).
//
// Time-dependent verdicts (capability-token sessions) must NOT be cached
// here: an entry has no expiry, only a generation. The Authorizer keeps
// token decisions out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace jamm::security {

class DecisionCache {
 public:
  struct Options {
    std::size_t shards = 16;
    /// Entries per shard; at capacity the shard is cleared (verdicts are
    /// recomputable — a rare full re-evaluation beats LRU bookkeeping on
    /// every hit).
    std::size_t capacity_per_shard = 4096;
  };

  // Two constructors, not one defaulted argument: an NSDMI of a nested
  // class cannot be used in the enclosing class's member declarations
  // (function bodies are complete-class contexts; default arguments are
  // not).
  DecisionCache() : DecisionCache(Options{}) {}
  explicit DecisionCache(Options options);

  std::optional<bool> Lookup(const std::string& principal,
                             const std::string& resource,
                             const std::string& action) const;
  /// Stamp the entry with `generation` — the generation the caller read
  /// BEFORE (or while) computing the verdict. A verdict evaluated against
  /// a pre-reload policy then lands stamped pre-reload even if the bump
  /// races the insert, so the next lookup discards it instead of honoring
  /// a revoked grant.
  void Insert(const std::string& principal, const std::string& resource,
              const std::string& action, bool allowed,
              std::uint64_t generation);
  /// Convenience for verdicts computed atomically with the insert (no
  /// policy read in between): stamps the current generation.
  void Insert(const std::string& principal, const std::string& resource,
              const std::string& action, bool allowed) {
    Insert(principal, resource, action, allowed, generation());
  }

  /// Invalidate everything (policy changed): O(1), entries die lazily.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;          // absent or stale-generation
    std::uint64_t insertions = 0;
    std::uint64_t stale_evicted = 0;   // old-generation entries removed
    std::uint64_t capacity_sweeps = 0; // shard clears at capacity
    std::uint64_t generation = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    bool allowed = false;
    std::uint64_t generation = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
  };

  Shard& ShardFor(const std::string& key) const;

  Options options_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> generation_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  mutable std::atomic<std::uint64_t> stale_evicted_{0};
  std::atomic<std::uint64_t> capacity_sweeps_{0};
};

}  // namespace jamm::security
