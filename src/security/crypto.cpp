#include "security/crypto.hpp"

#include <cstdio>
#include <map>
#include <mutex>

namespace jamm::security {
namespace {

std::mutex g_keys_mu;
std::map<std::string, std::string>& KeyRegistry() {
  static std::map<std::string, std::string> registry;  // public → private
  return registry;
}

std::uint64_t Fnv1a(std::string_view data) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string Hex(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string Digest(std::string_view data) { return Hex(Fnv1a(data)); }

KeyPair GenerateKeyPair(Rng& rng) {
  KeyPair pair;
  pair.private_key = "prv-" + Hex(rng.Next()) + Hex(rng.Next());
  pair.public_key = "pub-" + Digest(pair.private_key);
  std::lock_guard lock(g_keys_mu);
  KeyRegistry()[pair.public_key] = pair.private_key;
  return pair;
}

std::string Sign(const std::string& private_key, std::string_view message) {
  return Digest(private_key + "|" + std::string(message));
}

bool Verify(const std::string& public_key, std::string_view message,
            std::string_view signature) {
  std::string private_key;
  {
    std::lock_guard lock(g_keys_mu);
    auto it = KeyRegistry().find(public_key);
    if (it == KeyRegistry().end()) return false;
    private_key = it->second;
  }
  return Sign(private_key, message) == signature;
}

void ResetKeyRegistryForTest() {
  std::lock_guard lock(g_keys_mu);
  KeyRegistry().clear();
}

}  // namespace jamm::security
