#include "security/decision_cache.hpp"

namespace jamm::security {
namespace {

// \x1f (unit separator) cannot appear in DNs, resource names, or action
// names, so the composite key is collision-free.
std::string CacheKey(const std::string& principal, const std::string& resource,
                     const std::string& action) {
  std::string key;
  key.reserve(principal.size() + resource.size() + action.size() + 2);
  key += principal;
  key += '\x1f';
  key += resource;
  key += '\x1f';
  key += action;
  return key;
}

}  // namespace

DecisionCache::DecisionCache(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.capacity_per_shard == 0) options_.capacity_per_shard = 1;
  shards_ = std::make_unique<Shard[]>(options_.shards);
}

DecisionCache::Shard& DecisionCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % options_.shards];
}

std::optional<bool> DecisionCache::Lookup(const std::string& principal,
                                          const std::string& resource,
                                          const std::string& action) const {
  const std::string key = CacheKey(principal, resource, action);
  const std::uint64_t gen = generation();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second.generation != gen) {
    // Pre-reload verdict: evict lazily so a bumped generation never
    // resurrects a stale grant (or deny).
    shard.entries.erase(it);
    stale_evicted_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.allowed;
}

void DecisionCache::Insert(const std::string& principal,
                           const std::string& resource,
                           const std::string& action, bool allowed,
                           std::uint64_t gen) {
  const std::string key = CacheKey(principal, resource, action);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.size() >= options_.capacity_per_shard &&
      shard.entries.find(key) == shard.entries.end()) {
    shard.entries.clear();
    capacity_sweeps_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.entries[key] = Entry{allowed, gen};
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

DecisionCache::Stats DecisionCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.stale_evicted = stale_evicted_.load(std::memory_order_relaxed);
  s.capacity_sweeps = capacity_sweeps_.load(std::memory_order_relaxed);
  s.generation = generation();
  return s;
}

}  // namespace jamm::security
