// GSI-style gridmap (paper §7.1): "A server side map file is used to map
// the Globus X.509 user identities to local user-ids which can be used by
// existing access control mechanisms."
//
// File format, one mapping per line:
//   "/O=LBNL/CN=Brian Tierney" tierney
#pragma once

#include <map>
#include <string>

#include "common/status.hpp"

namespace jamm::security {

class GridMap {
 public:
  static Result<GridMap> Parse(std::string_view text);

  void Add(std::string subject, std::string local_user);

  /// Local account for a certificate subject; NotFound when unmapped
  /// (the user has no local identity → deny).
  Result<std::string> MapSubject(const std::string& subject) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace jamm::security
