// X.509-style identity and attribute certificates (paper §7.1): "Public
// key based X.509 identity certificates are a recognized solution for
// cross-realm identification of users... Akenti provides a way for the
// resource stakeholders to remotely determine the authorization for
// resource use based on components of the users distinguished name or
// attribute certificates."
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "security/crypto.hpp"

namespace jamm::security {

struct Certificate {
  enum class Kind { kIdentity, kAttribute };

  Kind kind = Kind::kIdentity;
  std::string subject;     // distinguished name, e.g. "/O=LBNL/CN=tierney"
  std::string issuer;      // issuing CA's subject
  std::string public_key;  // subject's public key (identity certs)
  TimePoint not_before = 0;
  TimePoint not_after = 0;
  /// Attribute certs carry assertions about the subject ("group=didc").
  std::map<std::string, std::string> attributes;

  std::string signature;   // issuer's signature over the fields above

  /// Canonical byte string the signature covers.
  std::string SignedPayload() const;
};

class CertificateAuthority {
 public:
  /// Self-signed root CA.
  CertificateAuthority(std::string subject, Rng& rng);

  const std::string& subject() const { return subject_; }
  /// The CA's own (self-signed) certificate — the trust anchor.
  const Certificate& ca_certificate() const { return ca_cert_; }

  /// Issue an identity certificate binding `subject` to `subject_key`.
  Certificate IssueIdentity(const std::string& subject,
                            const std::string& subject_public_key,
                            TimePoint not_before, TimePoint not_after) const;

  /// Issue an attribute certificate asserting `attributes` about
  /// `subject` (Akenti-style).
  Certificate IssueAttribute(const std::string& subject,
                             std::map<std::string, std::string> attributes,
                             TimePoint not_before, TimePoint not_after) const;

 private:
  Certificate SignCert(Certificate cert) const;

  std::string subject_;
  KeyPair keys_;
  Certificate ca_cert_;
};

/// Verify `cert` was signed by one of `trusted` CA certificates and is
/// valid at `now`.
Status VerifyCertificate(const Certificate& cert,
                         const std::vector<Certificate>& trusted,
                         TimePoint now);

}  // namespace jamm::security
