// Simulated public-key primitives for the security layer (paper §7.1).
//
// *** NOT CRYPTOGRAPHY. *** The paper's design uses X.509 identity
// certificates over SSL; what the reproduction needs is the TRUST and
// AUTHORIZATION structure (who signed what, which subject is asserted,
// which actions follow), not actual hardness. Key pairs here are random
// identifiers; "signatures" are 64-bit FNV-1a digests keyed by the
// private value; verification consults a process-global table emulating
// the asymmetric math (only the matching public key validates). See
// DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace jamm::security {

/// FNV-1a 64-bit digest, rendered as hex.
std::string Digest(std::string_view data);

struct KeyPair {
  std::string public_key;   // shareable identifier
  std::string private_key;  // signing secret
};

/// Deterministic given the rng state; registers the pair so Verify works.
KeyPair GenerateKeyPair(Rng& rng);

/// Sign `message` with a private key.
std::string Sign(const std::string& private_key, std::string_view message);

/// True iff `signature` was produced over `message` by the private key
/// matching `public_key`.
bool Verify(const std::string& public_key, std::string_view message,
            std::string_view signature);

/// Test hook: forget all registered key pairs.
void ResetKeyRegistryForTest();

}  // namespace jamm::security
