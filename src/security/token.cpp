#include "security/token.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "rpc/wire.hpp"

namespace jamm::security {

std::string CapabilityToken::SignedPayload() const {
  // EncodeStrings gives unambiguous framing, so no field content can
  // forge a different token with the same canonical bytes.
  std::vector<std::string> fields = {"captok",
                                     principal,
                                     resource,
                                     std::to_string(not_before),
                                     std::to_string(not_after),
                                     std::to_string(generation),
                                     issuer};
  fields.insert(fields.end(), actions.begin(), actions.end());
  return rpc::EncodeStrings(fields);
}

bool CapabilityToken::HasAction(std::string_view action) const {
  return std::binary_search(actions.begin(), actions.end(), action);
}

std::string EncodeToken(const CapabilityToken& token) {
  std::vector<std::string> fields = {token.principal,
                                     token.resource,
                                     std::to_string(token.not_before),
                                     std::to_string(token.not_after),
                                     std::to_string(token.generation),
                                     token.issuer,
                                     token.signature};
  fields.insert(fields.end(), token.actions.begin(), token.actions.end());
  return rpc::EncodeStrings(fields);
}

Result<CapabilityToken> DecodeToken(std::string_view data) {
  auto fields = rpc::DecodeStrings(data);
  if (!fields.ok()) return fields.status();
  if (fields->size() < 7) {
    return Status::ParseError("capability token: wrong field count");
  }
  CapabilityToken token;
  token.principal = (*fields)[0];
  token.resource = (*fields)[1];
  auto from = ParseInt((*fields)[2]);
  auto to = ParseInt((*fields)[3]);
  auto gen = ParseInt((*fields)[4]);
  if (!from.ok() || !to.ok() || !gen.ok() || *gen < 0) {
    return Status::ParseError("capability token: bad stamps");
  }
  token.not_before = *from;
  token.not_after = *to;
  token.generation = static_cast<std::uint64_t>(*gen);
  token.issuer = (*fields)[5];
  token.signature = (*fields)[6];
  token.actions.assign(fields->begin() + 7, fields->end());
  // HasAction binary-searches; a decoded token must uphold the sorted
  // invariant Mint established (re-sorting would let a tampered action
  // list re-canonicalize, so reject instead).
  if (!std::is_sorted(token.actions.begin(), token.actions.end())) {
    return Status::ParseError("capability token: actions not sorted");
  }
  return token;
}

Status VerifyToken(const CapabilityToken& token,
                   const std::string& issuer_public_key, TimePoint now) {
  if (!Verify(issuer_public_key, token.SignedPayload(), token.signature)) {
    return Status::PermissionDenied("capability token: bad signature");
  }
  if (now < token.not_before) {
    return Status::PermissionDenied("capability token not yet valid");
  }
  if (now > token.not_after) {
    return Status::PermissionDenied("capability token expired");
  }
  return Status::Ok();
}

TokenAuthority::TokenAuthority(std::string issuer, Rng& rng)
    : issuer_(std::move(issuer)), keys_(GenerateKeyPair(rng)) {}

CapabilityToken TokenAuthority::Mint(std::string principal,
                                     std::string resource,
                                     const std::set<std::string>& actions,
                                     TimePoint not_before, TimePoint not_after,
                                     std::uint64_t generation) const {
  CapabilityToken token;
  token.principal = std::move(principal);
  token.resource = std::move(resource);
  token.actions.assign(actions.begin(), actions.end());  // set: sorted
  token.not_before = not_before;
  token.not_after = not_after;
  token.generation = generation;
  token.issuer = issuer_;
  token.signature = Sign(keys_.private_key, token.SignedPayload());
  return token;
}

Status TokenAuthority::Verify(const CapabilityToken& token,
                              TimePoint now) const {
  if (token.issuer != issuer_) {
    return Status::PermissionDenied("capability token from foreign issuer: " +
                                    token.issuer);
  }
  return VerifyToken(token, keys_.public_key, now);
}

}  // namespace jamm::security
