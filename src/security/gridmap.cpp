#include "security/gridmap.hpp"

#include "common/strings.hpp"

namespace jamm::security {

Result<GridMap> GridMap::Parse(std::string_view text) {
  GridMap map;
  int line_no = 0;
  for (const auto& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = TrimView(raw);
    if (line.empty() || line[0] == '#') continue;
    // Subject is quoted (it contains spaces); local user follows.
    if (line[0] != '"') {
      return Status::ParseError("gridmap line " + std::to_string(line_no) +
                                ": subject must be quoted");
    }
    const std::size_t close = line.find('"', 1);
    if (close == std::string_view::npos) {
      return Status::ParseError("gridmap line " + std::to_string(line_no) +
                                ": unterminated subject");
    }
    std::string subject(line.substr(1, close - 1));
    std::string user = Trim(line.substr(close + 1));
    if (subject.empty() || user.empty()) {
      return Status::ParseError("gridmap line " + std::to_string(line_no) +
                                ": empty subject or user");
    }
    map.Add(std::move(subject), std::move(user));
  }
  return map;
}

void GridMap::Add(std::string subject, std::string local_user) {
  entries_[std::move(subject)] = std::move(local_user);
}

Result<std::string> GridMap::MapSubject(const std::string& subject) const {
  auto it = entries_.find(subject);
  if (it == entries_.end()) {
    return Status::NotFound("no gridmap entry for " + subject);
  }
  return it->second;
}

}  // namespace jamm::security
