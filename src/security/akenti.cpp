#include "security/akenti.hpp"

#include "common/strings.hpp"

namespace jamm::security {

void PolicyEngine::AddUseCondition(const std::string& resource,
                                   UseCondition condition) {
  conditions_[resource].push_back(std::move(condition));
}

std::set<std::string> PolicyEngine::AllowedActions(
    const std::string& resource, const Certificate& identity,
    const std::vector<Certificate>& attributes) const {
  std::set<std::string> granted;
  auto it = conditions_.find(resource);
  if (it == conditions_.end()) return granted;
  for (const auto& cond : it->second) {
    if (!cond.subject_glob.empty() &&
        !GlobMatch(cond.subject_glob, identity.subject)) {
      continue;
    }
    if (!cond.required_attr.empty()) {
      bool satisfied = false;
      for (const auto& attr_cert : attributes) {
        if (attr_cert.subject != identity.subject) continue;
        auto attr = attr_cert.attributes.find(cond.required_attr);
        if (attr != attr_cert.attributes.end() &&
            attr->second == cond.required_value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) continue;
    }
    granted.insert(cond.actions.begin(), cond.actions.end());
  }
  return granted;
}

Authorizer::Authorizer(PolicyEngine& policy,
                       std::vector<Certificate> trusted_roots,
                       const Clock& clock)
    : policy_(policy), trusted_roots_(std::move(trusted_roots)), clock_(clock) {}

Result<std::string> Authorizer::Authenticate(
    const Certificate& identity,
    const std::vector<Certificate>& attribute_certs) {
  const TimePoint now = clock_.Now();
  JAMM_RETURN_IF_ERROR(VerifyCertificate(identity, trusted_roots_, now));
  Session session;
  session.identity = identity;
  // Only verified attribute certificates about this subject count.
  for (const auto& attr : attribute_certs) {
    if (attr.subject == identity.subject &&
        VerifyCertificate(attr, trusted_roots_, now).ok()) {
      session.attributes.push_back(attr);
    }
  }
  sessions_[identity.subject] = std::move(session);
  return identity.subject;
}

std::set<std::string> Authorizer::AllowedActions(
    const std::string& resource, const std::string& principal) const {
  auto it = sessions_.find(principal);
  if (it == sessions_.end()) return {};
  return policy_.AllowedActions(resource, it->second.identity,
                                it->second.attributes);
}

bool Authorizer::Check(const std::string& resource, const std::string& action,
                       const std::string& principal) const {
  return AllowedActions(resource, principal).count(action) > 0;
}

Result<std::string> Authorizer::LocalUser(const std::string& principal) const {
  if (!has_gridmap_) return Status::NotFound("no gridmap configured");
  return gridmap_.MapSubject(principal);
}

gateway::EventGateway::AccessChecker Authorizer::GatewayChecker(
    const std::string& resource) const {
  return [this, resource](gateway::Action act, const std::string& principal) {
    const char* name = nullptr;
    switch (act) {
      case gateway::Action::kSubscribe: name = action::kSubscribe; break;
      case gateway::Action::kQuery: name = action::kQuery; break;
      case gateway::Action::kSummary: name = action::kSummary; break;
      case gateway::Action::kStartSensor: name = action::kStartSensor; break;
    }
    return Check(resource, name, principal);
  };
}

directory::DirectoryServer::AccessChecker Authorizer::DirectoryChecker(
    const std::string& resource) const {
  return [this, resource](directory::Operation op, const directory::Dn&,
                          const std::string& principal) {
    switch (op) {
      case directory::Operation::kRead:
        return Check(resource, action::kLookup, principal);
      case directory::Operation::kWrite:
        return Check(resource, action::kPublish, principal);
      case directory::Operation::kBind:
        return true;  // binding is how you become a principal
    }
    return false;
  };
}

}  // namespace jamm::security
