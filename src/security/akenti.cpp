#include "security/akenti.hpp"

#include "common/strings.hpp"
#include "rpc/wire.hpp"
#include "security/secure_channel.hpp"
#include "telemetry/metrics.hpp"

namespace jamm::security {
namespace {

/// Signing context for the gw.auth proof-of-possession line: binds the
/// signature to this protocol so a certificate's issuance signature can
/// never be replayed as an authentication proof.
constexpr char kAuthProofContext[] = "\ngw.auth";

struct SecurityTelemetry {
  telemetry::Counter& grants;          // full-evaluation allows
  telemetry::Counter& denies;          // full-evaluation denies
  telemetry::Counter& cache_hits;      // Check() answered from the cache
  telemetry::Counter& token_mints;
  telemetry::Counter& token_verifies;  // successful AdoptToken validations
  telemetry::Counter& token_expired;
  telemetry::Counter& policy_reloads;
};

SecurityTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static SecurityTelemetry t{m.counter("security.grants"),
                             m.counter("security.denies"),
                             m.counter("security.cache_hits"),
                             m.counter("security.token_mints"),
                             m.counter("security.token_verifies"),
                             m.counter("security.token_expired"),
                             m.counter("security.policy_reloads")};
  return t;
}

std::string TokenSessionKey(const std::string& principal,
                            const std::string& resource) {
  return principal + '\x1f' + resource;
}

}  // namespace

void PolicyEngine::AddUseCondition(const std::string& resource,
                                   UseCondition condition) {
  conditions_[resource].push_back(std::move(condition));
}

void PolicyEngine::SetUseConditions(const std::string& resource,
                                    std::vector<UseCondition> conditions) {
  if (conditions.empty()) {
    conditions_.erase(resource);
  } else {
    conditions_[resource] = std::move(conditions);
  }
}

std::set<std::string> PolicyEngine::AllowedActions(
    const std::string& resource, const Certificate& identity,
    const std::vector<Certificate>& attributes) const {
  std::set<std::string> granted;
  auto it = conditions_.find(resource);
  if (it == conditions_.end()) return granted;
  for (const auto& cond : it->second) {
    if (!cond.subject_glob.empty() &&
        !GlobMatch(cond.subject_glob, identity.subject)) {
      continue;
    }
    if (!cond.required_attr.empty()) {
      bool satisfied = false;
      for (const auto& attr_cert : attributes) {
        if (attr_cert.subject != identity.subject) continue;
        auto attr = attr_cert.attributes.find(cond.required_attr);
        if (attr != attr_cert.attributes.end() &&
            attr->second == cond.required_value) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) continue;
    }
    granted.insert(cond.actions.begin(), cond.actions.end());
  }
  return granted;
}

std::string MakeCertAuthPayload(const Certificate& identity,
                                const std::string& private_key,
                                const std::vector<Certificate>& attrs) {
  std::vector<std::string> parts;
  parts.push_back(SerializeCertificate(identity));
  parts.push_back(
      Sign(private_key, identity.SignedPayload() + kAuthProofContext));
  for (const auto& attr : attrs) parts.push_back(SerializeCertificate(attr));
  return std::string(gateway::kAuthCertPrefix) + rpc::EncodeStrings(parts);
}

std::string MakeTokenAuthPayload(const CapabilityToken& token) {
  return std::string(gateway::kAuthTokenPrefix) + EncodeToken(token);
}

Authorizer::Authorizer(PolicyEngine& policy,
                       std::vector<Certificate> trusted_roots,
                       const Clock& clock)
    : policy_(policy), trusted_roots_(std::move(trusted_roots)), clock_(clock) {}

Result<std::string> Authorizer::Authenticate(
    const Certificate& identity,
    const std::vector<Certificate>& attribute_certs) {
  const TimePoint now = clock_.Now();
  JAMM_RETURN_IF_ERROR(VerifyCertificate(identity, trusted_roots_, now));
  Session session;
  session.identity = identity;
  // Only verified attribute certificates about this subject count.
  for (const auto& attr : attribute_certs) {
    if (attr.subject == identity.subject &&
        VerifyCertificate(attr, trusted_roots_, now).ok()) {
      session.attributes.push_back(attr);
    }
  }
  bool reauth = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    reauth = sessions_.count(identity.subject) > 0;
    sessions_[identity.subject] = std::move(session);
  }
  // A re-authentication may carry a different attribute set; cached
  // verdicts for the old session must not survive it. Fresh principals
  // cannot have cached entries (no-session denials are never cached).
  if (reauth && cache_) cache_->BumpGeneration();
  return identity.subject;
}

std::set<std::string> Authorizer::AllowedActions(
    const std::string& resource, const std::string& principal) const {
  std::set<std::string> granted;
  const TimePoint now = clock_.Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (auto ts = token_sessions_.find(TokenSessionKey(principal, resource));
      ts != token_sessions_.end() && now <= ts->second.not_after) {
    granted = ts->second.actions;
  }
  if (auto it = sessions_.find(principal); it != sessions_.end()) {
    auto policy = policy_.AllowedActions(resource, it->second.identity,
                                         it->second.attributes);
    granted.insert(policy.begin(), policy.end());
  }
  return granted;
}

void Authorizer::EmitAudit(const char* event, std::string_view lvl,
                           const std::string& principal,
                           const std::string& resource,
                           const std::string& action,
                           const std::string& detail) const {
  if (!audit_sink_) return;
  ulm::Record rec(clock_.Now(), "", "security", std::string(lvl), event);
  rec.SetField("PRINCIPAL", principal.empty() ? "anonymous" : principal);
  if (!resource.empty()) rec.SetField("RESOURCE", resource);
  if (!action.empty()) rec.SetField("ACTION", action);
  if (!detail.empty()) rec.SetField("DETAIL", detail);
  audit_sink_(rec);
}

bool Authorizer::EvaluateAndAudit(const std::string& resource,
                                  const std::string& action,
                                  const std::string& principal) const {
  const TimePoint now = clock_.Now();
  bool allowed = false;
  bool cacheable = false;       // only cert-session policy verdicts
  bool token_answered = false;  // verdict came from a live token
  bool token_expired = false;
  std::uint64_t verdict_generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Generation captured under the same lock the policy is read under:
    // PolicyReloaded(mutate) edits the policy while holding mu_ and bumps
    // the generation after releasing it, so a verdict computed against
    // the pre-reload policy is always stamped with the pre-reload
    // generation — the bump then invalidates it before it can be honored.
    if (cache_) verdict_generation = cache_->generation();
    auto ts = token_sessions_.find(TokenSessionKey(principal, resource));
    if (ts != token_sessions_.end()) {
      if (now > ts->second.not_after) {
        // Lazy expiry: the dead grant is dropped and the check falls
        // through to any certificate session.
        token_sessions_.erase(ts);
        token_expired = true;
      } else {
        allowed = ts->second.actions.count(action) > 0;
        token_answered = true;
      }
    }
    if (!token_answered) {
      auto it = sessions_.find(principal);
      if (it != sessions_.end()) {
        cacheable = true;  // the verdict depends only on session + policy
        allowed = policy_
                      .AllowedActions(resource, it->second.identity,
                                      it->second.attributes)
                      .count(action) > 0;
      }
    }
  }
  // Token verdicts are time-bound and must never enter the cache: a
  // cached allow would outlive the token's not_after.
  if (cacheable && cache_) {
    cache_->Insert(principal, resource, action, allowed, verdict_generation);
  }
  // Audits fire outside the lock: a sink that publishes into a gateway
  // whose access checker calls back into this Authorizer must not
  // deadlock (mu_ is not recursive).
  auto& tm = Instruments();
  if (token_expired) {
    tm.token_expired.Increment();
    EmitAudit(audit::kTokenExpired, ulm::level::kSecurity, principal, resource,
              action, "token session expired");
  }
  if (allowed) {
    tm.grants.Increment();
    EmitAudit(audit::kGrant, ulm::level::kSecurity, principal, resource,
              action, token_answered ? "token" : "policy");
  } else {
    tm.denies.Increment();
    EmitAudit(audit::kDeny, ulm::level::kWarning, principal, resource, action,
              token_answered ? "token lacks action"
                             : (cacheable ? "policy" : "no session"));
  }
  return allowed;
}

bool Authorizer::Check(const std::string& resource, const std::string& action,
                       const std::string& principal) const {
  if (cache_) {
    if (auto hit = cache_->Lookup(principal, resource, action)) {
      Instruments().cache_hits.Increment();
      return *hit;
    }
  }
  return EvaluateAndAudit(resource, action, principal);
}

void Authorizer::SetGridMap(GridMap map) {
  std::lock_guard<std::mutex> lock(mu_);
  gridmap_ = std::move(map);
  has_gridmap_ = true;
}

Result<std::string> Authorizer::LocalUser(const std::string& principal) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!has_gridmap_) return Status::NotFound("no gridmap configured");
  return gridmap_.MapSubject(principal);
}

void Authorizer::EnableTokens(TokenAuthority authority) {
  token_authority_.emplace(std::move(authority));
}

Result<CapabilityToken> Authorizer::MintToken(const std::string& resource,
                                              const std::string& principal,
                                              Duration ttl) {
  if (!token_authority_) {
    return Status::Unimplemented("authorizer has no token authority");
  }
  const TimePoint now = clock_.Now();
  std::set<std::string> actions;
  bool have_session = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(principal);
    if (it != sessions_.end()) {
      have_session = true;
      actions = policy_.AllowedActions(resource, it->second.identity,
                                       it->second.attributes);
    }
  }
  if (!have_session) {
    Instruments().denies.Increment();
    EmitAudit(audit::kDeny, ulm::level::kWarning, principal, resource, "",
              "token mint without a session");
    return Status::PermissionDenied("no session for " + principal);
  }
  if (actions.empty()) {
    Instruments().denies.Increment();
    EmitAudit(audit::kDeny, ulm::level::kWarning, principal, resource, "",
              "policy grants no actions");
    return Status::PermissionDenied(principal + " has no actions on " +
                                    resource);
  }
  CapabilityToken token = token_authority_->Mint(
      principal, resource, actions, now, now + ttl,
      cache_ ? cache_->generation() : 0);
  Instruments().token_mints.Increment();
  EmitAudit(audit::kTokenMint, ulm::level::kSecurity, principal, resource,
            Join({actions.begin(), actions.end()}, ","),
            "ttl=" + std::to_string(ttl));
  return token;
}

Result<std::string> Authorizer::AdoptToken(const CapabilityToken& token) {
  if (!token_authority_) {
    return Status::Unimplemented("authorizer has no token authority");
  }
  const TimePoint now = clock_.Now();
  Status verdict = token_authority_->Verify(token, now);
  if (!verdict.ok()) {
    auto& tm = Instruments();
    // Expired-vs-forged matters for accounting: an expired token is
    // routine (re-authenticate), a bad signature is an attack signal.
    if (now > token.not_after &&
        token_authority_->Verify(token, token.not_after).ok()) {
      tm.token_expired.Increment();
      EmitAudit(audit::kTokenExpired, ulm::level::kSecurity, token.principal,
                token.resource, "", "presented after not_after");
    } else {
      tm.denies.Increment();
      EmitAudit(audit::kDeny, ulm::level::kWarning, token.principal,
                token.resource, "", verdict.ToString());
    }
    return verdict;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    token_sessions_[TokenSessionKey(token.principal, token.resource)] =
        TokenSession{{token.actions.begin(), token.actions.end()},
                     token.not_after};
  }
  auto& tm = Instruments();
  tm.token_verifies.Increment();
  tm.grants.Increment();
  EmitAudit(audit::kGrant, ulm::level::kSecurity, token.principal,
            token.resource, Join(token.actions, ","), "token adopted");
  return token.principal;
}

void Authorizer::EnableDecisionCache(DecisionCache::Options options) {
  cache_ = std::make_unique<DecisionCache>(options);
}

void Authorizer::PolicyReloaded() {
  if (cache_) cache_->BumpGeneration();
  Instruments().policy_reloads.Increment();
  EmitAudit(audit::kPolicyReload, ulm::level::kSecurity, "", "", "",
            cache_ ? "generation=" + std::to_string(cache_->generation())
                   : "no cache");
}

void Authorizer::PolicyReloaded(
    const std::function<void(PolicyEngine&)>& mutate) {
  {
    // Evaluations read the policy under mu_, so an edit applied here is
    // atomic with respect to every racing Check()/MintToken().
    std::lock_guard<std::mutex> lock(mu_);
    mutate(policy_);
  }
  PolicyReloaded();
}

gateway::EventGateway::AccessChecker Authorizer::GatewayChecker(
    const std::string& resource) const {
  return [this, resource](gateway::Action act, const std::string& principal) {
    const char* name = nullptr;
    switch (act) {
      case gateway::Action::kSubscribe: name = action::kSubscribe; break;
      case gateway::Action::kQuery: name = action::kQuery; break;
      case gateway::Action::kSummary: name = action::kSummary; break;
      case gateway::Action::kStartSensor: name = action::kStartSensor; break;
    }
    return Check(resource, name, principal);
  };
}

directory::DirectoryServer::AccessChecker Authorizer::DirectoryChecker(
    const std::string& resource) const {
  return [this, resource](directory::Operation op, const directory::Dn&,
                          const std::string& principal) {
    switch (op) {
      case directory::Operation::kRead:
        return Check(resource, action::kLookup, principal);
      case directory::Operation::kWrite:
        return Check(resource, action::kPublish, principal);
      case directory::Operation::kBind:
        return true;  // binding is how you become a principal
    }
    return false;
  };
}

gateway::GatewayService::Authenticator Authorizer::GatewayAuthenticator(
    const std::string& resource, Duration token_ttl) {
  return [this, resource, token_ttl](const std::string& payload,
                                     const std::string& peer)
             -> Result<gateway::AuthResult> {
    (void)peer;  // transport identity; the payload carries the proof
    if (payload.rfind(gateway::kAuthCertPrefix, 0) == 0) {
      auto parts = rpc::DecodeStrings(
          std::string_view(payload).substr(sizeof(gateway::kAuthCertPrefix) - 1));
      if (!parts.ok() || parts->size() < 2) {
        return Status::ParseError("malformed cert auth payload");
      }
      auto identity = ParseCertificate((*parts)[0]);
      if (!identity.ok()) return identity.status();
      // Proof of possession: holding the certificate is public knowledge,
      // holding its private key is not.
      if (!Verify(identity->public_key,
                  identity->SignedPayload() + kAuthProofContext,
                  (*parts)[1])) {
        Instruments().denies.Increment();
        EmitAudit(audit::kDeny, ulm::level::kWarning, identity->subject,
                  resource, "", "failed proof of key possession");
        return Status::PermissionDenied("failed proof of key possession");
      }
      std::vector<Certificate> attrs;
      for (std::size_t i = 2; i < parts->size(); ++i) {
        auto attr = ParseCertificate((*parts)[i]);
        if (attr.ok()) attrs.push_back(std::move(*attr));
      }
      auto principal = Authenticate(*identity, attrs);
      if (!principal.ok()) {
        Instruments().denies.Increment();
        EmitAudit(audit::kDeny, ulm::level::kWarning, identity->subject,
                  resource, "", principal.status().ToString());
        return principal.status();
      }
      auto token = MintToken(resource, *principal, token_ttl);
      if (!token.ok()) return token.status();
      return gateway::AuthResult{*principal, EncodeToken(*token)};
    }
    if (payload.rfind(gateway::kAuthTokenPrefix, 0) == 0) {
      auto token = DecodeToken(std::string_view(payload).substr(
          sizeof(gateway::kAuthTokenPrefix) - 1));
      if (!token.ok()) return token.status();
      // A token is scoped to ONE resource: a credential minted for a
      // different gateway must not establish an identity on this one,
      // however valid its signature.
      if (token->resource != resource) {
        Instruments().denies.Increment();
        EmitAudit(audit::kDeny, ulm::level::kWarning, token->principal,
                  resource, "", "token scoped to " + token->resource);
        return Status::PermissionDenied("token scoped to resource " +
                                        token->resource);
      }
      auto principal = AdoptToken(*token);
      if (!principal.ok()) return principal.status();
      // Echo the same token back: the client's recorded credential stays
      // valid for the next reconnect (until the TTL runs out).
      return gateway::AuthResult{*principal, EncodeToken(*token)};
    }
    // Legacy plain-principal line: refused outright. A bare name proves
    // nothing — DNs are public, so honoring one for a principal with a
    // live session would let ANY peer assume that identity the moment it
    // authenticates anywhere else.
    Instruments().denies.Increment();
    EmitAudit(audit::kDeny, ulm::level::kWarning, payload, resource, "",
              "unauthenticated principal line");
    return Status::PermissionDenied("principal " + payload +
                                    " presented no credential");
  };
}

std::function<Status(const std::string&, bool, const std::string&)>
Authorizer::ManagerControlChecker(const std::string& resource) const {
  return [this, resource](const std::string& sensor, bool start,
                          const std::string& principal) {
    (void)start;  // start and stop are the same privilege in the paper
    if (Check(resource, action::kStartSensor, principal)) return Status::Ok();
    return Status::PermissionDenied(
        (principal.empty() ? std::string("anonymous") : principal) +
        " may not control sensor " + sensor);
  };
}

}  // namespace jamm::security
