// Akenti-style policy engine and the single authorization interface
// (paper §7.1): "Akenti provides a way for the resource stakeholders to
// remotely determine the authorization for resource use based on
// components of the users distinguished name or attribute certificates...
// A wrapper to the LDAP server and the gateway could both call the same
// authorization interface with the user's identity and the name of the
// resource the user wants to access. This authorization interface could
// return a list of allowed actions, or simply deny access if the user is
// unauthorized."
//
// ISSUE 10 makes the interface production-fast and observable:
//   * capability tokens (token.hpp) minted once at auth time seal the
//     full evaluation into a signed bearer credential — honored until
//     expiry even across policy reloads (revocation = short TTL);
//   * a sharded decision cache (decision_cache.hpp) memoizes full Akenti
//     evaluations per (principal × resource × action), invalidated by a
//     generation bump on PolicyReloaded();
//   * every full-evaluation verdict and token event is mirrored to an
//     audit sink as a `sec.*` ULM record (cache hits are counted in
//     telemetry but not audited — that is the point of the cache).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "directory/server.hpp"
#include "gateway/gateway.hpp"
#include "gateway/service.hpp"
#include "security/certificate.hpp"
#include "security/decision_cache.hpp"
#include "security/gridmap.hpp"
#include "security/token.hpp"
#include "ulm/record.hpp"

namespace jamm::security {

/// A stakeholder's use-condition: requesters matching the constraint are
/// granted `actions` on the resource. Conditions are additive (union of
/// granted actions across all satisfied conditions).
struct UseCondition {
  std::vector<std::string> actions;  // e.g. {"subscribe", "query"}
  /// Constraint on the identity's distinguished name ("" = any subject).
  std::string subject_glob;
  /// Required attribute asserted by a verified attribute certificate
  /// ("" = no attribute requirement).
  std::string required_attr;
  std::string required_value;
};

/// Canonical action names used by the adapters.
namespace action {
inline constexpr char kSubscribe[] = "subscribe";
inline constexpr char kQuery[] = "query";
inline constexpr char kSummary[] = "summary";
inline constexpr char kStartSensor[] = "start-sensor";
inline constexpr char kLookup[] = "lookup";
inline constexpr char kPublish[] = "publish";
}  // namespace action

/// Audit event names (`sec.*`, lowercase so they cannot match
/// sensor-event globs). Fields: PRINCIPAL, RESOURCE, ACTION, DETAIL.
namespace audit {
inline constexpr char kGrant[] = "sec.grant";
inline constexpr char kDeny[] = "sec.deny";
inline constexpr char kTokenMint[] = "sec.token.mint";
inline constexpr char kTokenExpired[] = "sec.token.expired";
inline constexpr char kPolicyReload[] = "sec.policy.reload";
}  // namespace audit

class PolicyEngine {
 public:
  void AddUseCondition(const std::string& resource, UseCondition condition);

  /// Replace every use condition on `resource` — what a stakeholder's
  /// policy reload does (the condition set is re-read, not appended to).
  /// An empty vector revokes the resource entirely. Racing evaluators
  /// must be excluded by the caller; Authorizer::PolicyReloaded(mutator)
  /// does that for you.
  void SetUseConditions(const std::string& resource,
                        std::vector<UseCondition> conditions);

  /// Union of actions granted to `identity` (with supporting verified
  /// `attributes`) on `resource`.
  std::set<std::string> AllowedActions(
      const std::string& resource, const Certificate& identity,
      const std::vector<Certificate>& attributes) const;

 private:
  std::map<std::string, std::vector<UseCondition>> conditions_;
};

/// Builds the wire payload a client sends as its `gw.auth` line when
/// authenticating with certificates: the identity cert, a
/// proof-of-possession signature, and any attribute certs.
std::string MakeCertAuthPayload(const Certificate& identity,
                                const std::string& private_key,
                                const std::vector<Certificate>& attrs = {});
/// The `gw.auth` line for resuming with a previously minted token.
std::string MakeTokenAuthPayload(const CapabilityToken& token);

/// The shared authorization interface. Principals authenticate once by
/// presenting certificates (over the secure channel); each access point
/// (gateway, directory, manager) then asks the same object whether an
/// action is allowed.
///
/// Thread-safe: sessions and token sessions are mutex-guarded, the
/// decision cache is internally sharded, and audit records are emitted
/// outside all locks (so a sink publishing back into a gateway whose
/// checker calls this Authorizer cannot deadlock).
class Authorizer {
 public:
  Authorizer(PolicyEngine& policy, std::vector<Certificate> trusted_roots,
             const Clock& clock);

  /// Verify the identity (and any attribute certificates) and register
  /// the session. The returned principal token (the subject DN) is what
  /// callers pass to gateways/directories. Re-authenticating an existing
  /// principal bumps the decision-cache generation (its attribute set may
  /// have changed).
  Result<std::string> Authenticate(
      const Certificate& identity,
      const std::vector<Certificate>& attribute_certs = {});

  /// The paper's "return a list of allowed actions": the policy verdict
  /// for a certificate session, unioned with any live token session's
  /// granted set.
  std::set<std::string> AllowedActions(const std::string& resource,
                                       const std::string& principal) const;

  bool Check(const std::string& resource, const std::string& action,
             const std::string& principal) const;

  /// Optional gridmap: maps authenticated subjects to local accounts.
  void SetGridMap(GridMap map);
  Result<std::string> LocalUser(const std::string& principal) const;

  // ----------------------------------------------------- capability tokens

  /// Enable token minting/verification under this authority (ISSUE 10).
  void EnableTokens(TokenAuthority authority);
  const TokenAuthority* token_authority() const {
    return token_authority_ ? &*token_authority_ : nullptr;
  }

  /// Seal the principal's full evaluation on `resource` into a signed
  /// token valid for `ttl` from now (inclusive at both edges). Requires a
  /// certificate session; denies (with a sec.deny audit) when the policy
  /// grants no actions at all.
  Result<CapabilityToken> MintToken(const std::string& resource,
                                    const std::string& principal,
                                    Duration ttl);

  /// Verify a presented token and register it as a token session: Check()
  /// then answers from the token's sealed action set (never cached — the
  /// verdict is time-bound) until not_after passes. Returns the principal.
  Result<std::string> AdoptToken(const CapabilityToken& token);

  // ------------------------------------------------------- decision cache

  /// Memoize full Akenti evaluations (ISSUE 10).
  void EnableDecisionCache(DecisionCache::Options options = {});
  const DecisionCache* decision_cache() const { return cache_.get(); }

  /// Stakeholders changed the policy: bump the cache generation (O(1)
  /// invalidation) and audit. Live tokens are deliberately NOT revoked —
  /// they expire on their own TTL.
  void PolicyReloaded();

  /// Reload with an in-flight edit: `mutate` runs against the policy
  /// under the session mutex, so evaluations racing the reload see either
  /// the old or the new condition set, never a torn one. Then the usual
  /// generation bump + audit.
  void PolicyReloaded(const std::function<void(PolicyEngine&)>& mutate);

  // --------------------------------------------------------------- audit

  using AuditSink = std::function<void(const ulm::Record&)>;
  /// Where sec.* audit records go — typically the host gateway's Publish,
  /// so audits ride the normal ULM pipeline to subscribers/archives.
  void SetAuditSink(AuditSink sink) { audit_sink_ = std::move(sink); }

  // ----------------------------------------------------------- adapters

  /// Access checker for an EventGateway guarding `resource`.
  gateway::EventGateway::AccessChecker GatewayChecker(
      const std::string& resource) const;

  /// Access checker for a DirectoryServer guarding `resource`.
  directory::DirectoryServer::AccessChecker DirectoryChecker(
      const std::string& resource) const;

  /// `gw.auth` handshake handler for a GatewayService fronting `resource`
  /// (ISSUE 10). Accepts two payload forms:
  ///   "cert\n" + bundle  — authenticate certificates, mint a token with
  ///                        `token_ttl`, return it in the gw.ok payload;
  ///   "token\n" + token  — verify + adopt a previously minted token
  ///                        (refused unless scoped to `resource`).
  /// A legacy plain-principal line is always refused: a bare name proves
  /// nothing, and DNs are public — honoring one for a principal with a
  /// live session would let any peer assume that identity.
  gateway::GatewayService::Authenticator GatewayAuthenticator(
      const std::string& resource, Duration token_ttl = 30 * kSecond);

  /// Authorization hook for a SensorManager relaying gateway-originated
  /// start/stop requests (checks `start-sensor` on `resource`).
  std::function<Status(const std::string& sensor, bool start,
                       const std::string& principal)>
  ManagerControlChecker(const std::string& resource) const;

 private:
  struct Session {
    Certificate identity;
    std::vector<Certificate> attributes;
  };
  struct TokenSession {
    std::set<std::string> actions;
    TimePoint not_after = 0;
  };

  /// Full evaluation + cache fill + audit; the slow path behind Check().
  bool EvaluateAndAudit(const std::string& resource, const std::string& action,
                        const std::string& principal) const;
  void EmitAudit(const char* event, std::string_view level,
                 const std::string& principal, const std::string& resource,
                 const std::string& action, const std::string& detail) const;

  PolicyEngine& policy_;
  std::vector<Certificate> trusted_roots_;
  const Clock& clock_;
  mutable std::mutex mu_;  // guards sessions_, token_sessions_, gridmap_
  std::map<std::string, Session> sessions_;  // principal → session
  /// principal \x1f resource → live token grant.
  mutable std::map<std::string, TokenSession> token_sessions_;
  GridMap gridmap_;
  bool has_gridmap_ = false;
  std::optional<TokenAuthority> token_authority_;
  std::unique_ptr<DecisionCache> cache_;
  AuditSink audit_sink_;
};

}  // namespace jamm::security
