// Akenti-style policy engine and the single authorization interface
// (paper §7.1): "Akenti provides a way for the resource stakeholders to
// remotely determine the authorization for resource use based on
// components of the users distinguished name or attribute certificates...
// A wrapper to the LDAP server and the gateway could both call the same
// authorization interface with the user's identity and the name of the
// resource the user wants to access. This authorization interface could
// return a list of allowed actions, or simply deny access if the user is
// unauthorized."
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "directory/server.hpp"
#include "gateway/gateway.hpp"
#include "security/certificate.hpp"
#include "security/gridmap.hpp"

namespace jamm::security {

/// A stakeholder's use-condition: requesters matching the constraint are
/// granted `actions` on the resource. Conditions are additive (union of
/// granted actions across all satisfied conditions).
struct UseCondition {
  std::vector<std::string> actions;  // e.g. {"subscribe", "query"}
  /// Constraint on the identity's distinguished name ("" = any subject).
  std::string subject_glob;
  /// Required attribute asserted by a verified attribute certificate
  /// ("" = no attribute requirement).
  std::string required_attr;
  std::string required_value;
};

/// Canonical action names used by the adapters.
namespace action {
inline constexpr char kSubscribe[] = "subscribe";
inline constexpr char kQuery[] = "query";
inline constexpr char kSummary[] = "summary";
inline constexpr char kStartSensor[] = "start-sensor";
inline constexpr char kLookup[] = "lookup";
inline constexpr char kPublish[] = "publish";
}  // namespace action

class PolicyEngine {
 public:
  void AddUseCondition(const std::string& resource, UseCondition condition);

  /// Union of actions granted to `identity` (with supporting verified
  /// `attributes`) on `resource`.
  std::set<std::string> AllowedActions(
      const std::string& resource, const Certificate& identity,
      const std::vector<Certificate>& attributes) const;

 private:
  std::map<std::string, std::vector<UseCondition>> conditions_;
};

/// The shared authorization interface. Principals authenticate once by
/// presenting certificates (over the secure channel); each access point
/// (gateway, directory, manager) then asks the same object whether an
/// action is allowed.
class Authorizer {
 public:
  Authorizer(PolicyEngine& policy, std::vector<Certificate> trusted_roots,
             const Clock& clock);

  /// Verify the identity (and any attribute certificates) and register
  /// the session. The returned principal token (the subject DN) is what
  /// callers pass to gateways/directories.
  Result<std::string> Authenticate(
      const Certificate& identity,
      const std::vector<Certificate>& attribute_certs = {});

  /// The paper's "return a list of allowed actions".
  std::set<std::string> AllowedActions(const std::string& resource,
                                       const std::string& principal) const;

  bool Check(const std::string& resource, const std::string& action,
             const std::string& principal) const;

  /// Optional gridmap: maps authenticated subjects to local accounts.
  void SetGridMap(GridMap map) { gridmap_ = std::move(map); has_gridmap_ = true; }
  Result<std::string> LocalUser(const std::string& principal) const;

  // ----------------------------------------------------------- adapters

  /// Access checker for an EventGateway guarding `resource`.
  gateway::EventGateway::AccessChecker GatewayChecker(
      const std::string& resource) const;

  /// Access checker for a DirectoryServer guarding `resource`.
  directory::DirectoryServer::AccessChecker DirectoryChecker(
      const std::string& resource) const;

 private:
  struct Session {
    Certificate identity;
    std::vector<Certificate> attributes;
  };

  PolicyEngine& policy_;
  std::vector<Certificate> trusted_roots_;
  const Clock& clock_;
  std::map<std::string, Session> sessions_;  // principal → session
  GridMap gridmap_;
  bool has_gridmap_ = false;
};

}  // namespace jamm::security
