#include "security/secure_channel.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "rpc/wire.hpp"

namespace jamm::security {

std::string SerializeCertificate(const Certificate& cert) {
  std::vector<std::string> fields;
  fields.push_back(cert.kind == Certificate::Kind::kIdentity ? "id" : "attr");
  fields.push_back(cert.subject);
  fields.push_back(cert.issuer);
  fields.push_back(cert.public_key);
  fields.push_back(std::to_string(cert.not_before));
  fields.push_back(std::to_string(cert.not_after));
  fields.push_back(cert.signature);
  for (const auto& [k, v] : cert.attributes) {
    fields.push_back(k);
    fields.push_back(v);
  }
  return rpc::EncodeStrings(fields);
}

Result<Certificate> ParseCertificate(std::string_view data) {
  auto fields = rpc::DecodeStrings(data);
  if (!fields.ok()) return fields.status();
  if (fields->size() < 7 || (fields->size() - 7) % 2 != 0) {
    return Status::ParseError("certificate: wrong field count");
  }
  Certificate cert;
  cert.kind = (*fields)[0] == "id" ? Certificate::Kind::kIdentity
                                   : Certificate::Kind::kAttribute;
  cert.subject = (*fields)[1];
  cert.issuer = (*fields)[2];
  cert.public_key = (*fields)[3];
  auto from = ParseInt((*fields)[4]);
  auto to = ParseInt((*fields)[5]);
  if (!from.ok() || !to.ok()) {
    return Status::ParseError("certificate: bad validity stamps");
  }
  cert.not_before = *from;
  cert.not_after = *to;
  cert.signature = (*fields)[6];
  for (std::size_t i = 7; i + 1 < fields->size(); i += 2) {
    cert.attributes[(*fields)[i]] = (*fields)[i + 1];
  }
  return cert;
}

SecureChannel::SecureChannel(std::unique_ptr<transport::Channel> inner,
                             SecureChannelOptions options)
    : inner_(std::move(inner)), options_(std::move(options)) {}

Status SecureChannel::Fail(Status status) {
  if (!buffered_sends_.empty()) {
    // These sends were accepted (Ok) while the handshake was pending and
    // can never be delivered now; record the loss in the sticky status so
    // it is observable instead of silent.
    status = Status(status.code(),
                    status.message() + " (" +
                        std::to_string(buffered_sends_.size()) +
                        " buffered sends dropped)");
    buffered_sends_.clear();
  }
  failed_ = status;
  inner_->Close();
  return status;
}

Status SecureChannel::StartHandshake() {
  if (!failed_.ok()) return failed_;
  if (hello_sent_ || handshake_done_) return Status::Ok();
  nonce_ = Digest(options_.local_cert.subject + "|" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  const std::string proof =
      Sign(options_.local_private_key,
           options_.local_cert.SignedPayload() + nonce_);
  Status sent = inner_->Send(
      {"tls.hello",
       rpc::EncodeStrings({SerializeCertificate(options_.local_cert), nonce_,
                           proof})});
  if (!sent.ok()) return sent;  // transport failure — not a verdict
  hello_sent_ = true;
  return Status::Ok();
}

Status SecureChannel::CompleteWithHello(const transport::Message& hello) {
  if (hello.type != "tls.hello") {
    return Fail(
        Status::PermissionDenied("peer did not start TLS-sim handshake"));
  }
  auto parts = rpc::DecodeStrings(hello.payload);
  if (!parts.ok() || parts->size() != 3) {
    return Fail(Status::ParseError("malformed tls.hello"));
  }
  auto peer_cert = ParseCertificate((*parts)[0]);
  if (!peer_cert.ok()) return Fail(peer_cert.status());
  const std::string& peer_nonce = (*parts)[1];
  const std::string& peer_proof = (*parts)[2];

  // Certificate chain: must descend from a trusted root. Date checks
  // happen at authorization time, where the verifier's clock lives.
  bool trusted = false;
  for (const auto& root : options_.trusted_roots) {
    if (root.subject == peer_cert->issuer &&
        Verify(root.public_key, peer_cert->SignedPayload(),
               peer_cert->signature)) {
      trusted = true;
      break;
    }
  }
  if (!trusted) {
    return Fail(Status::PermissionDenied(
        "peer certificate not signed by a trusted CA: " +
        peer_cert->subject));
  }
  // Proof of possession: the peer must hold the certificate's key.
  if (!Verify(peer_cert->public_key,
              peer_cert->SignedPayload() + peer_nonce, peer_proof)) {
    return Fail(
        Status::PermissionDenied("peer failed proof of key possession"));
  }
  // Manager-style allowlist.
  if (!options_.allowed_peers.empty() &&
      !options_.allowed_peers.count(peer_cert->subject)) {
    return Fail(Status::PermissionDenied("peer " + peer_cert->subject +
                                         " not in the allowed list"));
  }

  // Session key: symmetric derivation both ends compute identically.
  std::vector<std::string> material = {options_.local_cert.public_key,
                                       peer_cert->public_key, nonce_,
                                       peer_nonce};
  std::sort(material.begin(), material.end());
  session_key_ = Digest(Join(material, "|"));
  peer_subject_ = peer_cert->subject;
  handshake_done_ = true;
  return FlushBuffered();
}

Status SecureChannel::FlushBuffered() {
  while (!buffered_sends_.empty()) {
    transport::Message msg = std::move(buffered_sends_.front());
    buffered_sends_.pop_front();
    JAMM_RETURN_IF_ERROR(SendSealed(msg));
  }
  return Status::Ok();
}

Status SecureChannel::Handshake() {
  if (handshake_done_) return Status::Ok();
  if (!failed_.ok()) return failed_;
  JAMM_RETURN_IF_ERROR(StartHandshake());
  auto msg = inner_->Receive(options_.handshake_timeout);
  if (!msg.ok()) return msg.status();  // timeout is transient, not sticky
  return CompleteWithHello(*msg);
}

Status SecureChannel::SendSealed(const transport::Message& msg) {
  const std::string mac =
      Digest(session_key_ + "|" + msg.type + "|" + msg.payload);
  return inner_->Send(
      {"tls.msg", rpc::EncodeStrings({msg.type, msg.payload, mac})});
}

Status SecureChannel::Send(const transport::Message& msg) {
  if (!failed_.ok()) return failed_;
  if (!handshake_done_) {
    JAMM_RETURN_IF_ERROR(StartHandshake());
    // Opportunistic completion: the peer's hello may already be queued.
    while (!handshake_done_) {
      auto wire = inner_->TryReceive();
      if (!wire) break;
      JAMM_RETURN_IF_ERROR(CompleteWithHello(*wire));
    }
  }
  if (!handshake_done_) {
    if (buffered_sends_.size() >= kMaxBufferedSends) {
      return Status::Unavailable("secure channel: handshake pending and "
                                 "send buffer full");
    }
    buffered_sends_.push_back(msg);
    return Status::Ok();
  }
  return SendSealed(msg);
}

Result<transport::Message> SecureChannel::Unwrap(
    const transport::Message& wire) {
  if (wire.type != "tls.msg") {
    return Status::PermissionDenied("plaintext message on secure channel: " +
                                    wire.type);
  }
  auto parts = rpc::DecodeStrings(wire.payload);
  if (!parts.ok() || parts->size() != 3) {
    return Status::ParseError("malformed tls.msg");
  }
  const std::string expected =
      Digest(session_key_ + "|" + (*parts)[0] + "|" + (*parts)[1]);
  if (expected != (*parts)[2]) {
    return Status::PermissionDenied("message authentication failed");
  }
  return transport::Message{(*parts)[0], (*parts)[1]};
}

Result<transport::Message> SecureChannel::Receive(Duration timeout) {
  if (!failed_.ok()) return failed_;
  if (!handshake_done_) {
    JAMM_RETURN_IF_ERROR(StartHandshake());
    auto hello = inner_->Receive(timeout);
    if (!hello.ok()) return hello.status();
    JAMM_RETURN_IF_ERROR(CompleteWithHello(*hello));
    // The handshake consumed an unknown slice of the budget; granting the
    // data frame the full timeout again errs on the patient side.
  }
  auto wire = inner_->Receive(timeout);
  if (!wire.ok()) return wire.status();
  return Unwrap(*wire);
}

std::optional<transport::Message> SecureChannel::TryReceive() {
  if (!failed_.ok()) return std::nullopt;
  if (!handshake_done_) {
    if (!StartHandshake().ok()) return std::nullopt;
    auto hello = inner_->TryReceive();
    if (!hello) return std::nullopt;
    if (!CompleteWithHello(*hello).ok()) return std::nullopt;
  }
  auto wire = inner_->TryReceive();
  if (!wire) return std::nullopt;
  auto msg = Unwrap(*wire);
  if (!msg.ok()) return std::nullopt;  // tampered frames are dropped
  return std::move(*msg);
}

std::string SecureChannel::peer() const {
  return "tls:" + (peer_subject_.empty() ? inner_->peer() : peer_subject_);
}

Result<std::unique_ptr<transport::Channel>> SecureListener::Accept(
    Duration timeout) {
  auto inner = inner_->Accept(timeout);
  if (!inner.ok()) return inner.status();
  auto secured =
      std::make_unique<SecureChannel>(std::move(*inner), options_);
  // Server hello goes out immediately; the dialer's hello is typically
  // already queued, so the exchange often completes before first use.
  (void)secured->StartHandshake();
  return std::unique_ptr<transport::Channel>(std::move(secured));
}

ChannelDialer MakeSecureDialer(ChannelDialer inner,
                               SecureChannelOptions options) {
  return [inner = std::move(inner), options = std::move(options)]()
             -> Result<std::unique_ptr<transport::Channel>> {
    auto channel = inner();
    if (!channel.ok()) return channel.status();
    auto secured =
        std::make_unique<SecureChannel>(std::move(*channel), options);
    JAMM_RETURN_IF_ERROR(secured->StartHandshake());
    return std::unique_ptr<transport::Channel>(std::move(secured));
  };
}

}  // namespace jamm::security
