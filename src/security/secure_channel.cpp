#include "security/secure_channel.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "rpc/wire.hpp"

namespace jamm::security {
namespace {

// A nonce proving the handshake message is fresh and that the sender
// holds the certificate's private key: sig over (payload + nonce).
struct Hello {
  Certificate cert;
  std::string nonce;
  std::string proof;  // Sign(private_key, cert payload + nonce)
};

}  // namespace

std::string SerializeCertificate(const Certificate& cert) {
  std::vector<std::string> fields;
  fields.push_back(cert.kind == Certificate::Kind::kIdentity ? "id" : "attr");
  fields.push_back(cert.subject);
  fields.push_back(cert.issuer);
  fields.push_back(cert.public_key);
  fields.push_back(std::to_string(cert.not_before));
  fields.push_back(std::to_string(cert.not_after));
  fields.push_back(cert.signature);
  for (const auto& [k, v] : cert.attributes) {
    fields.push_back(k);
    fields.push_back(v);
  }
  return rpc::EncodeStrings(fields);
}

Result<Certificate> ParseCertificate(std::string_view data) {
  auto fields = rpc::DecodeStrings(data);
  if (!fields.ok()) return fields.status();
  if (fields->size() < 7 || (fields->size() - 7) % 2 != 0) {
    return Status::ParseError("certificate: wrong field count");
  }
  Certificate cert;
  cert.kind = (*fields)[0] == "id" ? Certificate::Kind::kIdentity
                                   : Certificate::Kind::kAttribute;
  cert.subject = (*fields)[1];
  cert.issuer = (*fields)[2];
  cert.public_key = (*fields)[3];
  auto from = ParseInt((*fields)[4]);
  auto to = ParseInt((*fields)[5]);
  if (!from.ok() || !to.ok()) {
    return Status::ParseError("certificate: bad validity stamps");
  }
  cert.not_before = *from;
  cert.not_after = *to;
  cert.signature = (*fields)[6];
  for (std::size_t i = 7; i + 1 < fields->size(); i += 2) {
    cert.attributes[(*fields)[i]] = (*fields)[i + 1];
  }
  return cert;
}

SecureChannel::SecureChannel(std::unique_ptr<transport::Channel> inner,
                             SecureChannelOptions options)
    : inner_(std::move(inner)), options_(std::move(options)) {}

Status SecureChannel::Handshake() {
  if (handshake_done_) return Status::Ok();

  // Send our hello.
  const std::string nonce =
      Digest(options_.local_cert.subject + "|" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  const std::string proof =
      Sign(options_.local_private_key,
           options_.local_cert.SignedPayload() + nonce);
  JAMM_RETURN_IF_ERROR(inner_->Send(
      {"tls.hello", rpc::EncodeStrings({SerializeCertificate(
                                            options_.local_cert),
                                        nonce, proof})}));

  // Receive and verify the peer's hello.
  auto msg = inner_->Receive(options_.handshake_timeout);
  if (!msg.ok()) return msg.status();
  if (msg->type != "tls.hello") {
    return Status::PermissionDenied("peer did not start TLS-sim handshake");
  }
  auto parts = rpc::DecodeStrings(msg->payload);
  if (!parts.ok() || parts->size() != 3) {
    return Status::ParseError("malformed tls.hello");
  }
  auto peer_cert = ParseCertificate((*parts)[0]);
  if (!peer_cert.ok()) return peer_cert.status();
  const std::string& peer_nonce = (*parts)[1];
  const std::string& peer_proof = (*parts)[2];

  // Certificate chain: must descend from a trusted root and be in date.
  // (Validity uses the peer cert's own window against "now" unknown here;
  // the caller's trusted roots carry the clock policy. We check issuer
  // signature; date checks happen at authorization time.)
  bool trusted = false;
  for (const auto& root : options_.trusted_roots) {
    if (root.subject == peer_cert->issuer &&
        Verify(root.public_key, peer_cert->SignedPayload(),
               peer_cert->signature)) {
      trusted = true;
      break;
    }
  }
  if (!trusted) {
    return Status::PermissionDenied("peer certificate not signed by a "
                                    "trusted CA: " + peer_cert->subject);
  }
  // Proof of possession: the peer must hold the certificate's key.
  if (!Verify(peer_cert->public_key,
              peer_cert->SignedPayload() + peer_nonce, peer_proof)) {
    return Status::PermissionDenied("peer failed proof of key possession");
  }
  // Manager-style allowlist.
  if (!options_.allowed_peers.empty() &&
      !options_.allowed_peers.count(peer_cert->subject)) {
    return Status::PermissionDenied("peer " + peer_cert->subject +
                                    " not in the allowed list");
  }

  // Session key: symmetric derivation both ends compute identically.
  std::vector<std::string> material = {options_.local_cert.public_key,
                                       peer_cert->public_key, nonce,
                                       peer_nonce};
  std::sort(material.begin(), material.end());
  session_key_ = Digest(Join(material, "|"));
  peer_subject_ = peer_cert->subject;
  handshake_done_ = true;
  return Status::Ok();
}

Status SecureChannel::Send(const transport::Message& msg) {
  if (!handshake_done_) {
    return Status::PermissionDenied("secure channel: handshake not done");
  }
  const std::string mac = Digest(session_key_ + "|" + msg.type + "|" +
                                 msg.payload);
  return inner_->Send(
      {"tls.msg", rpc::EncodeStrings({msg.type, msg.payload, mac})});
}

Result<transport::Message> SecureChannel::Unwrap(
    const transport::Message& wire) {
  if (wire.type != "tls.msg") {
    return Status::PermissionDenied("plaintext message on secure channel: " +
                                    wire.type);
  }
  auto parts = rpc::DecodeStrings(wire.payload);
  if (!parts.ok() || parts->size() != 3) {
    return Status::ParseError("malformed tls.msg");
  }
  const std::string expected =
      Digest(session_key_ + "|" + (*parts)[0] + "|" + (*parts)[1]);
  if (expected != (*parts)[2]) {
    return Status::PermissionDenied("message authentication failed");
  }
  return transport::Message{(*parts)[0], (*parts)[1]};
}

Result<transport::Message> SecureChannel::Receive(Duration timeout) {
  if (!handshake_done_) {
    return Status::PermissionDenied("secure channel: handshake not done");
  }
  auto wire = inner_->Receive(timeout);
  if (!wire.ok()) return wire.status();
  return Unwrap(*wire);
}

std::optional<transport::Message> SecureChannel::TryReceive() {
  if (!handshake_done_) return std::nullopt;
  auto wire = inner_->TryReceive();
  if (!wire) return std::nullopt;
  auto msg = Unwrap(*wire);
  if (!msg.ok()) return std::nullopt;  // tampered frames are dropped
  return std::move(*msg);
}

std::string SecureChannel::peer() const {
  return "tls:" + (peer_subject_.empty() ? inner_->peer() : peer_subject_);
}

}  // namespace jamm::security
