#include "transport/inproc.hpp"

#include "transport/ring.hpp"

namespace jamm::transport {
namespace {

// Each direction is a shared queue; Close() closes both so either side
// observes shutdown.
struct Pipe {
  explicit Pipe(std::size_t capacity) : queue(capacity) {}
  BoundedQueue<Message> queue;
};

class InProcChannel final : public Channel {
 public:
  InProcChannel(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in,
                std::string peer)
      : out_(std::move(out)), in_(std::move(in)), peer_(std::move(peer)) {}

  ~InProcChannel() override { Close(); }

  Status Send(const Message& msg) override {
    if (!out_->queue.Push(msg)) {
      return Status::Unavailable("channel closed: " + peer_);
    }
    return Status::Ok();
  }

  Result<bool> TrySend(const Message& msg) override {
    if (out_->queue.TryPush(msg)) return true;
    if (out_->queue.closed()) {
      return Status::Unavailable("channel closed: " + peer_);
    }
    return false;  // full — would block
  }

  Result<Message> Receive(Duration timeout) override {
    auto msg = in_->queue.PopFor(timeout);
    if (!msg) {
      if (in_->queue.closed()) {
        return Status::Unavailable("peer closed: " + peer_);
      }
      return Status::Timeout("no message within timeout from " + peer_);
    }
    return std::move(*msg);
  }

  std::optional<Message> TryReceive() override { return in_->queue.TryPop(); }

  void Close() override {
    out_->queue.Close();
    in_->queue.Close();
  }

  void CloseSend() override { out_->queue.Close(); }

  bool IsOpen() const override {
    // Both directions: after a peer-initiated close the INBOUND side is
    // what's closed first — checking only our outbound queue reported
    // IsOpen()==true while Receive was already failing Unavailable.
    return !out_->queue.closed() && !in_->queue.closed();
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
  std::string peer_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> MakeChannelPair(
    const std::string& name, std::size_t capacity) {
  auto a_to_b = std::make_shared<Pipe>(capacity);
  auto b_to_a = std::make_shared<Pipe>(capacity);
  auto a = std::make_unique<InProcChannel>(a_to_b, b_to_a, "inproc:" + name);
  auto b = std::make_unique<InProcChannel>(b_to_a, a_to_b, "inproc:" + name);
  return {std::move(a), std::move(b)};
}

namespace {

class InProcListener final : public Listener {
 public:
  InProcListener(std::string name,
                 std::shared_ptr<BoundedQueue<std::unique_ptr<Channel>>> pending)
      : name_(std::move(name)), pending_(std::move(pending)) {}

  ~InProcListener() override { Close(); }

  Result<std::unique_ptr<Channel>> Accept(Duration timeout) override {
    auto chan = pending_->PopFor(timeout);
    if (!chan) {
      if (pending_->closed()) {
        return Status::Unavailable("listener closed: " + name_);
      }
      return Status::Timeout("no inbound connection: " + name_);
    }
    return std::move(*chan);
  }

  void Close() override { pending_->Close(); }

  std::string address() const override { return "inproc:" + name_; }

 private:
  std::string name_;
  std::shared_ptr<BoundedQueue<std::unique_ptr<Channel>>> pending_;
};

}  // namespace

Result<std::unique_ptr<Listener>> InProcNetwork::Listen(
    const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end() && !it->second.pending->closed()) {
    return Status::AlreadyExists("endpoint already listening: " + name);
  }
  Endpoint ep;
  ep.pending = std::make_shared<BoundedQueue<std::unique_ptr<Channel>>>(256);
  endpoints_[name] = ep;
  return std::unique_ptr<Listener>(new InProcListener(name, ep.pending));
}

Result<std::unique_ptr<Channel>> InProcNetwork::Dial(const std::string& name) {
  std::shared_ptr<BoundedQueue<std::unique_ptr<Channel>>> pending;
  {
    std::lock_guard lock(mu_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end() || it->second.pending->closed()) {
      return Status::Unavailable("no listener at inproc:" + name);
    }
    pending = it->second.pending;
  }
  auto [client, server] =
      opts_.ring_channels
          ? MakeRingChannelPair(name, opts_.channel_capacity)
          : MakeChannelPair(name, opts_.channel_capacity);
  if (!pending->TryPush(std::move(server))) {
    return Status::Unavailable("listener backlog full or closed: " + name);
  }
  return std::move(client);
}

bool InProcNetwork::HasEndpoint(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = endpoints_.find(name);
  return it != endpoints_.end() && !it->second.pending->closed();
}

}  // namespace jamm::transport
