// POSIX TCP transport: the real plumbing for cross-host deployments. The
// channel frames Messages (see message.hpp) on a blocking socket; receives
// honor timeouts via poll(2). Single-threaded use per side matches the
// rest of the system; Send is additionally mutex-guarded so a logger on
// another thread can share a channel safely.
#pragma once

#include <memory>
#include <string>

#include "transport/message.hpp"

namespace jamm::transport {

class TcpListener final : public Listener {
 public:
  /// Bind and listen on 127.0.0.1:`port`; port 0 picks a free port.
  static Result<std::unique_ptr<TcpListener>> Create(std::uint16_t port = 0);

  ~TcpListener() override;

  Result<std::unique_ptr<Channel>> Accept(Duration timeout) override;
  void Close() override;
  std::string address() const override;

  std::uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  std::uint16_t port_;
};

/// Connect to host:port (numeric IPv4 or "localhost").
Result<std::unique_ptr<Channel>> TcpDial(const std::string& host,
                                         std::uint16_t port,
                                         Duration timeout = 5 * kSecond);

}  // namespace jamm::transport
