// Message transport abstraction. The paper's components talk over Java RMI;
// our C++ reproduction moves typed messages over a Channel, with two
// interchangeable implementations:
//
//   * in-process (deterministic, queue-backed) — used by tests, benches,
//     and everything driven by the discrete-event simulator;
//   * TCP (POSIX sockets) — the production plumbing, exercised by the
//     realtime_tcp example and the transport integration tests.
//
// Wire framing (TCP): u32-LE type length, type bytes, u32-LE payload
// length, payload bytes. Messages are independent frames; a stream of them
// concatenates.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace jamm::transport {

struct Message {
  std::string type;     // dispatch key, e.g. "event", "subscribe", "rpc.call"
  std::string payload;  // opaque bytes (ULM ASCII/binary, RPC args, ...)

  friend bool operator==(const Message&, const Message&) = default;
};

/// Upper bound on a single frame; protects against corrupt length prefixes.
inline constexpr std::size_t kMaxFrameBytes = 16 * 1024 * 1024;

/// Serialize/deserialize one frame (used by the TCP channel and tests).
std::string EncodeFrame(const Message& msg);
/// Decodes one frame starting at *offset, advancing it. NotFound means
/// "incomplete frame — need more bytes" (distinct from a ParseError).
Result<Message> DecodeFrame(std::string_view data, std::size_t* offset);

/// Bidirectional, ordered, reliable message channel.
class Channel {
 public:
  virtual ~Channel() = default;

  virtual Status Send(const Message& msg) = 0;

  /// Non-blocking send. Returns true if the message was accepted, false if
  /// it would block (peer's buffer full — try again later), or an error
  /// status if the channel is closed. The default falls back to the
  /// blocking Send (correct for transports without a bounded local buffer);
  /// bounded transports override it so callers like the gateway's
  /// slow-consumer queues never stall on one subscriber.
  virtual Result<bool> TrySend(const Message& msg) {
    Status status = Send(msg);
    if (!status.ok()) return status;
    return true;
  }

  /// Blocks up to `timeout`; Timeout status if nothing arrived, Unavailable
  /// if the peer closed and the buffer is drained.
  virtual Result<Message> Receive(Duration timeout) = 0;

  /// Non-blocking receive.
  virtual std::optional<Message> TryReceive() = 0;

  virtual void Close() = 0;

  /// Half-close: stop sending but keep receiving what the peer already
  /// sent (like shutdown(SHUT_WR)). The peer observes our direction
  /// closed; our inbound side drains normally. Transports without
  /// per-direction state fall back to a full Close.
  virtual void CloseSend() { Close(); }

  /// True only while BOTH directions are usable: a channel whose peer
  /// has closed (inbound drained-or-draining, sends doomed) is not open,
  /// even if our own outbound queue still accepts writes.
  virtual bool IsOpen() const = 0;

  /// Diagnostic peer name ("inproc:gateway-a", "127.0.0.1:4823").
  virtual std::string peer() const = 0;
};

/// Accepts inbound channels.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks up to `timeout` for one inbound connection.
  virtual Result<std::unique_ptr<Channel>> Accept(Duration timeout) = 0;

  virtual void Close() = 0;

  /// Dialable address ("inproc:name" or "127.0.0.1:port").
  virtual std::string address() const = 0;
};

}  // namespace jamm::transport
