// The NetLogger "remote host" destination (paper §4.4) — a LogSink that
// ships each ULM record over a transport Channel, plus the receiving-side
// helper that turns inbound messages back into records.
#pragma once

#include <memory>
#include <vector>

#include "netlogger/sinks.hpp"
#include "transport/message.hpp"

namespace jamm::transport {

/// Message type used for ULM event traffic.
inline constexpr char kEventMessageType[] = "ulm.event";
/// Message type for binary-encoded ULM event traffic.
inline constexpr char kBinaryEventMessageType[] = "ulm.event.bin";
/// Batched event traffic (ISSUE 3): the payload is a concatenation of
/// self-delimiting binary ULM records — no extra framing needed. One
/// transport Send carries a whole batch.
inline constexpr char kEventBatchMessageType[] = "gw.event.batch";

class NetSink final : public netlogger::LogSink {
 public:
  /// If `binary` the record travels in the binary ULM codec (paper §3's
  /// "binary format option for high throughput event data").
  explicit NetSink(std::shared_ptr<Channel> channel, bool binary = false)
      : channel_(std::move(channel)), binary_(binary) {}

  Status Write(const ulm::Record& rec) override;

 private:
  std::shared_ptr<Channel> channel_;
  bool binary_;
};

/// Decode an event message produced by NetSink (either encoding).
Result<ulm::Record> DecodeEventMessage(const Message& msg);

/// Decode a kEventBatchMessageType payload back into its records.
Result<std::vector<ulm::Record>> DecodeEventBatch(const Message& msg);

}  // namespace jamm::transport
