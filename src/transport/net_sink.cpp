#include "transport/net_sink.hpp"

#include "ulm/binary.hpp"

namespace jamm::transport {

Status NetSink::Write(const ulm::Record& rec) {
  Message msg;
  if (binary_) {
    msg.type = kBinaryEventMessageType;
    msg.payload = ulm::EncodeBinary(rec);
  } else {
    msg.type = kEventMessageType;
    msg.payload = rec.ToAscii();
  }
  return channel_->Send(msg);
}

Result<ulm::Record> DecodeEventMessage(const Message& msg) {
  if (msg.type == kEventMessageType) {
    return ulm::Record::FromAscii(msg.payload);
  }
  if (msg.type == kBinaryEventMessageType) {
    std::size_t offset = 0;
    return ulm::DecodeBinary(msg.payload, &offset);
  }
  return Status::InvalidArgument("not an event message: " + msg.type);
}

Result<std::vector<ulm::Record>> DecodeEventBatch(const Message& msg) {
  if (msg.type != kEventBatchMessageType) {
    return Status::InvalidArgument("not an event batch: " + msg.type);
  }
  return ulm::DecodeBinaryStream(msg.payload);
}

}  // namespace jamm::transport
