// In-process transport: queue-backed channel pairs plus a named endpoint
// registry so components "dial" each other exactly as they would over TCP.
// An InProcNetwork instance is passed around explicitly (not a global) so
// tests get isolated namespaces.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/queue.hpp"
#include "transport/message.hpp"

namespace jamm::transport {

/// A connected pair of channels; what one sends the other receives.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> MakeChannelPair(
    const std::string& name = "pair", std::size_t capacity = 4096);

class InProcNetwork {
 public:
  struct Options {
    /// Back dialed connections with lock-free MPSC ring channels
    /// (transport/ring.hpp) instead of mutex+condvar queues. Same
    /// Channel semantics; no lock per message.
    bool ring_channels = false;
    /// Per-direction channel capacity (rounded up to a power of two
    /// when ring_channels is set).
    std::size_t channel_capacity = 4096;
  };

  InProcNetwork() = default;
  explicit InProcNetwork(Options opts) : opts_(opts) {}

  /// Start accepting connections at `name` ("gateway.hostA", ...).
  Result<std::unique_ptr<Listener>> Listen(const std::string& name);

  /// Connect to a listening endpoint; Unavailable if nothing listens.
  Result<std::unique_ptr<Channel>> Dial(const std::string& name);

  bool HasEndpoint(const std::string& name) const;

 private:
  friend class InProcListener;

  struct Endpoint {
    // Pending inbound (server-side) channels awaiting Accept.
    std::shared_ptr<BoundedQueue<std::unique_ptr<Channel>>> pending;
  };

  Options opts_;
  mutable std::mutex mu_;
  std::map<std::string, Endpoint> endpoints_;
};

}  // namespace jamm::transport
