#include "transport/ring.hpp"

#include <atomic>
#include <chrono>
#include <thread>

namespace jamm::transport {
namespace {

// Backoff ladder for the blocking entry points: spin a little (cheap if
// the other side is actively draining), yield a little, then sleep in
// 50us slices so a stalled peer costs microwatts, not a core.
class Backoff {
 public:
  void Pause() {
    if (spins_ < kSpins) {
      ++spins_;
      return;
    }
    if (spins_ < kSpins + kYields) {
      ++spins_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

 private:
  static constexpr int kSpins = 64;
  static constexpr int kYields = 16;
  int spins_ = 0;
};

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Bounded MPSC ring (Vyukov's bounded MPMC queue, with the dequeue CAS
// dropped because jamm channels have exactly one consumer per end).
// Each cell carries a sequence number:
//   seq == index            → cell free, a producer may claim it
//   seq == index + 1        → cell full, the consumer may take it
//   after consume: seq = index + capacity (free for the next lap)
// The seq store is a release; the matching load an acquire — that pair
// publishes the Message payload without any lock.
class MessageRing {
 public:
  explicit MessageRing(std::size_t capacity)
      : mask_(RoundUpPow2(capacity < 2 ? 2 : capacity) - 1),
        cells_(new Cell[mask_ + 1]) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// Multi-producer. False when full or closed.
  bool TryPush(Message&& msg) {
    if (closed_.load(std::memory_order_acquire)) return false;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.msg = std::move(msg);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failed: pos was reloaded, retry at the new cursor.
      } else if (diff < 0) {
        return false;  // full — the consumer hasn't freed this lap yet
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single consumer: plain cursor load/store, no CAS.
  std::optional<Message> TryPop() {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) <
        0) {
      return std::nullopt;  // empty
    }
    Message msg = std::move(cell.msg);
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return msg;
  }

  /// Blocking push with backoff; false when closed.
  bool Push(Message msg) {
    Backoff backoff;
    while (!TryPush(std::move(msg))) {
      if (closed_.load(std::memory_order_acquire)) return false;
      backoff.Pause();
    }
    return true;
  }

  /// Pop with a deadline; nullopt on timeout or closed-and-drained.
  std::optional<Message> PopFor(Duration timeout_us) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout_us);
    Backoff backoff;
    for (;;) {
      if (auto msg = TryPop()) return msg;
      // Order matters: check closed AFTER a failed pop so messages that
      // raced in just before Close() still drain.
      if (closed_.load(std::memory_order_acquire)) return TryPop();
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      backoff.Pause();
    }
  }

  void Close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    Message msg;
  };

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  alignas(64) std::atomic<bool> closed_{false};
};

class RingChannel final : public Channel {
 public:
  RingChannel(std::shared_ptr<MessageRing> out, std::shared_ptr<MessageRing> in,
              std::string peer)
      : out_(std::move(out)), in_(std::move(in)), peer_(std::move(peer)) {}

  ~RingChannel() override { Close(); }

  Status Send(const Message& msg) override {
    if (!out_->Push(msg)) {
      return Status::Unavailable("channel closed: " + peer_);
    }
    return Status::Ok();
  }

  Result<bool> TrySend(const Message& msg) override {
    Message copy = msg;
    if (out_->TryPush(std::move(copy))) return true;
    if (out_->closed()) {
      return Status::Unavailable("channel closed: " + peer_);
    }
    return false;  // full — would block
  }

  Result<Message> Receive(Duration timeout) override {
    auto msg = in_->PopFor(timeout);
    if (!msg) {
      if (in_->closed()) {
        return Status::Unavailable("peer closed: " + peer_);
      }
      return Status::Timeout("no message within timeout from " + peer_);
    }
    return std::move(*msg);
  }

  std::optional<Message> TryReceive() override { return in_->TryPop(); }

  void Close() override {
    out_->Close();
    in_->Close();
  }

  void CloseSend() override { out_->Close(); }

  bool IsOpen() const override { return !out_->closed() && !in_->closed(); }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<MessageRing> out_;
  std::shared_ptr<MessageRing> in_;
  std::string peer_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
MakeRingChannelPair(const std::string& name, std::size_t capacity) {
  auto a_to_b = std::make_shared<MessageRing>(capacity);
  auto b_to_a = std::make_shared<MessageRing>(capacity);
  auto a = std::make_unique<RingChannel>(a_to_b, b_to_a, "ring:" + name);
  auto b = std::make_unique<RingChannel>(b_to_a, a_to_b, "ring:" + name);
  return {std::move(a), std::move(b)};
}

}  // namespace jamm::transport
