#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace jamm::transport {
namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Wait for readability/writability with a µs timeout. Returns false on
/// timeout.
bool PollFd(int fd, short events, Duration timeout) {
  pollfd pfd{fd, events, 0};
  const int ms = timeout < 0 ? -1
                             : static_cast<int>((timeout + kMillisecond - 1) /
                                                kMillisecond);
  const int rc = ::poll(&pfd, 1, ms);
  return rc > 0;
}

class TcpChannel final : public Channel {
 public:
  TcpChannel(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpChannel() override { Close(); }

  Status Send(const Message& msg) override {
    const std::string frame = EncodeFrame(msg);
    std::lock_guard lock(send_mu_);
    if (fd_ < 0) return Status::Unavailable("channel closed: " + peer_);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(ErrnoMessage("send"));
      }
      sent += static_cast<std::size_t>(n);
    }
    return Status::Ok();
  }

  Result<Message> Receive(Duration timeout) override {
    // Repeatedly: try decoding from the buffer; otherwise read more.
    while (true) {
      std::size_t offset = 0;
      auto msg = DecodeFrame(recv_buf_, &offset);
      if (msg.ok()) {
        recv_buf_.erase(0, offset);
        return msg;
      }
      if (msg.status().code() != StatusCode::kNotFound) return msg.status();
      if (fd_ < 0) return Status::Unavailable("channel closed: " + peer_);
      if (!PollFd(fd_, POLLIN, timeout)) {
        return Status::Timeout("no data within timeout from " + peer_);
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        return Status::Unavailable("peer closed: " + peer_);
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(ErrnoMessage("recv"));
      }
      recv_buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::optional<Message> TryReceive() override {
    // Drain whatever is immediately available, then decode.
    while (fd_ >= 0 && PollFd(fd_, POLLIN, 0)) {
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n <= 0) break;
      recv_buf_.append(chunk, static_cast<std::size_t>(n));
    }
    std::size_t offset = 0;
    auto msg = DecodeFrame(recv_buf_, &offset);
    if (!msg.ok()) return std::nullopt;
    recv_buf_.erase(0, offset);
    return std::move(*msg);
  }

  void Close() override {
    std::lock_guard lock(send_mu_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool IsOpen() const override { return fd_ >= 0; }

  std::string peer() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  std::string recv_buf_;
  std::mutex send_mu_;
};

std::string PeerName(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

Result<std::unique_ptr<TcpListener>> TcpListener::Create(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Unavailable(ErrnoMessage("bind"));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return Status::Unavailable(ErrnoMessage("listen"));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::Unavailable(ErrnoMessage("getsockname"));
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<Channel>> TcpListener::Accept(Duration timeout) {
  if (fd_ < 0) return Status::Unavailable("listener closed");
  if (!PollFd(fd_, POLLIN, timeout)) {
    return Status::Timeout("no inbound connection on port " +
                           std::to_string(port_));
  }
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  const int client = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  if (client < 0) return Status::Unavailable(ErrnoMessage("accept"));
  return std::unique_ptr<Channel>(new TcpChannel(client, PeerName(addr)));
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string TcpListener::address() const {
  return "127.0.0.1:" + std::to_string(port_);
}

Result<std::unique_ptr<Channel>> TcpDial(const std::string& host,
                                         std::uint16_t port,
                                         Duration timeout) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable(ErrnoMessage("socket"));
  // Non-blocking connect with poll so dial honors the timeout.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Status::Unavailable(ErrnoMessage("connect"));
  }
  if (rc < 0) {
    if (!PollFd(fd, POLLOUT, timeout)) {
      ::close(fd);
      return Status::Timeout("connect timeout to " + host + ":" +
                             std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::Unavailable("connect failed: " +
                                 std::string(std::strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  return std::unique_ptr<Channel>(
      new TcpChannel(fd, ip + ":" + std::to_string(port)));
}

}  // namespace jamm::transport
