#include "transport/message.hpp"

#include "telemetry/metrics.hpp"

namespace jamm::transport {
namespace {

// Wire-level self-telemetry: every frame either implementation (in-proc,
// TCP) moves passes through Encode/DecodeFrame, so counting here covers
// the whole transport layer.
struct TransportTelemetry {
  telemetry::Counter& frames_encoded;
  telemetry::Counter& bytes_encoded;
  telemetry::Counter& frames_decoded;
  telemetry::Counter& decode_errors;
};

TransportTelemetry& Instruments() {
  auto& m = telemetry::Metrics();
  static TransportTelemetry t{m.counter("transport.frames_encoded"),
                              m.counter("transport.bytes_encoded"),
                              m.counter("transport.frames_decoded"),
                              m.counter("transport.decode_errors")};
  return t;
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
}

bool GetU32(std::string_view data, std::size_t i, std::uint32_t& v) {
  if (i + 4 > data.size()) return false;
  v = 0;
  for (int b = 0; b < 4; ++b) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[i + b]))
         << (8 * b);
  }
  return true;
}

}  // namespace

std::string EncodeFrame(const Message& msg) {
  std::string out;
  out.reserve(8 + msg.type.size() + msg.payload.size());
  PutU32(out, static_cast<std::uint32_t>(msg.type.size()));
  out += msg.type;
  PutU32(out, static_cast<std::uint32_t>(msg.payload.size()));
  out += msg.payload;
  auto& tm = Instruments();
  tm.frames_encoded.Increment();
  tm.bytes_encoded.Add(out.size());
  return out;
}

Result<Message> DecodeFrame(std::string_view data, std::size_t* offset) {
  std::size_t i = *offset;
  std::uint32_t type_len;
  if (!GetU32(data, i, type_len)) return Status::NotFound("incomplete frame");
  if (type_len > kMaxFrameBytes) {
    Instruments().decode_errors.Increment();
    return Status::ParseError("frame type too large");
  }
  i += 4;
  if (i + type_len > data.size()) return Status::NotFound("incomplete frame");
  std::string type(data.substr(i, type_len));
  i += type_len;
  std::uint32_t payload_len;
  if (!GetU32(data, i, payload_len)) return Status::NotFound("incomplete frame");
  if (payload_len > kMaxFrameBytes) {
    Instruments().decode_errors.Increment();
    return Status::ParseError("frame payload too large");
  }
  i += 4;
  if (i + payload_len > data.size()) return Status::NotFound("incomplete frame");
  Message msg{std::move(type), std::string(data.substr(i, payload_len))};
  *offset = i + payload_len;
  Instruments().frames_decoded.Increment();
  return msg;
}

}  // namespace jamm::transport
