// Lock-free MPSC ring-buffer channel (ISSUE 7). The mutex+condvar
// BoundedQueue behind MakeChannelPair costs a lock acquisition per
// message in BOTH directions of every in-proc hop — sensor → manager →
// gateway pipelines take three of them per event. A ring channel pair
// replaces each direction with a bounded Vyukov-style ring:
//
//   * producers claim slots with one CAS on the enqueue cursor (multi-
//     producer safe, so many sensor threads can share one channel);
//   * the single consumer pops with plain loads/stores — no CAS, no
//     lock, no syscall on the fast path (per-slot sequence numbers
//     provide the release/acquire hand-off);
//   * blocking Send/Receive degrade gracefully: spin, then yield, then
//     microsleep, so an idle consumer does not burn a core.
//
// Contract differences from MakeChannelPair: each END's Receive/
// TryReceive must be called from one thread at a time (single-consumer —
// exactly how every component in jamm drives a Channel), and capacity is
// rounded up to a power of two. Everything else — Close/CloseSend/
// IsOpen/drain-after-close semantics — matches the inproc channel.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "transport/message.hpp"

namespace jamm::transport {

/// A connected pair of ring-backed channels; what one sends the other
/// receives. `capacity` is per direction, rounded up to a power of two.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
MakeRingChannelPair(const std::string& name = "ring",
                    std::size_t capacity = 4096);

}  // namespace jamm::transport
