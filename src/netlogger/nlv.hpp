// nlv — text renderer for the NetLogger visualization primitives. The
// original nlv is a Tk GUI; for a library reproduction we render the same
// three primitives (lifeline / loadline / point, Figure 2) onto a character
// canvas with time on the x-axis and labeled rows on the y-axis, plus CSV
// emitters so the series can be re-plotted elsewhere.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "netlogger/analysis.hpp"

namespace jamm::netlogger {

class NlvRenderer {
 public:
  /// Renders [t0, t1) across `width` columns.
  NlvRenderer(TimePoint t0, TimePoint t1, int width = 100);

  /// Point primitive: one row, a mark per occurrence.
  void AddPointRow(const std::string& label,
                   const std::vector<TimePoint>& points, char mark = 'X');

  /// Loadline primitive: one row rendered as a density sparkline, value
  /// scaled between the series min and max.
  void AddLoadlineRow(const std::string& label,
                      const std::vector<SeriesPoint>& series);

  /// Lifeline primitive: one row per event name (given bottom-up order as
  /// in nlv); each lifeline marks its events; steeper = faster.
  void AddLifelines(const std::vector<std::string>& event_rows,
                    const std::vector<Lifeline>& lifelines);

  /// Full chart with y labels and an x-axis ruler in seconds.
  std::string Render() const;

 private:
  int ColumnFor(TimePoint ts) const;

  struct Row {
    std::string label;
    std::string cells;
  };

  TimePoint t0_, t1_;
  int width_;
  std::vector<Row> rows_;  // rendered top-down
};

/// "ts_seconds,value" lines; `t_base` subtracts a common origin.
std::string SeriesToCsv(const std::vector<SeriesPoint>& series,
                        TimePoint t_base = 0);
std::string PointsToCsv(const std::vector<TimePoint>& points,
                        TimePoint t_base = 0);

}  // namespace jamm::netlogger
