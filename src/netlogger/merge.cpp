#include "netlogger/merge.hpp"

#include <algorithm>
#include <fstream>
#include <queue>
#include <sstream>

namespace jamm::netlogger {

void SortByTime(std::vector<ulm::Record>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const ulm::Record& a, const ulm::Record& b) {
                     return a.timestamp() < b.timestamp();
                   });
}

std::vector<ulm::Record> MergeSorted(
    const std::vector<std::vector<ulm::Record>>& streams) {
  // Heap of (next timestamp, stream index, element index); stream index as
  // tie-break keeps the merge deterministic.
  struct Cursor {
    TimePoint ts;
    std::size_t stream;
    std::size_t index;
  };
  auto greater = [](const Cursor& a, const Cursor& b) {
    return a.ts != b.ts ? a.ts > b.ts : a.stream > b.stream;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  std::size_t total = 0;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    total += streams[s].size();
    if (!streams[s].empty()) {
      heap.push({streams[s][0].timestamp(), s, 0});
    }
  }
  std::vector<ulm::Record> out;
  out.reserve(total);
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    out.push_back(streams[c.stream][c.index]);
    if (c.index + 1 < streams[c.stream].size()) {
      heap.push({streams[c.stream][c.index + 1].timestamp(), c.stream,
                 c.index + 1});
    }
  }
  return out;
}

std::vector<ulm::Record> MergeLogs(
    const std::vector<std::vector<ulm::Record>>& logs) {
  std::vector<ulm::Record> out;
  std::size_t total = 0;
  for (const auto& log : logs) total += log.size();
  out.reserve(total);
  for (const auto& log : logs) out.insert(out.end(), log.begin(), log.end());
  SortByTime(out);
  return out;
}

Result<std::vector<ulm::Record>> LoadLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("log file not found: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Status error;
  auto records = ulm::ParseLog(buf.str(), &error);
  if (!error.ok()) return error;
  return records;
}

Status WriteLogFile(const std::string& path,
                    const std::vector<ulm::Record>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open for write: " + path);
  for (const auto& rec : records) {
    out << rec.ToAscii() << '\n';
  }
  out.flush();
  if (!out) return Status::Unavailable("write failed: " + path);
  return Status::Ok();
}

bool IsSortedByTime(const std::vector<ulm::Record>& records) {
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].timestamp() < records[i - 1].timestamp()) return false;
  }
  return true;
}

}  // namespace jamm::netlogger
