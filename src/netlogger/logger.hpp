// NetLogger client API (paper §4.4). Mirrors the Java API shown in the
// paper:
//
//   NetLogger eventLog = new NetLogger("testprog");
//   eventLog.open("dolly.lbl.gov", 14830);
//   eventLog.write("WriteIt", "SEND.SZ=" + sz);
//   eventLog.close();
//
// C++ form:
//
//   netlogger::NetLogger log("testprog", clock, "dpss1.lbl.gov");
//   log.OpenFile("/tmp/test.log");
//   log.Write("WriteIt", {{"SEND.SZ", "49332"}});
//   log.Close();
//
// Records are timestamped automatically from the injected Clock, buffered
// in memory, and flushed explicitly or automatically when the buffer fills
// (paper: "automatically flushed when the buffer is full").
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "netlogger/sinks.hpp"
#include "ulm/record.hpp"

namespace jamm::netlogger {

class NetLogger {
 public:
  /// `prog` fills the ULM PROG field, `host` the HOST field.
  NetLogger(std::string prog, const Clock& clock, std::string host,
            std::size_t buffer_capacity = 256);
  ~NetLogger();

  NetLogger(const NetLogger&) = delete;
  NetLogger& operator=(const NetLogger&) = delete;

  /// Destination selection; the last Open* wins. The raw-string pair form
  /// from the paper's API maps onto a transport sink created by the caller.
  Status OpenFile(const std::string& path, bool truncate = true);
  void OpenMemory();  // records retrievable via TakeBuffered after Flush
  void OpenSyslog(const std::string& facility = "local0");
  void OpenSink(std::shared_ptr<LogSink> sink);

  /// Log one event. Fields are (name, value) pairs appended after the
  /// required fields; LVL defaults to Usage.
  Status Write(std::string_view event_name,
               std::initializer_list<std::pair<std::string_view, std::string_view>>
                   fields = {});
  Status Write(std::string_view event_name, std::string_view lvl,
               const std::vector<std::pair<std::string, std::string>>& fields);
  /// Log a pre-built record (application sensors hand these over).
  Status Write(ulm::Record rec);

  /// Flush the in-memory buffer to the destination sink.
  Status Flush();
  /// Flush and detach the destination.
  Status Close();

  /// For OpenMemory: take everything flushed so far.
  std::vector<ulm::Record> TakeBuffered();

  std::size_t buffered_count() const { return buffer_.size(); }
  const std::string& prog() const { return prog_; }
  const std::string& host() const { return host_; }

 private:
  std::string prog_;
  const Clock& clock_;
  std::string host_;
  std::size_t buffer_capacity_;
  std::vector<ulm::Record> buffer_;
  std::shared_ptr<LogSink> sink_;
  std::shared_ptr<MemorySink> memory_;  // set by OpenMemory
};

}  // namespace jamm::netlogger
