// nlv analysis primitives (paper §4.5, Figure 2). nlv draws three graph
// species from a merged event log:
//
//   * lifeline — the "life" of an object (datum/computation) through the
//     distributed system: ordered events on the y-axis vs time; the slope
//     exposes latency. Objects are identified by the combined values of
//     one or more ULM fields ("object ID").
//   * loadline — a continuous segmented curve of scaled values (CPU load,
//     free memory).
//   * point   — single occurrences (TCP retransmits); optionally scaled by
//     a value to form a scatter plot (Figure 3).
//
// This module provides the data extraction + statistics layer; rendering
// lives in nlv.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "ulm/record.hpp"

namespace jamm::netlogger {

// ---------------------------------------------------------------- lifelines

struct LifelineEvent {
  TimePoint ts = 0;
  std::string event_name;
  std::string host;
};

struct Lifeline {
  std::string object_id;  // concatenated id-field values
  std::vector<LifelineEvent> events;  // time-ordered

  TimePoint start() const { return events.empty() ? 0 : events.front().ts; }
  TimePoint end() const { return events.empty() ? 0 : events.back().ts; }
  Duration elapsed() const { return end() - start(); }
};

/// Group records into lifelines keyed by the combined values of
/// `id_fields` (e.g. {"FRAME.ID"}); records lacking any id field are
/// ignored. Events within a lifeline are sorted by time.
std::vector<Lifeline> BuildLifelines(const std::vector<ulm::Record>& records,
                                     const std::vector<std::string>& id_fields);

struct LatencyStats {
  std::size_t count = 0;
  double mean_s = 0, min_s = 0, max_s = 0, p50_s = 0, p95_s = 0, stddev_s = 0;
};

/// Latency of the `from_event` → `to_event` segment across lifelines (first
/// occurrence of each within a lifeline, `to` after `from`).
LatencyStats SegmentLatency(const std::vector<Lifeline>& lifelines,
                            const std::string& from_event,
                            const std::string& to_event);

// ---------------------------------------------------------------- series

struct SeriesPoint {
  TimePoint ts = 0;
  double value = 0;
};

/// Loadline extraction: (timestamp, value_field) for records whose NL.EVNT
/// matches `event_name`. Empty event_name matches every record carrying
/// the field.
std::vector<SeriesPoint> ExtractSeries(const std::vector<ulm::Record>& records,
                                       const std::string& event_name,
                                       const std::string& value_field);

/// Point extraction: timestamps of matching events.
std::vector<TimePoint> ExtractPoints(const std::vector<ulm::Record>& records,
                                     const std::string& event_name);

/// Scatter extraction (Figure 3): matching events scaled by a value field.
std::vector<SeriesPoint> ExtractScatter(const std::vector<ulm::Record>& records,
                                        const std::string& event_name,
                                        const std::string& value_field);

/// Average value per fixed time bucket; buckets with no samples are
/// omitted. Input need not be sorted.
std::vector<SeriesPoint> ResampleMean(const std::vector<SeriesPoint>& series,
                                      Duration bucket);

/// Events per second in fixed buckets across [t0, t1) — frame-rate curves.
std::vector<SeriesPoint> RatePerSecond(const std::vector<TimePoint>& points,
                                       TimePoint t0, TimePoint t1,
                                       Duration bucket);

// ---------------------------------------------------------------- stats

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0, min = 0, max = 0, p50 = 0, p95 = 0, stddev = 0;
};

SummaryStats ComputeStats(std::vector<double> values);

// ---------------------------------------------------------------- fig 3/7

/// 1-D k-means for the Figure-3 "clustering of the data around two distinct
/// values" observation. Returns sorted cluster centers; deterministic
/// (quantile initialization, fixed iteration count).
std::vector<double> FindClusters1D(const std::vector<double>& values,
                                   std::size_t k);

/// Fraction of samples within `radius` of their nearest center; ~1.0 means
/// tight clustering.
double ClusterTightness(const std::vector<double>& values,
                        const std::vector<double>& centers, double radius);

struct Gap {
  TimePoint start = 0;
  TimePoint end = 0;
  Duration length() const { return end - start; }
};

/// Intervals of silence (>= min_gap) between consecutive sorted timestamps
/// — the Figure-7 "large gap with no data being received".
std::vector<Gap> FindGaps(const std::vector<TimePoint>& sorted_times,
                          Duration min_gap);

/// How many of `points` fall inside any gap widened by `slack` on both
/// sides. Used to correlate TCP retransmit points with frame-arrival gaps.
std::size_t CountPointsInGaps(const std::vector<TimePoint>& points,
                              const std::vector<Gap>& gaps, Duration slack);

}  // namespace jamm::netlogger
