#include "netlogger/logger.hpp"

namespace jamm::netlogger {

NetLogger::NetLogger(std::string prog, const Clock& clock, std::string host,
                     std::size_t buffer_capacity)
    : prog_(std::move(prog)),
      clock_(clock),
      host_(std::move(host)),
      buffer_capacity_(buffer_capacity == 0 ? 1 : buffer_capacity) {
  buffer_.reserve(buffer_capacity_);
}

NetLogger::~NetLogger() { (void)Close(); }

Status NetLogger::OpenFile(const std::string& path, bool truncate) {
  auto sink = std::make_shared<FileSink>(path, truncate);
  JAMM_RETURN_IF_ERROR(sink->Open());
  sink_ = std::move(sink);
  memory_.reset();
  return Status::Ok();
}

void NetLogger::OpenMemory() {
  memory_ = std::make_shared<MemorySink>();
  sink_ = memory_;
}

void NetLogger::OpenSyslog(const std::string& facility) {
  sink_ = std::make_shared<SyslogSimSink>(facility);
  memory_.reset();
}

void NetLogger::OpenSink(std::shared_ptr<LogSink> sink) {
  sink_ = std::move(sink);
  memory_.reset();
}

Status NetLogger::Write(
    std::string_view event_name,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        fields) {
  ulm::Record rec(clock_.Now(), host_, prog_, std::string(ulm::level::kUsage),
                  std::string(event_name));
  for (const auto& [k, v] : fields) rec.SetField(k, v);
  return Write(std::move(rec));
}

Status NetLogger::Write(
    std::string_view event_name, std::string_view lvl,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  ulm::Record rec(clock_.Now(), host_, prog_, std::string(lvl),
                  std::string(event_name));
  for (const auto& [k, v] : fields) rec.SetField(k, std::string_view(v));
  return Write(std::move(rec));
}

Status NetLogger::Write(ulm::Record rec) {
  buffer_.push_back(std::move(rec));
  if (buffer_.size() >= buffer_capacity_) return Flush();
  return Status::Ok();
}

Status NetLogger::Flush() {
  if (!sink_) {
    // No destination yet: keep buffering (the paper's memory mode).
    return Status::Ok();
  }
  Status first;
  for (auto& rec : buffer_) {
    Status s = sink_->Write(rec);
    if (!s.ok() && first.ok()) first = s;
  }
  buffer_.clear();
  Status s = sink_->Flush();
  if (!s.ok() && first.ok()) first = s;
  return first;
}

Status NetLogger::Close() {
  Status s = Flush();
  sink_.reset();
  return s;
}

std::vector<ulm::Record> NetLogger::TakeBuffered() {
  if (memory_) return memory_->TakeRecords();
  std::vector<ulm::Record> out;
  out.swap(buffer_);
  return out;
}

}  // namespace jamm::netlogger
