#include "netlogger/sinks.hpp"

#include <cstdio>
#include <map>

namespace jamm::netlogger {

Status MemorySink::Write(const ulm::Record& rec) {
  records_.push_back(rec);
  return Status::Ok();
}

std::vector<ulm::Record> MemorySink::TakeRecords() {
  std::vector<ulm::Record> out;
  out.swap(records_);
  return out;
}

FileSink::FileSink(std::string path, bool truncate)
    : path_(std::move(path)), truncate_(truncate) {}

FileSink::~FileSink() {
  if (file_) std::fclose(file_);
}

Status FileSink::Open() {
  if (file_) return Status::Ok();
  file_ = std::fopen(path_.c_str(), truncate_ ? "w" : "a");
  if (!file_) return Status::Unavailable("cannot open log file: " + path_);
  return Status::Ok();
}

Status FileSink::Write(const ulm::Record& rec) {
  JAMM_RETURN_IF_ERROR(Open());
  const std::string line = rec.ToAscii();
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::Unavailable("write failed: " + path_);
  }
  return Status::Ok();
}

Status FileSink::Flush() {
  if (file_ && std::fflush(file_) != 0) {
    return Status::Unavailable("flush failed: " + path_);
  }
  return Status::Ok();
}

namespace {
std::mutex g_syslog_mu;
std::map<std::string, std::vector<ulm::Record>>& SyslogStore() {
  static std::map<std::string, std::vector<ulm::Record>> store;
  return store;
}
}  // namespace

Status SyslogSimSink::Write(const ulm::Record& rec) {
  std::lock_guard lock(g_syslog_mu);
  SyslogStore()[facility_].push_back(rec);
  return Status::Ok();
}

std::vector<ulm::Record> SyslogSimSink::Read(const std::string& facility) {
  std::lock_guard lock(g_syslog_mu);
  auto it = SyslogStore().find(facility);
  if (it == SyslogStore().end()) return {};
  return it->second;
}

void SyslogSimSink::Reset() {
  std::lock_guard lock(g_syslog_mu);
  SyslogStore().clear();
}

Status TeeSink::Write(const ulm::Record& rec) {
  Status first;
  for (auto& sink : sinks_) {
    Status s = sink->Write(rec);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Status TeeSink::Flush() {
  Status first;
  for (auto& sink : sinks_) {
    Status s = sink->Flush();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

}  // namespace jamm::netlogger
