// Log destinations for the NetLogger client API (paper §4.4: "logging to
// either memory, a local file, syslog, a remote host").
//
// Sinks receive fully-formed ULM records. The network destination is a
// sink too — the transport module wraps a Channel in one — so the logger
// core has no transport dependency.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ulm/record.hpp"

namespace jamm::netlogger {

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual Status Write(const ulm::Record& rec) = 0;
  /// Push buffered data toward the destination; default no-op.
  virtual Status Flush() { return Status::Ok(); }
};

/// In-memory destination; also the explicit-flush buffer backing store.
class MemorySink final : public LogSink {
 public:
  Status Write(const ulm::Record& rec) override;

  const std::vector<ulm::Record>& records() const { return records_; }
  std::vector<ulm::Record> TakeRecords();
  void Clear() { records_.clear(); }

 private:
  std::vector<ulm::Record> records_;
};

/// Appends ASCII ULM lines to a file.
class FileSink final : public LogSink {
 public:
  /// Opens (creates/truncates if `truncate`) the file; Status via Open().
  explicit FileSink(std::string path, bool truncate = true);
  ~FileSink() override;

  Status Open();
  Status Write(const ulm::Record& rec) override;
  Status Flush() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  bool truncate_;
  std::FILE* file_ = nullptr;
};

/// Invokes a callback per record; adapter for gateways, tests, consumers.
class CallbackSink final : public LogSink {
 public:
  using Callback = std::function<void(const ulm::Record&)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}

  Status Write(const ulm::Record& rec) override {
    cb_(rec);
    return Status::Ok();
  }

 private:
  Callback cb_;
};

/// Simulated syslog: a process-wide store keyed by facility, mirroring the
/// paper's syslog destination without requiring a syslog daemon.
class SyslogSimSink final : public LogSink {
 public:
  explicit SyslogSimSink(std::string facility = "local0")
      : facility_(std::move(facility)) {}

  Status Write(const ulm::Record& rec) override;

  /// Read back everything logged to a facility (thread-safe snapshot).
  static std::vector<ulm::Record> Read(const std::string& facility);
  static void Reset();

 private:
  std::string facility_;
};

/// Fan-out to several sinks; failures are combined (first error wins).
class TeeSink final : public LogSink {
 public:
  void Add(std::shared_ptr<LogSink> sink) { sinks_.push_back(std::move(sink)); }

  Status Write(const ulm::Record& rec) override;
  Status Flush() override;

 private:
  std::vector<std::shared_ptr<LogSink>> sinks_;
};

}  // namespace jamm::netlogger
