// Log collection/sorting tools (paper §4.1: "a set of tools for collecting
// and sorting log files"). The event collector merges many sensor streams
// into one time-ordered file for nlv; these are the primitives it uses.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "ulm/record.hpp"

namespace jamm::netlogger {

/// Stable sort by timestamp (ties keep input order, so events that share a
/// microsecond stay in arrival order).
void SortByTime(std::vector<ulm::Record>& records);

/// K-way merge of already-sorted streams into one sorted stream.
std::vector<ulm::Record> MergeSorted(
    const std::vector<std::vector<ulm::Record>>& streams);

/// Merge arbitrary (possibly unsorted) logs: concatenates then sorts.
std::vector<ulm::Record> MergeLogs(
    const std::vector<std::vector<ulm::Record>>& logs);

/// Load an ASCII ULM log file.
Result<std::vector<ulm::Record>> LoadLogFile(const std::string& path);

/// Write records to an ASCII ULM log file (one per line).
Status WriteLogFile(const std::string& path,
                    const std::vector<ulm::Record>& records);

/// True if timestamps are non-decreasing.
bool IsSortedByTime(const std::vector<ulm::Record>& records);

}  // namespace jamm::netlogger
