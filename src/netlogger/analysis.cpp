#include "netlogger/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace jamm::netlogger {
namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LatencyStats ToLatencyStats(const SummaryStats& s) {
  LatencyStats out;
  out.count = s.count;
  out.mean_s = s.mean;
  out.min_s = s.min;
  out.max_s = s.max;
  out.p50_s = s.p50;
  out.p95_s = s.p95;
  out.stddev_s = s.stddev;
  return out;
}

}  // namespace

std::vector<Lifeline> BuildLifelines(
    const std::vector<ulm::Record>& records,
    const std::vector<std::string>& id_fields) {
  std::map<std::string, Lifeline> by_id;
  for (const auto& rec : records) {
    std::string id;
    bool complete = true;
    for (const auto& f : id_fields) {
      auto v = rec.GetField(f);
      if (!v) {
        complete = false;
        break;
      }
      if (!id.empty()) id += '/';
      id += *v;
    }
    if (!complete || id_fields.empty()) continue;
    Lifeline& line = by_id[id];
    line.object_id = id;
    line.events.push_back({rec.timestamp(), rec.event_name(), rec.host()});
  }
  std::vector<Lifeline> out;
  out.reserve(by_id.size());
  for (auto& [id, line] : by_id) {
    std::stable_sort(line.events.begin(), line.events.end(),
                     [](const LifelineEvent& a, const LifelineEvent& b) {
                       return a.ts < b.ts;
                     });
    out.push_back(std::move(line));
  }
  return out;
}

LatencyStats SegmentLatency(const std::vector<Lifeline>& lifelines,
                            const std::string& from_event,
                            const std::string& to_event) {
  std::vector<double> latencies;
  for (const auto& line : lifelines) {
    TimePoint from_ts = -1;
    for (const auto& ev : line.events) {
      if (from_ts < 0 && ev.event_name == from_event) {
        from_ts = ev.ts;
      } else if (from_ts >= 0 && ev.event_name == to_event) {
        latencies.push_back(ToSeconds(ev.ts - from_ts));
        break;
      }
    }
  }
  return ToLatencyStats(ComputeStats(std::move(latencies)));
}

std::vector<SeriesPoint> ExtractSeries(const std::vector<ulm::Record>& records,
                                       const std::string& event_name,
                                       const std::string& value_field) {
  std::vector<SeriesPoint> out;
  for (const auto& rec : records) {
    if (!event_name.empty() && rec.event_name() != event_name) continue;
    auto v = rec.GetDouble(value_field);
    if (!v.ok()) continue;
    out.push_back({rec.timestamp(), *v});
  }
  return out;
}

std::vector<TimePoint> ExtractPoints(const std::vector<ulm::Record>& records,
                                     const std::string& event_name) {
  std::vector<TimePoint> out;
  for (const auto& rec : records) {
    if (rec.event_name() == event_name) out.push_back(rec.timestamp());
  }
  return out;
}

std::vector<SeriesPoint> ExtractScatter(const std::vector<ulm::Record>& records,
                                        const std::string& event_name,
                                        const std::string& value_field) {
  return ExtractSeries(records, event_name, value_field);
}

std::vector<SeriesPoint> ResampleMean(const std::vector<SeriesPoint>& series,
                                      Duration bucket) {
  if (bucket <= 0 || series.empty()) return {};
  std::map<std::int64_t, std::pair<double, std::size_t>> buckets;
  for (const auto& p : series) {
    auto& [sum, n] = buckets[p.ts / bucket];
    sum += p.value;
    ++n;
  }
  std::vector<SeriesPoint> out;
  out.reserve(buckets.size());
  for (const auto& [b, agg] : buckets) {
    out.push_back({b * bucket + bucket / 2,
                   agg.first / static_cast<double>(agg.second)});
  }
  return out;
}

std::vector<SeriesPoint> RatePerSecond(const std::vector<TimePoint>& points,
                                       TimePoint t0, TimePoint t1,
                                       Duration bucket) {
  if (bucket <= 0 || t1 <= t0) return {};
  const std::size_t nbuckets =
      static_cast<std::size_t>((t1 - t0 + bucket - 1) / bucket);
  std::vector<std::size_t> counts(nbuckets, 0);
  for (TimePoint p : points) {
    if (p < t0 || p >= t1) continue;
    counts[static_cast<std::size_t>((p - t0) / bucket)]++;
  }
  std::vector<SeriesPoint> out;
  out.reserve(nbuckets);
  const double bucket_s = ToSeconds(bucket);
  for (std::size_t i = 0; i < nbuckets; ++i) {
    out.push_back({t0 + static_cast<Duration>(i) * bucket + bucket / 2,
                   static_cast<double>(counts[i]) / bucket_s});
  }
  return out;
}

SummaryStats ComputeStats(std::vector<double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  s.p50 = Percentile(values, 0.50);
  s.p95 = Percentile(values, 0.95);
  return s;
}

std::vector<double> FindClusters1D(const std::vector<double>& values,
                                   std::size_t k) {
  if (values.empty() || k == 0) return {};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  k = std::min(k, sorted.size());
  // Quantile initialization makes the result deterministic and well-spread.
  std::vector<double> centers(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(k);
    centers[i] = Percentile(sorted, q);
  }
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<double> sums(k, 0);
    std::vector<std::size_t> counts(k, 0);
    for (double v : sorted) {
      std::size_t best = 0;
      double best_d = std::abs(v - centers[0]);
      for (std::size_t c = 1; c < k; ++c) {
        const double d = std::abs(v - centers[c]);
        if (d < best_d) {
          best = c;
          best_d = d;
        }
      }
      sums[best] += v;
      counts[best]++;
    }
    bool changed = false;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      const double next = sums[c] / static_cast<double>(counts[c]);
      if (std::abs(next - centers[c]) > 1e-9) changed = true;
      centers[c] = next;
    }
    if (!changed) break;
  }
  std::sort(centers.begin(), centers.end());
  return centers;
}

double ClusterTightness(const std::vector<double>& values,
                        const std::vector<double>& centers, double radius) {
  if (values.empty() || centers.empty()) return 0;
  std::size_t close = 0;
  for (double v : values) {
    for (double c : centers) {
      if (std::abs(v - c) <= radius) {
        ++close;
        break;
      }
    }
  }
  return static_cast<double>(close) / static_cast<double>(values.size());
}

std::vector<Gap> FindGaps(const std::vector<TimePoint>& sorted_times,
                          Duration min_gap) {
  std::vector<Gap> out;
  for (std::size_t i = 1; i < sorted_times.size(); ++i) {
    if (sorted_times[i] - sorted_times[i - 1] >= min_gap) {
      out.push_back({sorted_times[i - 1], sorted_times[i]});
    }
  }
  return out;
}

std::size_t CountPointsInGaps(const std::vector<TimePoint>& points,
                              const std::vector<Gap>& gaps, Duration slack) {
  std::size_t n = 0;
  for (TimePoint p : points) {
    for (const Gap& g : gaps) {
      if (p >= g.start - slack && p <= g.end + slack) {
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace jamm::netlogger
