#include "netlogger/nlv.hpp"

#include <algorithm>
#include <cstdio>

namespace jamm::netlogger {
namespace {
constexpr char kLoadRamp[] = " .:-=+*#%@";
constexpr int kRampMax = 9;
}  // namespace

NlvRenderer::NlvRenderer(TimePoint t0, TimePoint t1, int width)
    : t0_(t0), t1_(std::max(t1, t0 + 1)), width_(std::max(width, 10)) {}

int NlvRenderer::ColumnFor(TimePoint ts) const {
  if (ts < t0_) return -1;
  if (ts >= t1_) return -1;
  const double frac = static_cast<double>(ts - t0_) /
                      static_cast<double>(t1_ - t0_);
  int col = static_cast<int>(frac * width_);
  return std::min(col, width_ - 1);
}

void NlvRenderer::AddPointRow(const std::string& label,
                              const std::vector<TimePoint>& points,
                              char mark) {
  Row row{label, std::string(static_cast<std::size_t>(width_), ' ')};
  for (TimePoint p : points) {
    const int col = ColumnFor(p);
    if (col >= 0) row.cells[static_cast<std::size_t>(col)] = mark;
  }
  rows_.push_back(std::move(row));
}

void NlvRenderer::AddLoadlineRow(const std::string& label,
                                 const std::vector<SeriesPoint>& series) {
  Row row{label, std::string(static_cast<std::size_t>(width_), ' ')};
  if (!series.empty()) {
    double lo = series[0].value, hi = series[0].value;
    for (const auto& p : series) {
      lo = std::min(lo, p.value);
      hi = std::max(hi, p.value);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    // Per column keep the max ramp level so bursts stay visible.
    for (const auto& p : series) {
      const int col = ColumnFor(p.ts);
      if (col < 0) continue;
      const int level =
          1 + static_cast<int>((p.value - lo) / span * (kRampMax - 1));
      char& cell = row.cells[static_cast<std::size_t>(col)];
      const int existing =
          cell == ' ' ? 0
                      : static_cast<int>(std::string(kLoadRamp).find(cell));
      if (level > existing) cell = kLoadRamp[level];
    }
  }
  rows_.push_back(std::move(row));
}

void NlvRenderer::AddLifelines(const std::vector<std::string>& event_rows,
                               const std::vector<Lifeline>& lifelines) {
  // nlv stacks event names bottom-up; our canvas renders top-down, so
  // reverse. One mark per event occurrence; successive lifelines cycle
  // through mark characters so individual object paths stay traceable.
  std::vector<Row> grid;
  grid.reserve(event_rows.size());
  for (auto it = event_rows.rbegin(); it != event_rows.rend(); ++it) {
    grid.push_back({*it, std::string(static_cast<std::size_t>(width_), ' ')});
  }
  auto row_for = [&](const std::string& name) -> Row* {
    for (std::size_t i = 0; i < event_rows.size(); ++i) {
      if (event_rows[event_rows.size() - 1 - i] == name) return &grid[i];
    }
    return nullptr;
  };
  constexpr char kMarks[] = "ox+*%&";
  std::size_t line_idx = 0;
  for (const auto& line : lifelines) {
    const char mark = kMarks[line_idx++ % (sizeof(kMarks) - 1)];
    for (const auto& ev : line.events) {
      Row* row = row_for(ev.event_name);
      if (!row) continue;
      const int col = ColumnFor(ev.ts);
      if (col >= 0) row->cells[static_cast<std::size_t>(col)] = mark;
    }
  }
  for (auto& row : grid) rows_.push_back(std::move(row));
}

std::string NlvRenderer::Render() const {
  std::size_t label_width = 0;
  for (const auto& row : rows_) {
    label_width = std::max(label_width, row.label.size());
  }
  std::string out;
  for (const auto& row : rows_) {
    std::string label = row.label;
    label.resize(label_width, ' ');
    out += label + " |" + row.cells + "|\n";
  }
  // x-axis ruler in seconds relative to t0.
  std::string axis(static_cast<std::size_t>(width_), '-');
  out += std::string(label_width, ' ') + " +" + axis + "+\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "0s");
  std::string ticks = std::string(label_width, ' ') + "  " + buf;
  std::snprintf(buf, sizeof(buf), "%.2fs", ToSeconds(t1_ - t0_));
  const std::string end_tick(buf);
  const std::size_t total = label_width + 2 + static_cast<std::size_t>(width_);
  if (ticks.size() + end_tick.size() < total) {
    ticks += std::string(total - ticks.size() - end_tick.size(), ' ');
  }
  out += ticks + end_tick + "\n";
  return out;
}

std::string SeriesToCsv(const std::vector<SeriesPoint>& series,
                        TimePoint t_base) {
  std::string out = "time_s,value\n";
  char buf[64];
  for (const auto& p : series) {
    std::snprintf(buf, sizeof(buf), "%.6f,%.6f\n", ToSeconds(p.ts - t_base),
                  p.value);
    out += buf;
  }
  return out;
}

std::string PointsToCsv(const std::vector<TimePoint>& points,
                        TimePoint t_base) {
  std::string out = "time_s\n";
  char buf[32];
  for (TimePoint p : points) {
    std::snprintf(buf, sizeof(buf), "%.6f\n", ToSeconds(p - t_base));
    out += buf;
  }
  return out;
}

}  // namespace jamm::netlogger
