#include "sysmon/procfs.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace jamm::sysmon {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::Unavailable("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

ProcfsProvider::ProcfsProvider(std::string hostname, std::string proc_root)
    : hostname_(std::move(hostname)), proc_root_(std::move(proc_root)) {}

Result<ProcfsProvider::CpuJiffies> ProcfsProvider::ReadCpu() const {
  auto text = ReadFile(proc_root_ + "/stat");
  if (!text.ok()) return text.status();
  for (const auto& line : Split(*text, '\n')) {
    if (!StartsWith(line, "cpu ")) continue;
    auto fields = SplitWhitespace(line);
    if (fields.size() < 8) {
      return Status::ParseError("short cpu line in /proc/stat");
    }
    CpuJiffies j;
    j.user = ParseInt(fields[1]).value_or(0);
    j.nice = ParseInt(fields[2]).value_or(0);
    j.system = ParseInt(fields[3]).value_or(0);
    j.idle = ParseInt(fields[4]).value_or(0);
    j.iowait = ParseInt(fields[5]).value_or(0);
    j.irq = ParseInt(fields[6]).value_or(0);
    j.softirq = ParseInt(fields[7]).value_or(0);
    return j;
  }
  return Status::ParseError("no cpu line in /proc/stat");
}

Result<HostMetrics> ProcfsProvider::Sample() {
  HostMetrics m;

  // CPU: percentage over the jiffy delta since the previous sample; the
  // first sample reports the since-boot average.
  auto cpu = ReadCpu();
  if (!cpu.ok()) return cpu.status();
  CpuJiffies delta = *cpu;
  if (have_last_) {
    delta.user -= last_.user;
    delta.nice -= last_.nice;
    delta.system -= last_.system;
    delta.idle -= last_.idle;
    delta.iowait -= last_.iowait;
    delta.irq -= last_.irq;
    delta.softirq -= last_.softirq;
  }
  last_ = *cpu;
  have_last_ = true;
  const double total = static_cast<double>(std::max<std::int64_t>(delta.total(), 1));
  m.cpu_user_pct = 100.0 * static_cast<double>(delta.user + delta.nice) / total;
  m.cpu_sys_pct = 100.0 *
                  static_cast<double>(delta.system + delta.irq + delta.softirq) /
                  total;
  m.cpu_idle_pct = 100.0 * static_cast<double>(delta.idle + delta.iowait) / total;

  // Interrupt / context-switch counters also live in /proc/stat.
  if (auto text = ReadFile(proc_root_ + "/stat"); text.ok()) {
    for (const auto& line : Split(*text, '\n')) {
      auto fields = SplitWhitespace(line);
      if (fields.size() >= 2 && fields[0] == "intr") {
        m.interrupts = ParseInt(fields[1]).value_or(0);
      } else if (fields.size() >= 2 && fields[0] == "ctxt") {
        m.context_switches = ParseInt(fields[1]).value_or(0);
      }
    }
  }

  // Memory.
  if (auto text = ReadFile(proc_root_ + "/meminfo"); text.ok()) {
    for (const auto& line : Split(*text, '\n')) {
      auto fields = SplitWhitespace(line);
      if (fields.size() >= 2 && fields[0] == "MemTotal:") {
        m.mem_total_kb = ParseInt(fields[1]).value_or(0);
      } else if (fields.size() >= 2 && fields[0] == "MemAvailable:") {
        m.mem_free_kb = ParseInt(fields[1]).value_or(0);
      }
    }
  }

  // TCP retransmits: /proc/net/snmp has a header line naming the columns
  // followed by a value line; find RetransSegs.
  if (auto text = ReadFile(proc_root_ + "/net/snmp"); text.ok()) {
    std::vector<std::string> header;
    for (const auto& line : Split(*text, '\n')) {
      if (!StartsWith(line, "Tcp:")) continue;
      auto fields = SplitWhitespace(line);
      if (header.empty()) {
        header = fields;
        continue;
      }
      for (std::size_t i = 0; i < header.size() && i < fields.size(); ++i) {
        if (header[i] == "RetransSegs") {
          m.tcp_retransmits = ParseInt(fields[i]).value_or(0);
        }
      }
      break;
    }
  }

  return m;
}

}  // namespace jamm::sysmon
