#include "sysmon/snmp.hpp"

#include "common/strings.hpp"

namespace jamm::sysmon {

Result<Oid> Oid::Parse(std::string_view text) {
  std::vector<std::uint32_t> arcs;
  for (const auto& piece : Split(TrimView(text), '.')) {
    auto n = ParseInt(piece);
    if (!n.ok() || *n < 0 || *n > 0xFFFFFFFFll) {
      return Status::ParseError("bad OID arc '" + piece + "' in '" +
                                std::string(text) + "'");
    }
    arcs.push_back(static_cast<std::uint32_t>(*n));
  }
  if (arcs.empty()) return Status::ParseError("empty OID");
  return Oid(std::move(arcs));
}

Oid Oid::Extend(std::uint32_t arc) const {
  std::vector<std::uint32_t> arcs = arcs_;
  arcs.push_back(arc);
  return Oid(std::move(arcs));
}

bool Oid::IsPrefixOf(const Oid& other) const {
  if (arcs_.size() > other.arcs_.size()) return false;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (arcs_[i] != other.arcs_[i]) return false;
  }
  return true;
}

std::string Oid::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

void MibTree::Set(const Oid& oid, SnmpValue value) {
  entries_[oid] = std::move(value);
}

void MibTree::Bump(const Oid& oid, std::int64_t delta) {
  auto it = entries_.find(oid);
  if (it == entries_.end()) {
    entries_[oid] = SnmpValue::Counter(delta);
  } else {
    it->second.number += delta;
  }
}

Result<SnmpValue> MibTree::Get(const Oid& oid) const {
  auto it = entries_.find(oid);
  if (it == entries_.end()) {
    return Status::NotFound("noSuchObject: " + oid.ToString());
  }
  return it->second;
}

Result<std::pair<Oid, SnmpValue>> MibTree::GetNext(const Oid& oid) const {
  auto it = entries_.upper_bound(oid);
  if (it == entries_.end()) {
    return Status::NotFound("endOfMibView after " + oid.ToString());
  }
  return std::make_pair(it->first, it->second);
}

std::vector<std::pair<Oid, SnmpValue>> MibTree::Walk(const Oid& prefix) const {
  std::vector<std::pair<Oid, SnmpValue>> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (!prefix.IsPrefixOf(it->first)) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

namespace oid {

Oid SysName() { return Oid({1, 3, 6, 1, 2, 1, 1, 5, 0}); }

Oid IfInOctets(std::uint32_t i) {
  return Oid({1, 3, 6, 1, 2, 1, 2, 2, 1, 10, i});
}
Oid IfOutOctets(std::uint32_t i) {
  return Oid({1, 3, 6, 1, 2, 1, 2, 2, 1, 16, i});
}
Oid IfInErrors(std::uint32_t i) {
  return Oid({1, 3, 6, 1, 2, 1, 2, 2, 1, 14, i});
}
Oid IfOutErrors(std::uint32_t i) {
  return Oid({1, 3, 6, 1, 2, 1, 2, 2, 1, 20, i});
}
Oid IfCrcErrors(std::uint32_t i) {
  return Oid({1, 3, 6, 1, 4, 1, 9, 2, 2, 1, 1, 12, i});
}
Oid IfTable() { return Oid({1, 3, 6, 1, 2, 1, 2, 2}); }

}  // namespace oid

SnmpAgent::SnmpAgent(std::string device_name) : name_(std::move(device_name)) {
  mib_.Set(oid::SysName(), SnmpValue::String(name_));
}

void SnmpAgent::AddTraffic(std::uint32_t ifindex, std::int64_t in_octets,
                           std::int64_t out_octets) {
  mib_.Bump(oid::IfInOctets(ifindex), in_octets);
  mib_.Bump(oid::IfOutOctets(ifindex), out_octets);
}

void SnmpAgent::AddErrors(std::uint32_t ifindex, std::int64_t in_errors,
                          std::int64_t crc_errors) {
  mib_.Bump(oid::IfInErrors(ifindex), in_errors);
  mib_.Bump(oid::IfCrcErrors(ifindex), crc_errors);
}

Result<std::int64_t> SnmpAgent::Counter(const Oid& oid) const {
  auto v = mib_.Get(oid);
  if (!v.ok()) return v.status();
  if (v->kind == SnmpValue::Kind::kString) {
    return Status::InvalidArgument("OID is a string: " + oid.ToString());
  }
  return v->number;
}

}  // namespace jamm::sysmon
