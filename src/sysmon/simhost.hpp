// SimHost: a simulated host whose counters are driven by scenario code
// (workload generators, the network simulator, failure injectors). This is
// the substitution for the paper's real monitored machines (DESIGN.md §2):
// sensors see exactly the counter streams vmstat/netstat/iostat would
// produce, but with controllable ground truth.
//
// Also carries the two per-host tables the agents need:
//   * a process table   — drives process sensors (start/die/crash, user
//     counts for dynamic thresholds);
//   * port activity     — drives the port monitor agent (traffic on
//     well-known ports triggers sensors).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "sysmon/metrics.hpp"

namespace jamm::sysmon {

struct ProcessInfo {
  std::string name;
  int pid = 0;
  bool running = false;
  bool crashed = false;      // died abnormally (vs clean exit)
  std::int64_t users = 0;    // e.g. connected users, for threshold sensors
};

class SimHost final : public MetricsProvider {
 public:
  SimHost(std::string name, const Clock& clock, std::uint64_t seed = 1);

  const std::string& host() const override { return name_; }

  /// Snapshot current state; adds small bounded noise to the CPU figures so
  /// traces look organic (noise is deterministic per seed).
  Result<HostMetrics> Sample() override;

  // ----------------------------------------------------------- workload

  /// Baseline load when no bursts are active.
  void SetBaseLoad(double user_pct, double sys_pct);
  /// Additional load active during [now, now+duration) — bursts stack.
  void AddLoadBurst(double user_pct, double sys_pct, Duration duration);
  void SetMemory(std::int64_t total_kb, std::int64_t free_kb);
  void ConsumeMemory(std::int64_t kb);   // free -= kb (floors at 0)
  void ReleaseMemory(std::int64_t kb);   // free += kb (caps at total)
  void AddTcpRetransmits(std::int64_t n);
  void SetTcpWindow(std::int64_t bytes);
  void AddDiskIo(std::int64_t read_kb, std::int64_t write_kb);
  void AddInterrupts(std::int64_t n);
  void AddContextSwitches(std::int64_t n);

  // ------------------------------------------------------ process table

  /// Start (or restart) a named process; returns its pid.
  int StartProcess(const std::string& name);
  /// `crashed` distinguishes abnormal death (process sensors report it).
  void StopProcess(const std::string& name, bool crashed);
  void SetProcessUsers(const std::string& name, std::int64_t users);
  std::optional<ProcessInfo> FindProcess(const std::string& name) const;
  std::vector<ProcessInfo> Processes() const;

  // ------------------------------------------------------ port activity

  /// Record traffic on a port (the port monitor watches these counters).
  void AddPortTraffic(std::uint16_t port, std::int64_t bytes);
  std::int64_t PortTraffic(std::uint16_t port) const;  // cumulative bytes
  /// Last-activity stamp for the port; -1 when no traffic was ever seen
  /// (0 is a valid simulation start time).
  TimePoint LastPortActivity(std::uint16_t port) const;

 private:
  struct Burst {
    double user_pct;
    double sys_pct;
    TimePoint until;
  };

  std::string name_;
  const Clock& clock_;
  mutable Rng rng_;

  double base_user_pct_ = 2.0;
  double base_sys_pct_ = 1.0;
  std::vector<Burst> bursts_;
  HostMetrics counters_;

  std::map<std::string, ProcessInfo> processes_;
  int next_pid_ = 1000;

  struct PortState {
    std::int64_t bytes = 0;
    TimePoint last_activity = -1;
  };
  std::map<std::uint16_t, PortState> ports_;
};

}  // namespace jamm::sysmon
