// SNMP-lite: the network-device substrate behind JAMM's network sensors
// (paper §2.2: "These sensors perform SNMP queries to a network device,
// typically a router or switch"). Implements the SNMP data model the
// sensors need — an OID-keyed MIB with GET / GETNEXT / WALK — and an agent
// per simulated device carrying an ifTable-style MIB (octet counters,
// errors, CRC errors; §6 monitors "SNMP errors on the end switches and
// routers").
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace jamm::sysmon {

/// Object identifier: dotted sequence of arcs, e.g. "1.3.6.1.2.1.2.2.1.10.1".
class Oid {
 public:
  Oid() = default;
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  static Result<Oid> Parse(std::string_view text);

  const std::vector<std::uint32_t>& arcs() const { return arcs_; }
  bool empty() const { return arcs_.empty(); }

  /// Append one arc (table index construction).
  Oid Extend(std::uint32_t arc) const;

  bool IsPrefixOf(const Oid& other) const;

  std::string ToString() const;

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid& a, const Oid& b) {
    return a.arcs_ <=> b.arcs_;  // lexicographic = SNMP ordering
  }

 private:
  std::vector<std::uint32_t> arcs_;
};

struct SnmpValue {
  enum class Kind { kInteger, kCounter, kString };
  Kind kind = Kind::kInteger;
  std::int64_t number = 0;
  std::string text;

  static SnmpValue Integer(std::int64_t v) {
    return {Kind::kInteger, v, ""};
  }
  static SnmpValue Counter(std::int64_t v) {
    return {Kind::kCounter, v, ""};
  }
  static SnmpValue String(std::string s) {
    return {Kind::kString, 0, std::move(s)};
  }

  friend bool operator==(const SnmpValue&, const SnmpValue&) = default;
};

/// Ordered OID → value store with SNMP retrieval semantics.
class MibTree {
 public:
  void Set(const Oid& oid, SnmpValue value);
  /// Add to a counter (creates it at zero first).
  void Bump(const Oid& oid, std::int64_t delta);

  Result<SnmpValue> Get(const Oid& oid) const;
  /// First binding with OID strictly greater — the GETNEXT traversal.
  Result<std::pair<Oid, SnmpValue>> GetNext(const Oid& oid) const;
  /// All bindings under a prefix, in OID order (a WALK).
  std::vector<std::pair<Oid, SnmpValue>> Walk(const Oid& prefix) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<Oid, SnmpValue> entries_;
};

/// Well-known OIDs used by the network sensors (IF-MIB flavored, plus a
/// vendor-style CRC counter).
namespace oid {
Oid SysName();                        // 1.3.6.1.2.1.1.5.0
Oid IfInOctets(std::uint32_t ifindex);   // 1.3.6.1.2.1.2.2.1.10.<i>
Oid IfOutOctets(std::uint32_t ifindex);  // 1.3.6.1.2.1.2.2.1.16.<i>
Oid IfInErrors(std::uint32_t ifindex);   // 1.3.6.1.2.1.2.2.1.14.<i>
Oid IfOutErrors(std::uint32_t ifindex);  // 1.3.6.1.2.1.2.2.1.20.<i>
Oid IfCrcErrors(std::uint32_t ifindex);  // 1.3.6.1.4.1.9.2.2.1.1.12.<i>
Oid IfTable();                        // 1.3.6.1.2.1.2.2
}  // namespace oid

/// One network device (router/switch) exposing a MIB.
class SnmpAgent {
 public:
  explicit SnmpAgent(std::string device_name);

  const std::string& name() const { return name_; }
  MibTree& mib() { return mib_; }
  const MibTree& mib() const { return mib_; }

  /// Convenience counter updates used by the network simulator.
  void AddTraffic(std::uint32_t ifindex, std::int64_t in_octets,
                  std::int64_t out_octets);
  void AddErrors(std::uint32_t ifindex, std::int64_t in_errors,
                 std::int64_t crc_errors);

  /// Numeric read of any counter/integer OID.
  Result<std::int64_t> Counter(const Oid& oid) const;

 private:
  std::string name_;
  MibTree mib_;
};

}  // namespace jamm::sysmon
