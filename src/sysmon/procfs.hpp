// ProcfsProvider: best-effort real-host metrics from the Linux /proc
// filesystem, so the TCP-transport examples monitor the machine they run
// on. Reads /proc/stat (CPU, interrupts, context switches), /proc/meminfo
// (memory), and /proc/net/snmp (TCP retransmits). CPU percentages are
// derived from jiffy deltas between consecutive samples.
#pragma once

#include <string>

#include "sysmon/metrics.hpp"

namespace jamm::sysmon {

class ProcfsProvider final : public MetricsProvider {
 public:
  /// `proc_root` overridable for tests (point at a fixture directory).
  explicit ProcfsProvider(std::string hostname,
                          std::string proc_root = "/proc");

  const std::string& host() const override { return hostname_; }

  Result<HostMetrics> Sample() override;

 private:
  struct CpuJiffies {
    std::int64_t user = 0, nice = 0, system = 0, idle = 0, iowait = 0,
                 irq = 0, softirq = 0;
    std::int64_t total() const {
      return user + nice + system + idle + iowait + irq + softirq;
    }
  };

  Result<CpuJiffies> ReadCpu() const;

  std::string hostname_;
  std::string proc_root_;
  CpuJiffies last_;
  bool have_last_ = false;
};

}  // namespace jamm::sysmon
