// Host metrics substrate. JAMM host sensors are thin wrappers over tools
// like vmstat/netstat/iostat; in this reproduction those tools read from a
// MetricsProvider. SimHost (simhost.hpp) provides controllable synthetic
// counters; ProcfsProvider (procfs.hpp) reads the real /proc on Linux.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace jamm::sysmon {

/// One snapshot of a host's counters. Percentages are 0-100; *cumulative*
/// counters only ever grow (sensors report deltas or current values as the
/// underlying tools would).
struct HostMetrics {
  // vmstat-style
  double cpu_user_pct = 0;
  double cpu_sys_pct = 0;
  double cpu_idle_pct = 100;
  std::int64_t mem_total_kb = 0;
  std::int64_t mem_free_kb = 0;
  std::int64_t interrupts = 0;      // cumulative
  std::int64_t context_switches = 0;  // cumulative

  // netstat/tcpdump-style
  std::int64_t tcp_retransmits = 0;  // cumulative
  std::int64_t tcp_window_bytes = 0;  // current advertised window

  // iostat-style
  std::int64_t disk_read_kb = 0;   // cumulative
  std::int64_t disk_write_kb = 0;  // cumulative
};

class MetricsProvider {
 public:
  virtual ~MetricsProvider() = default;

  /// The host this provider describes (fills the ULM HOST field).
  virtual const std::string& host() const = 0;

  /// Take one snapshot. May fail (e.g. /proc unreadable).
  virtual Result<HostMetrics> Sample() = 0;
};

}  // namespace jamm::sysmon
