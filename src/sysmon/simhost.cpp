#include "sysmon/simhost.hpp"

#include <algorithm>

namespace jamm::sysmon {

SimHost::SimHost(std::string name, const Clock& clock, std::uint64_t seed)
    : name_(std::move(name)), clock_(clock), rng_(seed) {
  counters_.mem_total_kb = 512 * 1024;  // 512 MB, a healthy 2000-era server
  counters_.mem_free_kb = 384 * 1024;
  counters_.tcp_window_bytes = 64 * 1024;
}

Result<HostMetrics> SimHost::Sample() {
  const TimePoint now = clock_.Now();
  // Expire finished bursts, accumulate the active ones.
  std::erase_if(bursts_, [now](const Burst& b) { return b.until <= now; });
  double user = base_user_pct_;
  double sys = base_sys_pct_;
  for (const auto& b : bursts_) {
    user += b.user_pct;
    sys += b.sys_pct;
  }
  HostMetrics m = counters_;
  // ±1.5% deterministic noise keeps traces organic without hiding signal.
  m.cpu_user_pct = std::clamp(user + rng_.UniformReal(-1.5, 1.5), 0.0, 100.0);
  m.cpu_sys_pct = std::clamp(sys + rng_.UniformReal(-1.5, 1.5), 0.0, 100.0);
  m.cpu_idle_pct =
      std::clamp(100.0 - m.cpu_user_pct - m.cpu_sys_pct, 0.0, 100.0);
  return m;
}

void SimHost::SetBaseLoad(double user_pct, double sys_pct) {
  base_user_pct_ = user_pct;
  base_sys_pct_ = sys_pct;
}

void SimHost::AddLoadBurst(double user_pct, double sys_pct,
                           Duration duration) {
  bursts_.push_back({user_pct, sys_pct, clock_.Now() + duration});
}

void SimHost::SetMemory(std::int64_t total_kb, std::int64_t free_kb) {
  counters_.mem_total_kb = total_kb;
  counters_.mem_free_kb = std::min(free_kb, total_kb);
}

void SimHost::ConsumeMemory(std::int64_t kb) {
  counters_.mem_free_kb = std::max<std::int64_t>(0, counters_.mem_free_kb - kb);
}

void SimHost::ReleaseMemory(std::int64_t kb) {
  counters_.mem_free_kb =
      std::min(counters_.mem_total_kb, counters_.mem_free_kb + kb);
}

void SimHost::AddTcpRetransmits(std::int64_t n) {
  counters_.tcp_retransmits += n;
}

void SimHost::SetTcpWindow(std::int64_t bytes) {
  counters_.tcp_window_bytes = bytes;
}

void SimHost::AddDiskIo(std::int64_t read_kb, std::int64_t write_kb) {
  counters_.disk_read_kb += read_kb;
  counters_.disk_write_kb += write_kb;
}

void SimHost::AddInterrupts(std::int64_t n) { counters_.interrupts += n; }

void SimHost::AddContextSwitches(std::int64_t n) {
  counters_.context_switches += n;
}

int SimHost::StartProcess(const std::string& name) {
  ProcessInfo& info = processes_[name];
  info.name = name;
  info.pid = next_pid_++;
  info.running = true;
  info.crashed = false;
  return info.pid;
}

void SimHost::StopProcess(const std::string& name, bool crashed) {
  auto it = processes_.find(name);
  if (it == processes_.end()) return;
  it->second.running = false;
  it->second.crashed = crashed;
}

void SimHost::SetProcessUsers(const std::string& name, std::int64_t users) {
  auto it = processes_.find(name);
  if (it != processes_.end()) it->second.users = users;
}

std::optional<ProcessInfo> SimHost::FindProcess(const std::string& name) const {
  auto it = processes_.find(name);
  if (it == processes_.end()) return std::nullopt;
  return it->second;
}

std::vector<ProcessInfo> SimHost::Processes() const {
  std::vector<ProcessInfo> out;
  out.reserve(processes_.size());
  for (const auto& [name, info] : processes_) out.push_back(info);
  return out;
}

void SimHost::AddPortTraffic(std::uint16_t port, std::int64_t bytes) {
  PortState& state = ports_[port];
  state.bytes += bytes;
  state.last_activity = clock_.Now();
}

std::int64_t SimHost::PortTraffic(std::uint16_t port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? 0 : it->second.bytes;
}

TimePoint SimHost::LastPortActivity(std::uint16_t port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? -1 : it->second.last_activity;
}

}  // namespace jamm::sysmon
