// FederationTopology (ISSUE 6) — how a federation tree publishes its
// shape in the sensor directory, the same way the paper's sensors and
// gateways publish theirs (§3: "publish the location of all sensors and
// their associated gateway"). Each level — leaf gateway or republisher —
// registers one jammFederation entry under "ou=federation, <suffix>"
// carrying its subscribe address, its tier (0 = leaf, parents one more
// than their tallest child), and its direct children. Consumers then walk
// the entries to find the root, or the NEAREST level that covers the set
// of leaves they care about — subscribing low keeps traffic off the upper
// tiers.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "directory/entry.hpp"
#include "directory/replication.hpp"

namespace jamm::federation {

class FederationTopology {
 public:
  FederationTopology(directory::DirectoryPool& pool, directory::Dn suffix)
      : pool_(pool), suffix_(std::move(suffix)) {}

  struct Level {
    std::string name;
    std::string address;  // where a GatewayService serves this level
    int tier = 0;         // 0 = leaf gateway
    std::vector<std::string> children;  // direct child level / leaf names
  };

  /// Publish (or refresh) one level's entry.
  Status RegisterLevel(const Level& level, const std::string& principal = "");

  /// Every registered level, leaf tiers first (tier ascending, then name).
  Result<std::vector<Level>> Levels(const std::string& principal = "") const;

  /// The highest-tier level (ties broken by name) — where a consumer that
  /// wants everything subscribes.
  Result<Level> Root(const std::string& principal = "") const;

  /// The lowest-tier level whose descendant leaves include every name in
  /// `leaves` (ties broken by name). NotFound when no level covers them.
  Result<Level> NearestCovering(const std::vector<std::string>& leaves,
                                const std::string& principal = "") const;

 private:
  directory::DirectoryPool& pool_;
  directory::Dn suffix_;
};

}  // namespace jamm::federation
