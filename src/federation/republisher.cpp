#include "federation/republisher.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/id.hpp"
#include "telemetry/metrics.hpp"
#include "ulm/encoded.hpp"

namespace jamm::federation {

namespace {

std::uint64_t Fnv1a(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string SourceKey(const ulm::Record& rec) {
  std::string key;
  key.reserve(rec.host().size() + rec.prog().size() +
              rec.event_name().size() + 2);
  key += rec.host();
  key += '|';
  key += rec.prog();
  key += '|';
  key += rec.event_name();
  return key;
}

/// Process-wide fed.* counters, resolved once (the registry returns stable
/// references; see MetricsRegistry).
struct FedCounters {
  telemetry::Counter& records_in =
      telemetry::Metrics().counter("fed.records_in");
  telemetry::Counter& republished =
      telemetry::Metrics().counter("fed.republished");
  telemetry::Counter& pushdown_records =
      telemetry::Metrics().counter("fed.pushdown_records");
  telemetry::Counter& duplicates_dropped =
      telemetry::Metrics().counter("fed.duplicates_dropped");
  telemetry::Counter& stale_dropped =
      telemetry::Metrics().counter("fed.stale_dropped");
  telemetry::Counter& summary_merges =
      telemetry::Metrics().counter("fed.summary_merges");
  telemetry::Counter& summary_fallbacks =
      telemetry::Metrics().counter("fed.summary_fallbacks");
};

FedCounters& Counters() {
  static FedCounters counters;
  return counters;
}

}  // namespace

// ------------------------------------------------------------ StreamDeduper

StreamDeduper::Verdict StreamDeduper::Admit(const ulm::Record& rec) {
  SourceState& state = sources_[SourceKey(rec)];
  if (state.has_last && rec.timestamp() < state.last_ts) {
    return Verdict::kStale;
  }
  const std::uint64_t hash = Fnv1a(rec.ToAscii());
  if (state.has_last && rec.timestamp() == state.last_ts) {
    for (std::uint64_t seen : state.hashes_at_last_ts) {
      if (seen == hash) return Verdict::kDuplicate;
    }
    state.hashes_at_last_ts.push_back(hash);
    return Verdict::kAdmit;
  }
  state.has_last = true;
  state.last_ts = rec.timestamp();
  state.hashes_at_last_ts.clear();
  state.hashes_at_last_ts.push_back(hash);
  return Verdict::kAdmit;
}

// ------------------------------------------------------- RepublisherGateway

RepublisherGateway::RepublisherGateway(std::string name, const Clock& clock,
                                       Options options)
    : name_(std::move(name)),
      options_(std::move(options)),
      local_(name_, clock) {}

Status RepublisherGateway::AddDownstream(DownstreamSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("downstream name must not be empty");
  }
  if (!spec.dialer) {
    return Status::InvalidArgument("downstream needs a dialer");
  }
  for (const Downstream& d : downstreams_) {
    if (d.name == spec.name) {
      return Status::AlreadyExists("downstream " + spec.name);
    }
  }
  downstreams_.push_back(Downstream{spec.name, std::move(spec.dialer),
                                    spec.supports_pushdown,
                                    std::move(spec.auth_payload),
                                    /*cached_token=*/"", nullptr, nullptr});
  // A child added after groups formed joins every group: filtered feed if
  // it can push down, local-eval slice of its base stream otherwise.
  for (auto& [key, group] : groups_) {
    AttachChildToGroup(group, key, downstreams_.back());
  }
  return Status::Ok();
}

std::unique_ptr<gateway::GatewayClient> RepublisherGateway::MakeChildClient(
    Downstream& child) const {
  auto client = std::make_unique<gateway::GatewayClient>(child.dialer);
  // Tokens chase the tree (ISSUE 10): once the child has minted a
  // capability token for this tier's identity, new feeds present it —
  // one signature verify at the child instead of a full certificate
  // chain + policy evaluation per connection.
  if (!child.cached_token.empty()) {
    client->AuthenticateWithAsync(gateway::kAuthTokenPrefix +
                                  child.cached_token);
  } else if (!child.auth_payload.empty()) {
    client->AuthenticateWithAsync(child.auth_payload);
  }
  return client;
}

void RepublisherGateway::EnsureBaseFeeds() {
  for (Downstream& d : downstreams_) {
    if (d.base) continue;
    const bool need = !options_.lazy_base_stream ||
                      local_.subscription_count() > 0 ||
                      GroupNeedsChildBase(d.name);
    if (!need) continue;
    d.base = MakeChildClient(d);
    // Async + dialer-backed: recorded even if the child is down right now,
    // replayed on reconnect. Once established a base feed stays up —
    // tearing it down would lose dedup continuity and last-event state.
    d.base->SubscribeBatchedAsync(name_ + "/base", gateway::FilterSpec{},
                                  options_.batch_records);
  }
}

void RepublisherGateway::RecoverChildAuth() {
  auto recover = [](Downstream& d, gateway::GatewayClient* client) {
    if (!client || !client->auth_rejected()) return;
    // The child refused this client's credential — typically a harvested
    // capability token that aged past its TTL before the client (or its
    // reconnect) presented it. Retire the dead token so new clients stop
    // replaying it.
    if (!d.cached_token.empty() &&
        client->auth_credential() ==
            gateway::kAuthTokenPrefix + d.cached_token) {
      d.cached_token.clear();
    }
    // Fall back to the strongest credential now available: a fresher
    // harvested token if one exists, else the configured cert bundle.
    // Re-auth only with a credential DIFFERENT from the refused one, so a
    // genuinely denied principal cannot re-dial the child every pump.
    const std::string fallback =
        !d.cached_token.empty()
            ? gateway::kAuthTokenPrefix + d.cached_token
            : d.auth_payload;
    if (!fallback.empty() && fallback != client->auth_credential()) {
      (void)client->ReauthenticateWith(fallback);
    }
  };
  for (Downstream& d : downstreams_) {
    recover(d, d.base.get());
    recover(d, d.summary.get());
  }
  for (auto& [key, group] : groups_) {
    for (auto& [child, client] : group.feeds) {
      for (Downstream& d : downstreams_) {
        if (d.name == child) {
          recover(d, client.get());
          break;
        }
      }
    }
  }
}

bool RepublisherGateway::GroupNeedsChildBase(const std::string& child) const {
  for (const auto& [key, group] : groups_) {
    if (group.local_eval.count(child) > 0) return true;
  }
  return false;
}

void RepublisherGateway::AttachChildToGroup(PushdownGroup& group,
                                            const std::string& group_key,
                                            Downstream& child) {
  if (child.supports_pushdown) {
    auto client = MakeChildClient(child);
    client->SubscribeBatchedAsync(name_ + "/" + group_key, group.spec,
                                  options_.batch_records);
    group.feeds.emplace(child.name, std::move(client));
  } else {
    group.local_eval.emplace(child.name, gateway::EventFilter(group.spec));
  }
}

std::size_t RepublisherGateway::Pump() {
  EnsureBaseFeeds();
  // Feeds whose credential the child refused on the previous pump (the
  // gw.error was adopted during that pump's drain) re-authenticate now
  // with the cert bundle / a fresher token.
  RecoverChildAuth();
  FedCounters& counters = Counters();
  std::size_t processed = 0;

  // Base stream: merge every child's feed, time-order, dedup, republish.
  std::vector<std::pair<std::size_t, ulm::Record>> merged;
  for (std::size_t i = 0; i < downstreams_.size(); ++i) {
    Downstream& d = downstreams_[i];
    if (!d.base) continue;
    for (ulm::Record& rec : d.base->DrainEvents()) {
      merged.emplace_back(i, std::move(rec));
    }
    // Harvest the child-minted capability token for future connections
    // (pushdown feeds, summary client, re-dials). The base feed's own
    // reconnect replays its recorded credential regardless.
    if (!d.base->token().empty() && d.base->token() != d.cached_token) {
      d.cached_token = d.base->token();
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.timestamp() < b.second.timestamp();
                   });
  for (auto& [child_index, rec] : merged) {
    ++processed;
    ++stats_.records_in;
    counters.records_in.Increment();
    switch (base_dedup_.Admit(rec)) {
      case StreamDeduper::Verdict::kStale:
        ++stats_.stale_dropped;
        counters.stale_dropped.Increment();
        break;
      case StreamDeduper::Verdict::kDuplicate:
        ++stats_.duplicates_dropped;
        counters.duplicates_dropped.Increment();
        break;
      case StreamDeduper::Verdict::kAdmit:
        AdmitBaseRecord(downstreams_[child_index].name, rec);
        break;
    }
  }

  // Pushdown groups: each group's feeds are already filtered at the
  // source; merge, order, dedup per group, deliver to members.
  for (auto& [key, group] : groups_) {
    std::vector<ulm::Record> records;
    for (auto& [child, client] : group.feeds) {
      for (ulm::Record& rec : client->DrainEvents()) {
        records.push_back(std::move(rec));
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const ulm::Record& a, const ulm::Record& b) {
                       return a.timestamp() < b.timestamp();
                     });
    for (const ulm::Record& rec : records) {
      ++processed;
      ++stats_.records_in;
      counters.records_in.Increment();
      switch (group.dedup.Admit(rec)) {
        case StreamDeduper::Verdict::kStale:
          ++stats_.stale_dropped;
          counters.stale_dropped.Increment();
          break;
        case StreamDeduper::Verdict::kDuplicate:
          ++stats_.duplicates_dropped;
          counters.duplicates_dropped.Increment();
          break;
        case StreamDeduper::Verdict::kAdmit:
          ++stats_.pushdown_records;
          counters.pushdown_records.Increment();
          DeliverToGroup(group, rec);
          break;
      }
    }
  }
  return processed;
}

void RepublisherGateway::AdmitBaseRecord(const std::string& child,
                                         const ulm::Record& rec) {
  ++stats_.republished;
  Counters().republished.Increment();
  local_.Publish(rec);
  // Fallback path: groups whose spec this child cannot evaluate see its
  // slice of the base stream through a local stateful filter instead.
  for (auto& [key, group] : groups_) {
    auto it = group.local_eval.find(child);
    if (it != group.local_eval.end() && it->second.ShouldDeliver(rec)) {
      DeliverToGroup(group, rec);
    }
  }
}

std::size_t RepublisherGateway::DeliverToGroup(PushdownGroup& group,
                                               const ulm::Record& rec) {
  ulm::EncodedRecord encoded(rec);
  std::size_t delivered = 0;
  for (const std::shared_ptr<GroupMember>& member : group.members) {
    if (!member->active) continue;
    member->callback(encoded);
    ++delivered;
  }
  return delivered;
}

void RepublisherGateway::Publish(const ulm::Record& rec) {
  ++stats_.records_in;
  ++stats_.republished;
  FedCounters& counters = Counters();
  counters.records_in.Increment();
  counters.republished.Increment();
  local_.Publish(rec);
}

void RepublisherGateway::PublishFlat(ulm::FlatRecord& rec) {
  ++stats_.records_in;
  ++stats_.republished;
  FedCounters& counters = Counters();
  counters.records_in.Increment();
  counters.republished.Increment();
  local_.PublishFlat(rec);
}

Result<std::string> RepublisherGateway::SubscribeEncoded(
    const std::string& consumer, gateway::FilterSpec spec,
    EncodedCallback callback, const std::string& principal) {
  // An unfiltered "all" subscription wants the whole merged stream — the
  // local fan-out already holds it; pushing it down would just duplicate
  // the base feeds. Everything else (value filters, glob-restricted all)
  // shrinks at the source, so it goes downstream when enabled.
  const bool pushable =
      options_.enable_pushdown && !downstreams_.empty() &&
      !(spec.mode == gateway::FilterSpec::Mode::kAll && spec.event_glob.empty());
  if (!pushable) {
    return local_.SubscribeEncoded(consumer, std::move(spec),
                                   std::move(callback), principal);
  }
  if (Status access = local_.CheckAccess(gateway::Action::kSubscribe, principal);
      !access.ok()) {
    return access;
  }
  const std::string key = spec.ToString();
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    it = groups_.emplace(key, PushdownGroup{}).first;
    it->second.spec = spec;
    for (Downstream& child : downstreams_) {
      AttachChildToGroup(it->second, key, child);
    }
  }
  auto member = std::make_shared<GroupMember>();
  member->id = MakeId(name_ + "-fsub");
  member->consumer = consumer;
  member->callback = std::move(callback);
  it->second.members.push_back(member);
  return member->id;
}

Status RepublisherGateway::Unsubscribe(const std::string& subscription_id) {
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    PushdownGroup& group = it->second;
    for (const std::shared_ptr<GroupMember>& member : group.members) {
      if (member->id != subscription_id || !member->active) continue;
      member->active = false;
      const bool any_active =
          std::any_of(group.members.begin(), group.members.end(),
                      [](const auto& m) { return m->active; });
      if (!any_active) {
        // Last member gone: tear the group down. Destroying the feed
        // clients closes their channels; each downstream drops the
        // filtered subscription on its next poll.
        groups_.erase(it);
      }
      return Status::Ok();
    }
  }
  return local_.Unsubscribe(subscription_id);
}

Result<ulm::Record> RepublisherGateway::Query(
    const std::string& event_glob, const std::string& principal) const {
  return local_.Query(event_glob, principal);
}

Result<std::string> RepublisherGateway::QueryXml(
    const std::string& event_glob, const std::string& principal) const {
  return local_.QueryXml(event_glob, principal);
}

Result<gateway::SummaryData> RepublisherGateway::GetSummary(
    const std::string& event_name, const std::string& principal) const {
  if (Status access = local_.CheckAccess(gateway::Action::kSummary, principal);
      !access.ok()) {
    return access;
  }
  if (downstreams_.empty()) return local_.GetSummary(event_name, principal);
  double sum_1m = 0, sum_10m = 0, sum_60m = 0;
  gateway::SummaryData merged;
  for (Downstream& child : downstreams_) {
    if (!child.summary) {
      child.summary = MakeChildClient(child);
    }
    Result<gateway::SummaryData> fetched =
        options_.summary_fetcher
            ? options_.summary_fetcher(child.name, *child.summary, event_name)
            : child.summary->Summary(event_name);
    if (!fetched.ok()) {
      ++stats_.summary_fallbacks;
      Counters().summary_fallbacks.Increment();
      return local_.GetSummary(event_name, principal);
    }
    sum_1m += fetched->avg_1m * static_cast<double>(fetched->count_1m);
    sum_10m += fetched->avg_10m * static_cast<double>(fetched->count_10m);
    sum_60m += fetched->avg_60m * static_cast<double>(fetched->count_60m);
    merged.count_1m += fetched->count_1m;
    merged.count_10m += fetched->count_10m;
    merged.count_60m += fetched->count_60m;
  }
  if (merged.count_1m > 0) {
    merged.avg_1m = sum_1m / static_cast<double>(merged.count_1m);
  }
  if (merged.count_10m > 0) {
    merged.avg_10m = sum_10m / static_cast<double>(merged.count_10m);
  }
  if (merged.count_60m > 0) {
    merged.avg_60m = sum_60m / static_cast<double>(merged.count_60m);
  }
  ++stats_.summary_merges;
  Counters().summary_merges.Increment();
  return merged;
}

Status RepublisherGateway::StartSensor(const std::string& /*sensor*/,
                                       const std::string& principal) {
  if (Status access =
          local_.CheckAccess(gateway::Action::kStartSensor, principal);
      !access.ok()) {
    return access;
  }
  return Status::Unimplemented("republisher " + name_ +
                               " owns no sensors; target the leaf gateway");
}

Status RepublisherGateway::StopSensor(const std::string& sensor,
                                      const std::string& principal) {
  return StartSensor(sensor, principal);
}

void RepublisherGateway::EnableSummary(const std::string& event_name,
                                       const std::string& value_field) {
  local_.EnableSummary(event_name, value_field);
}

RepublisherGateway::Stats RepublisherGateway::stats() const {
  Stats out = stats_;
  out.downstreams = downstreams_.size();
  out.pushdown_groups = groups_.size();
  return out;
}

}  // namespace jamm::federation
