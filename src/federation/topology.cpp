#include "federation/topology.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/strings.hpp"
#include "directory/filter.hpp"
#include "directory/schema.hpp"

namespace jamm::federation {

namespace {

FederationTopology::Level LevelFromEntry(const directory::Entry& entry) {
  FederationTopology::Level level;
  level.name = entry.dn().IsRoot() ? "" : entry.dn().leaf().value;
  level.address = entry.Get(directory::schema::kAttrAddress);
  if (auto tier = ParseInt(entry.Get(directory::schema::kAttrTier));
      tier.ok()) {
    level.tier = static_cast<int>(*tier);
  }
  for (std::string& child :
       Split(entry.Get(directory::schema::kAttrChildren), ',')) {
    if (!child.empty()) level.children.push_back(std::move(child));
  }
  return level;
}

/// Leaf names reachable beneath `name`: children that are themselves
/// registered levels recurse; anything else is a leaf gateway name.
void CollectLeaves(const std::string& name,
                   const std::map<std::string, FederationTopology::Level>&
                       by_name,
                   std::set<std::string>& visited,
                   std::set<std::string>& leaves) {
  if (!visited.insert(name).second) return;  // cycle guard
  auto it = by_name.find(name);
  if (it == by_name.end() || it->second.children.empty()) {
    leaves.insert(name);
    return;
  }
  for (const std::string& child : it->second.children) {
    CollectLeaves(child, by_name, visited, leaves);
  }
}

}  // namespace

Status FederationTopology::RegisterLevel(const Level& level,
                                         const std::string& principal) {
  if (level.name.empty()) {
    return Status::InvalidArgument("federation level needs a name");
  }
  // Levels live under "ou=federation, <suffix>"; the container and the
  // level publish as one batch — one lock, one WAL commit, one snapshot
  // swap on the serving shard (ISSUE 9).
  directory::Entry container(suffix_.Child("ou", "federation"));
  container.Set(directory::schema::kAttrObjectClass, "organizationalUnit");
  return pool_.UpsertBatch(
      {container,
       directory::schema::MakeFederationEntry(suffix_, level.name,
                                              level.address, level.tier,
                                              level.children)},
      principal);
}

Result<std::vector<FederationTopology::Level>> FederationTopology::Levels(
    const std::string& principal) const {
  auto filter = directory::Filter::Parse("(objectclass=jammFederation)");
  if (!filter.ok()) return filter.status();
  auto found = pool_.Search(suffix_.Child("ou", "federation"),
                            directory::SearchScope::kSubtree, *filter,
                            principal);
  if (!found.ok()) return found.status();
  std::vector<Level> levels;
  levels.reserve(found->entries.size());
  for (const directory::Entry& entry : found->entries) {
    levels.push_back(LevelFromEntry(entry));
  }
  std::sort(levels.begin(), levels.end(), [](const Level& a, const Level& b) {
    return a.tier != b.tier ? a.tier < b.tier : a.name < b.name;
  });
  return levels;
}

Result<FederationTopology::Level> FederationTopology::Root(
    const std::string& principal) const {
  auto levels = Levels(principal);
  if (!levels.ok()) return levels.status();
  if (levels->empty()) return Status::NotFound("no federation levels");
  return levels->back();  // Levels() sorts tier-ascending, name-ascending
}

Result<FederationTopology::Level> FederationTopology::NearestCovering(
    const std::vector<std::string>& leaves,
    const std::string& principal) const {
  if (leaves.empty()) {
    return Status::InvalidArgument("no leaves to cover");
  }
  auto levels = Levels(principal);
  if (!levels.ok()) return levels.status();
  std::map<std::string, Level> by_name;
  for (const Level& level : *levels) by_name.emplace(level.name, level);
  // Levels() order is tier-ascending, so the first covering hit is nearest.
  for (const Level& level : *levels) {
    std::set<std::string> visited, reachable;
    CollectLeaves(level.name, by_name, visited, reachable);
    const bool covers =
        std::all_of(leaves.begin(), leaves.end(),
                    [&reachable](const std::string& leaf) {
                      return reachable.count(leaf) > 0;
                    });
    if (covers) return level;
  }
  return Status::NotFound("no federation level covers all leaves");
}

}  // namespace jamm::federation
