// RepublisherGateway (ISSUE 6) — one level of a hierarchical gateway
// federation. The paper's scalability argument (§2.3) is that a gateway
// multiplies one sensor stream to N consumers; a republisher applies the
// same argument one level up: it subscribes (as a batched, reconnecting
// GatewayClient) to N downstream gateways, merges their streams into one
// deduplicated, time-ordered feed, and re-exports that feed through the
// normal GatewaySurface — so a GatewayService can front it and the next
// tier up subscribes to it exactly like a leaf gateway. Trees of arbitrary
// depth compose out of existing pieces.
//
// Filter/summary pushdown: a subscription whose FilterSpec a downstream
// can evaluate (on-change / threshold / delta, or a glob-restricted "all")
// is not served from the local fan-out. Instead the spec is forwarded
// downstream — the leaf gateway filters at the source, and only surviving
// events cross the wire. Subscriptions with identical specs share one
// pushdown group (one downstream stream per child, not per subscriber).
// A downstream that predates the feature (supports_pushdown = false in
// its DownstreamSpec) is served by evaluating the same spec locally
// against its slice of the base stream — byte-identical output either way.
//
// Summary requests merge the children's 1/10/60-minute windows weighted
// by sample count, falling back to the locally-computed window when a
// child cannot answer.
//
// Single-threaded and poll-driven like every other component: the host
// loop calls Pump() to drain downstream feeds, then PollOnce() on the
// GatewayService fronting this republisher.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "gateway/filter.hpp"
#include "gateway/gateway.hpp"
#include "gateway/service.hpp"
#include "gateway/summary.hpp"
#include "ulm/record.hpp"

namespace jamm::federation {

/// Drops exact duplicates and stale (time-travelling) records from one
/// merged stream. Keyed per source (host|prog|event): a record older than
/// the source's newest is stale; a record at the newest timestamp is a
/// duplicate iff its full ASCII form was already admitted at that
/// timestamp (same-timestamp records with different payloads are legal).
class StreamDeduper {
 public:
  enum class Verdict { kAdmit, kDuplicate, kStale };
  Verdict Admit(const ulm::Record& rec);
  std::size_t source_count() const { return sources_.size(); }

 private:
  struct SourceState {
    TimePoint last_ts = 0;
    bool has_last = false;
    std::vector<std::uint64_t> hashes_at_last_ts;  // FNV-1a of ToAscii()
  };
  std::map<std::string, SourceState> sources_;
};

class RepublisherGateway : public gateway::GatewaySurface {
 public:
  /// Fetches one child's summary; injectable so single-threaded tests can
  /// bypass the blocking wire round-trip (the default fetcher calls
  /// GatewayClient::Summary, which needs the downstream service pumped
  /// concurrently).
  using SummaryFetcher = std::function<Result<gateway::SummaryData>(
      const std::string& child, gateway::GatewayClient& client,
      const std::string& event_name)>;

  struct Options {
    /// Records per gw.event.batch frame on downstream feeds.
    std::size_t batch_records = 32;
    /// Forward eligible filter specs downstream instead of evaluating in
    /// the local fan-out. Off = every subscription is served locally from
    /// the merged base stream (the equivalence baseline in tests).
    bool enable_pushdown = true;
    /// Defer each child's base ("all") subscription until something needs
    /// it — a local subscriber or a local-eval fallback group.
    /// With this on, a tier whose only consumers are pushdown groups costs
    /// each leaf gateway exactly ONE outgoing stream.
    bool lazy_base_stream = false;
    SummaryFetcher summary_fetcher;  // null = blocking wire fetch
  };

  RepublisherGateway(std::string name, const Clock& clock, Options options);
  RepublisherGateway(std::string name, const Clock& clock)
      : RepublisherGateway(std::move(name), clock, Options{}) {}

  // ------------------------------------------------------- tree building

  struct DownstreamSpec {
    std::string name;  // child level or leaf gateway name
    gateway::GatewayClient::Dialer dialer;
    /// False for a downstream that predates filter pushdown: its slice of
    /// every pushdown group is evaluated locally instead.
    bool supports_pushdown = true;
    /// Credential presented to the child on every new connection via
    /// gw.auth (ISSUE 10) — typically a "cert\n…" bundle built with
    /// security::MakeCertAuthPayload from THIS republisher's identity
    /// (each tier presents its own certificate downstream, not the
    /// consumer's). Empty = connect unauthenticated. Once the child mints
    /// a capability token it is cached and preferred for subsequent
    /// connections, so tokens chase the tree instead of re-running the
    /// full certificate evaluation per feed.
    std::string auth_payload;
  };
  Status AddDownstream(DownstreamSpec spec);
  std::size_t downstream_count() const { return downstreams_.size(); }

  /// Drain every downstream feed: merge, time-order, dedup, and republish
  /// base-stream records through the local fan-out; deliver pushdown-group
  /// records to their members. Returns records processed (admitted or
  /// dropped). Also (re-)establishes any base feeds that became needed.
  std::size_t Pump();

  // ----------------------------------------------------- GatewaySurface

  const std::string& name() const override { return name_; }
  const Clock& clock() const override { return local_.clock(); }

  /// Local injection — the republisher's own events (gw.overload from the
  /// service fronting it, overview alerts) enter the fan-out here. The
  /// flat form hands the record straight to the local gateway's flat
  /// fan-out (no legacy materialization).
  void Publish(const ulm::Record& rec) override;
  void PublishFlat(ulm::FlatRecord& rec) override;

  Result<std::string> SubscribeEncoded(
      const std::string& consumer, gateway::FilterSpec spec,
      EncodedCallback callback, const std::string& principal = "") override;
  Status Unsubscribe(const std::string& subscription_id) override;

  Result<ulm::Record> Query(const std::string& event_glob = "",
                            const std::string& principal = "") const override;
  Result<std::string> QueryXml(
      const std::string& event_glob = "",
      const std::string& principal = "") const override;

  /// Children's summaries merged weighted by sample count; any child
  /// failure falls back to the local window over the base stream.
  Result<gateway::SummaryData> GetSummary(
      const std::string& event_name,
      const std::string& principal = "") const override;

  /// A republisher owns no sensors; control must target the leaf gateway.
  Status StartSensor(const std::string& sensor,
                     const std::string& principal = "") override;
  Status StopSensor(const std::string& sensor,
                    const std::string& principal = "") override;

  // ------------------------------------------------------------- local

  /// The embedded EventGateway serving non-pushed subscriptions, queries,
  /// and the local summary fallback. Access control set here governs the
  /// whole surface (pushdown subscriptions are checked against it too).
  gateway::EventGateway& local() { return local_; }
  const gateway::EventGateway& local() const { return local_; }

  /// Track local 1/10/60-minute summaries of `event_name` over the merged
  /// base stream (the pushdown-era fallback for GetSummary).
  void EnableSummary(const std::string& event_name,
                     const std::string& value_field = "VAL");

  // ----------------------------------------------------------- telemetry

  /// Exact accounting: records_in == republished + pushdown_records +
  /// duplicates_dropped + stale_dropped — every record entering the
  /// republisher lands in exactly one bucket.
  struct Stats {
    std::uint64_t records_in = 0;         // arrived on any feed (or Publish)
    std::uint64_t republished = 0;        // entered the local fan-out
    std::uint64_t pushdown_records = 0;   // delivered via a pushdown feed
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t stale_dropped = 0;
    std::uint64_t summary_merges = 0;
    std::uint64_t summary_fallbacks = 0;
    std::size_t downstreams = 0;
    std::size_t pushdown_groups = 0;
  };
  Stats stats() const;

  std::size_t pushdown_group_count() const { return groups_.size(); }

 private:
  struct Downstream {
    std::string name;
    gateway::GatewayClient::Dialer dialer;
    bool supports_pushdown = true;
    /// Credential replayed on every fresh connection (DownstreamSpec).
    std::string auth_payload;
    /// Last capability token the child minted for this republisher,
    /// harvested from the base feed in Pump(). New feed/summary clients
    /// present this (cheap token verify) instead of the full certificate
    /// bundle. When the child refuses a replayed token (expired TTL),
    /// Pump()'s RecoverChildAuth notices the rejection, retires the dead
    /// token, and re-authenticates the client with the cert bundle —
    /// which mints a fresh token for the next harvest.
    std::string cached_token;
    /// Base "all" feed; null until EnsureBaseFeeds decides it is needed.
    std::unique_ptr<gateway::GatewayClient> base;
    /// Lazy request/reply client for summary fetches (kept off the event
    /// feeds so a blocking reply wait never swallows stream traffic).
    std::unique_ptr<gateway::GatewayClient> summary;
  };

  struct GroupMember {
    std::string id;
    std::string consumer;
    EncodedCallback callback;
    bool active = true;
  };

  /// One pushdown group: every subscription sharing a FilterSpec. Children
  /// that can evaluate the spec feed it over dedicated filtered streams;
  /// the rest are evaluated locally against the base stream.
  struct PushdownGroup {
    gateway::FilterSpec spec;
    std::vector<std::shared_ptr<GroupMember>> members;
    /// child name → dedicated filtered feed (supports_pushdown children).
    /// Separate connections per (group × child) because event messages
    /// carry no subscription id — streams on a shared connection could
    /// not be demultiplexed back to their group.
    std::map<std::string, std::unique_ptr<gateway::GatewayClient>> feeds;
    /// child name → local filter state (non-pushdown children).
    std::map<std::string, gateway::EventFilter> local_eval;
    StreamDeduper dedup;
  };

  void EnsureBaseFeeds();
  /// Re-authenticate any child client whose credential the child refused
  /// (ISSUE 10): retire a rejected cached token and fall back to a
  /// fresher token or the cert bundle, replaying the client's
  /// subscriptions under the restored identity.
  void RecoverChildAuth();
  /// New connection to `child`, authenticated with the cached token when
  /// one exists, else the configured auth payload (ISSUE 10).
  std::unique_ptr<gateway::GatewayClient> MakeChildClient(
      Downstream& child) const;
  void AttachChildToGroup(PushdownGroup& group, const std::string& group_key,
                          Downstream& child);
  /// Encode once, deliver to every active member.
  std::size_t DeliverToGroup(PushdownGroup& group, const ulm::Record& rec);
  /// Admit one base-stream record from `child`: republish + fallback eval.
  void AdmitBaseRecord(const std::string& child, const ulm::Record& rec);
  bool GroupNeedsChildBase(const std::string& child) const;

  std::string name_;
  Options options_;
  gateway::EventGateway local_;
  /// mutable: GetSummary() is logically const but must lazily create and
  /// drive the per-child summary clients (channel IO mutates them anyway).
  mutable std::vector<Downstream> downstreams_;
  std::map<std::string, PushdownGroup> groups_;  // key: spec.ToString()
  StreamDeduper base_dedup_;
  mutable Stats stats_;
};

}  // namespace jamm::federation
