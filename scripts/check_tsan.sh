#!/usr/bin/env bash
# Build the concurrency-sensitive tests under ThreadSanitizer and run them.
#
# The telemetry registry (sharded atomic counters/histograms, trace id
# minting) and the gateway fan-out are the only deliberately concurrent
# code in the repo; they carry the ctest label "concurrency". The
# fault-injection suite (label "resilience") crosses threads in its
# reconnect/retry paths and runs here too, as does the seeded end-to-end
# chaos harness (label "chaos"), the segmented archive's lock-striped
# concurrent ingest/query suite (label "archive"), the archive analysis
# engine's queries racing ingest/compaction/compression (label
# "analysis", ISSUE 8), the republisher tree's merge/dedup/pushdown
# paths (label "federation"), the sharded WAL-backed directory's RCU
# snapshot reads racing structural writes and the reaper (label
# "directory", ISSUE 9), the flat
# ULM core (label "ulm", ISSUE 7): the lock-free symbol-interning table
# and the MPSC ring channel's multi-producer stress tests, and the
# security fast path (label "security", ISSUE 10): decision-cache lookups
# and token mint/adopt racing policy reloads and re-authentication churn,
# plus the wire-format fuzz corpus. This script
# configures a dedicated build tree with -DJAMM_SANITIZE=thread and runs
# exactly those labels, failing on any reported race.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" -DJAMM_SANITIZE=thread
cmake --build "$build_dir" -j --target telemetry_test gateway_test resilience_test chaos_test archive_test analysis_property_test federation_test directory_test flat_test ulm_test ulm_fuzz_test transport_test security_test security_fuzz_test
ctest --test-dir "$build_dir" -L 'concurrency|resilience|chaos|archive|analysis|federation|directory|ulm|security' --output-on-failure

echo "tsan: concurrency/resilience/chaos/archive/analysis/federation/directory/ulm/security-labelled tests clean"
