#!/usr/bin/env bash
# Regression gate for the JSON-emitting benchmarks.
#
# Runs each bench that writes a BENCH_*.json results file and compares the
# fresh numbers against the committed baseline at the repo root. Only
# machine-independent RATIO metrics are compared (speedups, send
# reductions): absolute rates vary with the host, but a ratio judged by
# the median of paired passes should reproduce anywhere. The one
# exception is bench_security's token_verify_per_s — the token fast path
# exists to keep verification off the critical-path budget, so a gross
# throughput collapse (beyond the same tolerance) is gated even though
# the absolute number is host-dependent. A fresh ratio may
# fall below baseline by at most TOLERANCE (fraction, default 0.35 — the
# bars are >= 5x/10x with baselines around 16x, so a third of headroom is
# noise allowance, not a loophole). The bench binaries additionally
# enforce their hard acceptance floors themselves (non-zero exit).
#
# A missing baseline is not an error: the fresh results are recorded as
# the new baseline ("no baseline, recording"), so a fresh checkout — or a
# newly added bench — bootstraps itself on first run.
#
# Usage: scripts/check_bench.sh [build-dir]   (default: build)
#   TOLERANCE=0.5 scripts/check_bench.sh      # loosen for noisy machines
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
tolerance="${TOLERANCE:-0.35}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target bench_pipeline_throughput bench_liveness bench_archive bench_federation bench_nlv_primitives bench_directory bench_security

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# compare_ratios <fresh.json> <baseline.json> <ratio-key> [<ratio-key>...]
# Missing baseline → record fresh as baseline and pass.
compare_ratios() {
  local fresh="$1" base="$2"
  shift 2
  if [[ ! -f "$base" ]]; then
    echo "  no baseline at ${base#$repo_root/}, recording fresh results"
    cp "$fresh" "$base"
    return 0
  fi
  python3 - "$fresh" "$base" "$tolerance" "$@" <<'PY'
import json, sys

fresh_path, base_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
keys = sys.argv[4:]
fresh = json.load(open(fresh_path))["results"]
base = json.load(open(base_path))["results"]

failed = False
for key in keys:
    f, b = fresh[key], base[key]
    floor = b * (1.0 - tol)
    verdict = "ok" if f >= floor else "REGRESSION"
    failed |= f < floor
    print(f"  {key}: fresh {f:.2f}x vs baseline {b:.2f}x "
          f"(min allowed {floor:.2f}x) ... {verdict}")
sys.exit(1 if failed else 0)
PY
}

echo "== bench_pipeline_throughput (floors enforced by the bench itself)"
"$build_dir/bench/bench_pipeline_throughput" "$tmp/BENCH_pipeline.json"
compare_ratios "$tmp/BENCH_pipeline.json" "$repo_root/BENCH_pipeline.json" \
  encode_once_speedup_64subs send_reduction_batch16 flat_speedup \
  ring_hop_speedup

echo "== bench_liveness (floors enforced by the bench itself)"
"$build_dir/bench/bench_liveness" "$tmp/BENCH_liveness.json"
compare_ratios "$tmp/BENCH_liveness.json" "$repo_root/BENCH_liveness.json" \
  renew_vs_republish_speedup_10k

echo "== bench_archive (floors enforced by the bench itself)"
"$build_dir/bench/bench_archive" "$tmp/BENCH_archive.json"
compare_ratios "$tmp/BENCH_archive.json" "$repo_root/BENCH_archive.json" \
  ingest_speedup_4t flat_ingest_speedup_4t convert_ingest_speedup_4t

echo "== bench_federation (floors enforced by the bench itself)"
"$build_dir/bench/bench_federation" "$tmp/BENCH_federation.json"
compare_ratios "$tmp/BENCH_federation.json" "$repo_root/BENCH_federation.json" \
  pushdown_send_reduction

echo "== bench_nlv_primitives (floors enforced by the bench itself)"
"$build_dir/bench/bench_nlv_primitives" "$tmp/BENCH_analysis.json"
compare_ratios "$tmp/BENCH_analysis.json" "$repo_root/BENCH_analysis.json" \
  sealed_compression_ratio lifeline_bytes_reduction

echo "== bench_directory (floors enforced by the bench itself)"
"$build_dir/bench/bench_directory" "$tmp/BENCH_directory.json"
compare_ratios "$tmp/BENCH_directory.json" "$repo_root/BENCH_directory.json" \
  read_saturation_ratio recovery_vs_populate_speedup

echo "== bench_security (floors enforced by the bench itself)"
"$build_dir/bench/bench_security" "$tmp/BENCH_security.json"
compare_ratios "$tmp/BENCH_security.json" "$repo_root/BENCH_security.json" \
  authz_overhead_ratio cache_speedup token_verify_per_s

echo "bench: no regression beyond tolerance ${tolerance} vs committed baselines"
