// E1 (Figure 2): the three nlv graph primitives — lifeline, loadline,
// point — regenerated from a synthetic event log shaped like the figure:
// a few object lifelines stepping through ordered events, a continuous
// load curve, and scattered point occurrences. Prints the rendered chart
// and the extracted series statistics.
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "netlogger/analysis.hpp"
#include "netlogger/nlv.hpp"

using namespace jamm;            // NOLINT: bench brevity
using namespace jamm::netlogger; // NOLINT

int main() {
  Rng rng(2);
  std::vector<ulm::Record> log;

  // Lifelines: 6 objects, 4 ordered stages each (Figure 2 shows rising
  // polylines).
  const char* stages[] = {"STAGE_A", "STAGE_B", "STAGE_C", "STAGE_D"};
  for (int obj = 0; obj < 6; ++obj) {
    TimePoint t = obj * 1500 * kMillisecond;
    for (const char* stage : stages) {
      t += rng.Uniform(200, 500) * kMillisecond;
      ulm::Record rec(t, "host", "app", "Usage", stage);
      rec.SetField("OBJ.ID", static_cast<std::int64_t>(obj));
      log.push_back(rec);
    }
  }
  // Loadline: CPU wave.
  for (int s = 0; s < 120; ++s) {
    ulm::Record rec(s * 100 * kMillisecond, "host", "vmstat", "Usage",
                    "CPU_LOAD");
    rec.SetField("VAL", 50.0 + 40.0 * std::sin(s / 6.0));
    log.push_back(rec);
  }
  // Points: sporadic error marks.
  for (int i = 0; i < 8; ++i) {
    log.push_back(ulm::Record(rng.Uniform(0, 12 * kSecond), "host",
                              "netstat", "Warning", "X_RETRANSMIT"));
  }

  auto lifelines = BuildLifelines(log, {"OBJ.ID"});
  NlvRenderer nlv(0, 12 * kSecond, 100);
  nlv.AddPointRow("point:   X_RETRANSMIT",
                  ExtractPoints(log, "X_RETRANSMIT"));
  nlv.AddLoadlineRow("loadline:CPU_LOAD",
                     ExtractSeries(log, "CPU_LOAD", "VAL"));
  nlv.AddLifelines({"STAGE_A", "STAGE_B", "STAGE_C", "STAGE_D"}, lifelines);

  std::printf("E1 / Figure 2 — nlv graph primitives\n");
  std::printf("paper: nlv draws lifelines (object paths), loadlines "
              "(scaled curves), and points (single occurrences).\n\n");
  std::printf("%s\n", nlv.Render().c_str());

  auto e2e = SegmentLatency(lifelines, "STAGE_A", "STAGE_D");
  std::printf("lifelines: %zu objects; STAGE_A→STAGE_D latency mean %.2fs "
              "(min %.2f, max %.2f)\n",
              lifelines.size(), e2e.mean_s, e2e.min_s, e2e.max_s);
  auto load = ExtractSeries(log, "CPU_LOAD", "VAL");
  auto resampled = ResampleMean(load, kSecond);
  std::printf("loadline: %zu samples → %zu one-second buckets\n",
              load.size(), resampled.size());
  std::printf("points: %zu retransmit marks\n",
              ExtractPoints(log, "X_RETRANSMIT").size());
  std::printf("\nshape check: all three primitive species render and "
              "extract — OK\n");
  return 0;
}
