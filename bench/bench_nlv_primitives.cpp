// E1 (Figure 2) repointed at the server side (ISSUE 8): the three nlv
// graph primitives — lifeline, loadline, point — are no longer extracted
// client-side from a raw record dump; the archive's AnalysisEngine
// reconstructs them next to the data and ships summaries. This bench
// builds a ~10M-event archive shaped like the figure (request/reply trace
// hops, a CPU load wave, sporadic retransmit marks), compresses the
// sealed segments, and measures:
//
//   * sealed-segment compression ratio (dictionary + delta-varint blobs
//     vs the resting flat-chunk footprint);
//   * lifeline latency: a selective lifeline query (0.2% time window)
//     against the same reconstruction forced over the whole archive, with
//     QueryStats bytes_scanned as the pushdown-economy measure;
//   * the loadline/point/aggregate primitives over the same window, and
//     one rpc round through ArchiveClient to pin the wire path.
//
// Emits BENCH_analysis.json (path = argv[1], default ./BENCH_analysis.json)
// and enforces the hard acceptance floors itself:
//   * sealed compression ratio >= 1.5x;
//   * selective lifeline bytes_scanned reduction vs brute force >= 2x;
//   * the rpc client reproduces the local engine's lifelines and stats.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "archive/analysis.hpp"
#include "archive/archive.hpp"
#include "archive/query.hpp"
#include "common/clock.hpp"
#include "rpc/registry.hpp"
#include "rpc/wire.hpp"
#include "transport/inproc.hpp"
#include "ulm/flat.hpp"
#include "ulm/record.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

constexpr int kEvents = 10000000;
constexpr Duration kTick = kMillisecond;  // 10M events -> ~2.8 h span
constexpr TimePoint kSpan = static_cast<TimePoint>(kEvents) * kTick;
constexpr int kThreads = 4;
constexpr std::size_t kFrameRecords = 4096;
constexpr int kQueryPasses = 5;
constexpr int kBrutePasses = 3;

const char* const kHops[4] = {"REQ.SEND", "REQ.RECV", "REP.SEND",
                              "REP.RECV"};

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Figure-2-shaped event `i` of the global stream: every 8th event is one
// hop of a 4-hop request/reply trace (trace n spans events 32n..32n+24,
// hops 8 ms apart), every 97th a retransmit point mark, the rest a CPU
// load wave. Trace density ~12.5% keeps the full-archive brute-force
// lifeline join (~1.25M hops, ~312k traces) inside a sane footprint.
ulm::Record MakeEvent(int i) {
  const TimePoint ts = static_cast<TimePoint>(i) * kTick;
  const std::string host = "host" + std::to_string(i % 8);
  if (i % 8 == 0) {
    const int hop = (i / 8) % 4;
    const int trace = i / 32;
    ulm::Record rec(ts, host, "app", "Usage", kHops[hop]);
    const std::string trace_id = "t" + std::to_string(trace);
    rec.SetField("TRACE.ID", trace_id);
    rec.SetField("SPAN.ID", trace_id + "#" + std::to_string(hop));
    rec.SetField("VAL", static_cast<double>(1 + (trace % 40)));
    return rec;
  }
  if (i % 97 == 0) {
    return ulm::Record(ts, host, "netstat", "Warning", "NET.RETRANSMIT");
  }
  ulm::Record rec(ts, host, "vmstat", "Usage", "CPU.LOAD");
  rec.SetField("VAL", 50.0 + 40.0 * std::sin(i / 60000.0));
  return rec;
}

// 4 threads build flat frames of their stride-share and splice them in —
// the ISSUE-7 production ingest shape, so a 10M-event archive assembles
// in seconds.
void FillArchive(archive::EventArchive& ar) {
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ar, t] {
      ulm::FlatBatch batch;
      for (int i = t; i < kEvents; i += kThreads) {
        (void)batch.Append(MakeEvent(i));
        if (batch.size() == kFrameRecords) {
          ar.IngestBatch(std::move(batch));
          batch = {};
        }
      }
      if (batch.size() > 0) ar.IngestBatch(std::move(batch));
    });
  }
  for (auto& w : workers) w.join();
}

struct LifelineRun {
  double query_us = 0;
  std::size_t lifelines = 0;
  std::size_t hops = 0;
  archive::QueryStats stats;
};

LifelineRun RunLifelines(const archive::AnalysisEngine& engine,
                         const archive::AnalysisSpec& spec, TimePoint t0,
                         TimePoint t1, int passes) {
  LifelineRun run;
  std::vector<double> micros;
  for (int pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    auto lifelines = engine.Lifelines(spec, t0, t1, &run.stats);
    micros.push_back(SecondsSince(start) * 1e6);
    run.lifelines = lifelines.size();
    run.hops = 0;
    for (const auto& line : lifelines) run.hops += line.hops.size();
  }
  run.query_us = Median(micros);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_analysis.json";

  std::printf("E1 / Figure 2 — nlv primitives, server side (ISSUE 8)\n");
  std::printf("paper: nlv draws lifelines (object paths), loadlines "
              "(scaled curves), and points (single occurrences); the\n"
              "archive now reconstructs all three next to the data and "
              "ships summaries, not records.\n\n");

  // ---- build + seal + compress the 10M-event archive
  archive::SegmentConfig config;
  config.max_records = 65536;
  config.max_span = 1000 * kHour;
  config.stripes = 8;
  archive::EventArchive ar("bench", 1, config);
  const auto build_start = std::chrono::steady_clock::now();
  FillArchive(ar);
  if (ar.size() != static_cast<std::size_t>(kEvents)) {
    std::fprintf(stderr, "archive lost records: %zu of %d\n", ar.size(),
                 kEvents);
    return 1;
  }
  ar.SealActive();
  const std::size_t bytes_flat = ar.StorageBytes();
  const auto compress_start = std::chrono::steady_clock::now();
  const std::size_t compressed_segments = ar.CompressSealed();
  const double compress_s = SecondsSince(compress_start);
  const std::size_t bytes_sealed = ar.StorageBytes();
  const double compression_ratio =
      static_cast<double>(bytes_flat) / static_cast<double>(bytes_sealed);
  std::printf("archive: %d events in %.1fs; %zu segments compressed in "
              "%.1fs: %.1f MB -> %.1f MB (%.2fx)\n",
              kEvents, SecondsSince(build_start), compressed_segments,
              compress_s, bytes_flat / 1e6, bytes_sealed / 1e6,
              compression_ratio);

  // ---- lifeline: selective window vs brute force over everything
  const TimePoint width = kSpan / 500;  // 0.2% of the span, ~20 s
  const TimePoint t0 = kSpan / 2 - width / 2;
  const archive::AnalysisEngine engine(ar);
  archive::AnalysisSpec trace_spec;
  trace_spec.event_glob = "RE*";  // the four hop event names
  const LifelineRun narrow =
      RunLifelines(engine, trace_spec, t0, t0 + width, kQueryPasses);
  const LifelineRun brute =
      RunLifelines(engine, trace_spec, 0, kSpan, kBrutePasses);
  const double bytes_reduction = static_cast<double>(brute.stats.bytes_scanned) /
                                 static_cast<double>(narrow.stats.bytes_scanned);
  std::printf("lifeline narrow (%.1f s window): %8.0f us, %6zu traces, "
              "%7zu hops, scanned %zu/%zu segments, %.1f MB\n",
              width / static_cast<double>(kSecond), narrow.query_us,
              narrow.lifelines, narrow.hops, narrow.stats.segments_scanned,
              narrow.stats.segments_total, narrow.stats.bytes_scanned / 1e6);
  std::printf("lifeline brute  (full span):     %8.0f us, %6zu traces, "
              "%7zu hops, scanned %zu/%zu segments, %.1f MB\n",
              brute.query_us, brute.lifelines, brute.hops,
              brute.stats.segments_scanned, brute.stats.segments_total,
              brute.stats.bytes_scanned / 1e6);
  std::printf("bytes-scanned reduction, selective vs brute: %.1fx\n",
              bytes_reduction);

  // End-to-end hop-chain latency from the server-reconstructed lifelines
  // (the Figure-2 STAGE_A -> STAGE_D measure, now computed by the engine's
  // TRACE.ID join instead of a client-side scan).
  archive::QueryStats stats;
  auto lifelines = engine.Lifelines(trace_spec, t0, t0 + width, &stats);
  double lat_sum = 0, lat_min = 1e18, lat_max = 0;
  std::size_t complete = 0;
  for (const auto& line : lifelines) {
    if (line.hops.size() != 4) continue;  // truncated at the window edge
    const double s = (line.hops.back().ts - line.hops.front().ts) /
                     static_cast<double>(kSecond);
    lat_sum += s;
    lat_min = std::min(lat_min, s);
    lat_max = std::max(lat_max, s);
    ++complete;
  }
  const double lat_mean = complete ? lat_sum / complete : 0;
  std::printf("lifeline latency (REQ.SEND -> REP.RECV): mean %.3fs over "
              "%zu complete traces (min %.3f, max %.3f)\n",
              lat_mean, complete, lat_min, lat_max);

  // ---- loadline + points + aggregate over the same window
  archive::AnalysisSpec load_spec;
  load_spec.event_glob = "CPU.LOAD";
  load_spec.value_field = "VAL";
  load_spec.bucket = kSecond;
  auto buckets = engine.Loadline(load_spec, t0, t0 + width, &stats);
  std::printf("loadline: %zu one-second buckets (first mean %.1f)\n",
              buckets.size(), buckets.empty() ? 0.0 : buckets.front().mean);

  archive::AnalysisSpec point_spec;
  point_spec.event_glob = "NET.RETRANSMIT";
  auto points = engine.Points(point_spec, t0, t0 + width, &stats);
  std::printf("points: %zu retransmit marks in the window\n", points.size());

  auto rows = engine.Aggregate(trace_spec, 0, kSpan, &stats);
  std::size_t agg_records = 0;
  for (const auto& row : rows) agg_records += row.count;
  std::printf("aggregate pushdown: %zu hop records -> %zu summary rows "
              "over the full span\n\n",
              agg_records, rows.size());

  // ---- one rpc round: the client must reproduce the local engine
  SimClock clock(0);
  rpc::Registry registry(clock);
  transport::InProcNetwork net;
  if (!archive::RegisterArchiveService(registry, ar).ok()) {
    std::fprintf(stderr, "FAIL: archive service registration\n");
    return 1;
  }
  auto listener = net.Listen("bench-arch");
  if (!listener.ok()) {
    std::fprintf(stderr, "FAIL: inproc listen\n");
    return 1;
  }
  rpc::RpcServer server(registry, std::move(*listener));
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    while (!stop.load()) {
      server.PollOnce();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  archive::ArchiveClient client([&net] { return net.Dial("bench-arch"); },
                                archive::ArchiveObjectName("bench"));
  auto remote = client.QueryLifelines(trace_spec, t0, t0 + width);
  stop.store(true);
  pump.join();
  const bool rpc_ok =
      remote.ok() && remote->size() == narrow.lifelines &&
      client.last_query_stats().bytes_scanned == narrow.stats.bytes_scanned;
  std::printf("rpc round trip: %zu lifelines, server reported %.1f MB "
              "scanned — %s\n",
              remote.ok() ? remote->size() : 0,
              client.last_query_stats().bytes_scanned / 1e6,
              rpc_ok ? "matches local engine" : "MISMATCH");

  // ---- hard acceptance floors
  if (compression_ratio < 1.5) {
    std::fprintf(stderr,
                 "FAIL: sealed compression ratio %.2fx (floor: 1.5x)\n",
                 compression_ratio);
    return 1;
  }
  if (bytes_reduction < 2.0) {
    std::fprintf(stderr,
                 "FAIL: selective lifeline scanned only %.2fx fewer bytes "
                 "than brute force (floor: 2x)\n",
                 bytes_reduction);
    return 1;
  }
  if (brute.lifelines != static_cast<std::size_t>(kEvents) / 32 ||
      brute.hops != static_cast<std::size_t>(kEvents) / 8) {
    std::fprintf(stderr,
                 "FAIL: brute lifeline join returned %zu traces / %zu hops "
                 "(want %d / %d)\n",
                 brute.lifelines, brute.hops, kEvents / 32, kEvents / 8);
    return 1;
  }
  if (rows.size() != 4 || agg_records != static_cast<std::size_t>(kEvents) / 8) {
    std::fprintf(stderr, "FAIL: aggregate saw %zu rows / %zu records\n",
                 rows.size(), agg_records);
    return 1;
  }
  if (!rpc_ok) {
    std::fprintf(stderr, "FAIL: rpc client disagrees with the local engine\n");
    return 1;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"bench_nlv_primitives\",\n");
  std::fprintf(json,
               "  \"workload\": \"10M events (~12.5%% four-hop traces, CPU "
               "load wave, retransmit marks) in a sealed+compressed "
               "segmented archive; server-side lifeline/loadline/point/agg "
               "via AnalysisEngine; selective 0.2%%-window lifeline vs the "
               "same join over the full span; one ArchiveClient rpc round "
               "for wire parity\",\n");
  std::fprintf(json,
               "  \"method\": \"median of %d selective / %d brute query "
               "passes; byte and compression ratios are deterministic, "
               "machine-independent\",\n",
               kQueryPasses, kBrutePasses);
  std::fprintf(json, "  \"results\": {\n");
  std::fprintf(json, "    \"sealed_compression_ratio\": %.2f,\n",
               compression_ratio);
  std::fprintf(json, "    \"lifeline_bytes_reduction\": %.2f,\n",
               bytes_reduction);
  std::fprintf(json, "    \"storage_flat_mb\": %.1f,\n", bytes_flat / 1e6);
  std::fprintf(json, "    \"storage_compressed_mb\": %.1f,\n",
               bytes_sealed / 1e6);
  std::fprintf(json, "    \"lifeline_narrow_query_us\": %.0f,\n",
               narrow.query_us);
  std::fprintf(json, "    \"lifeline_brute_query_us\": %.0f,\n",
               brute.query_us);
  std::fprintf(json, "    \"lifeline_narrow_bytes_mb\": %.1f,\n",
               narrow.stats.bytes_scanned / 1e6);
  std::fprintf(json, "    \"lifeline_brute_bytes_mb\": %.1f,\n",
               brute.stats.bytes_scanned / 1e6);
  std::fprintf(json, "    \"lifeline_narrow_traces\": %zu,\n",
               narrow.lifelines);
  std::fprintf(json, "    \"lifeline_latency_mean_s\": %.3f,\n", lat_mean);
  std::fprintf(json, "    \"loadline_buckets\": %zu,\n", buckets.size());
  std::fprintf(json, "    \"point_marks\": %zu,\n", points.size());
  std::fprintf(json, "    \"agg_rows\": %zu,\n", rows.size());
  std::fprintf(json, "    \"agg_records_summarized\": %zu\n", agg_records);
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
