// ISSUE 1 satellite: self-telemetry must be cheap enough to leave on.
//
// Drives the gateway's instrumented Publish() hot path (counters, the
// fan-out ScopedTimer histogram, trace-less fast path) twice with the same
// workload: once with the default registry enabled and once with
// set_enabled(false) — the "no-op registry", where every Add()/Record()
// collapses to one relaxed load and a branch. Reports the wall-clock delta
// and fails (exit 1) if the enabled path is more than kMaxOverheadPct
// slower, judged by the median of paired-pass ratios so background noise
// shared by a pair cancels out.
//
// Also reports the raw per-op cost of Counter::Add and Histogram::Record
// so the numbers in DESIGN.md's "Self-telemetry" section stay honest.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "gateway/gateway.hpp"
#include "sensors/host_sensors.hpp"
#include "sysmon/simhost.hpp"
#include "telemetry/metrics.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

constexpr int kRepeats = 9;
constexpr int kPublishes = 200000;
constexpr double kMaxOverheadPct = 5.0;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One timed pass: kPublishes events through a gateway with 4 subscribers
// and summary windows — the realistic shape of the instrumented path.
double TimedPublishPass(const std::vector<ulm::Record>& events) {
  SimClock clock;
  gateway::EventGateway gw("gw", clock);
  for (const auto& rec : events) gw.EnableSummary(rec.event_name());
  std::uint64_t sink = 0;
  for (int c = 0; c < 4; ++c) {
    (void)gw.Subscribe("consumer-" + std::to_string(c), {},
                       [&sink](const ulm::Record&) { ++sink; });
  }
  const double t0 = NowSeconds();
  for (int i = 0; i < kPublishes; ++i) {
    gw.Publish(events[static_cast<std::size_t>(i) % events.size()]);
  }
  const double elapsed = NowSeconds() - t0;
  if (sink == 0) std::fprintf(stderr, "impossible: no deliveries\n");
  return elapsed;
}

double OnePass(bool telemetry_on, const std::vector<ulm::Record>& events) {
  telemetry::Metrics().set_enabled(telemetry_on);
  telemetry::Metrics().Reset();
  const double t = TimedPublishPass(events);
  telemetry::Metrics().set_enabled(true);
  return t;
}

// Per-op cost of the primitives themselves, single-threaded.
void ReportPrimitiveCosts() {
  auto& counter = telemetry::Metrics().counter("bench.raw_counter");
  auto& hist = telemetry::Metrics().histogram("bench.raw_hist");
  constexpr std::uint64_t kOps = 20000000;
  double t0 = NowSeconds();
  for (std::uint64_t i = 0; i < kOps; ++i) counter.Add(1);
  const double counter_ns = (NowSeconds() - t0) * 1e9 / kOps;
  t0 = NowSeconds();
  for (std::uint64_t i = 0; i < kOps; ++i) hist.Record(i & 1023);
  const double hist_ns = (NowSeconds() - t0) * 1e9 / kOps;
  std::printf("primitives (single thread): Counter::Add %.1f ns/op, "
              "Histogram::Record %.1f ns/op\n\n", counter_ns, hist_ns);
}

}  // namespace

int main() {
  std::printf("telemetry overhead — instrumented gateway Publish(), "
              "registry enabled vs no-op (best of %d × %d publishes)\n\n",
              kRepeats, kPublishes);

  // A realistic event: one vmstat record off the simulated host.
  SimClock clock;
  sysmon::SimHost host("dpss1.lbl.gov", clock);
  sensors::VmstatSensor vmstat("vmstat", clock, host, kSecond);
  (void)vmstat.Start();
  std::vector<ulm::Record> events;
  vmstat.Poll(events);

  ReportPrimitiveCosts();

  // Warm up both paths (metric registration, page faults) off the clock.
  (void)OnePass(false, events);
  (void)OnePass(true, events);

  // Run disabled/enabled as adjacent pairs so both halves of a pair see
  // the same CPU frequency and background load; the per-pair ratio cancels
  // that shared noise, and the median ratio shrugs off outlier pairs.
  double off = 1e30, on = 1e30;
  std::vector<double> ratios;
  for (int r = 0; r < kRepeats; ++r) {
    const double o = OnePass(false, events);
    const double e = OnePass(true, events);
    off = std::min(off, o);
    on = std::min(on, e);
    ratios.push_back(e / o);
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  const double rate_on = kPublishes / on;

  std::printf("%-22s | %12s | %14s\n", "registry", "seconds", "publishes/s");
  std::printf("%-22s | %12.4f | %14.0f\n", "no-op (disabled)", off,
              kPublishes / off);
  std::printf("%-22s | %12.4f | %14.0f\n", "enabled (default)", on, rate_on);
  std::printf("\noverhead (median of %d paired ratios): %+.2f%% "
              "(budget %.1f%%)\n", kRepeats, overhead_pct, kMaxOverheadPct);

  if (overhead_pct > kMaxOverheadPct) {
    std::printf("FAIL: telemetry overhead exceeds budget\n");
    return 1;
  }
  std::printf("PASS: telemetry is cheap enough to leave on\n");
  return 0;
}
