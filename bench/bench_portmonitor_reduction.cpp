// E6 (§2.2): "The port monitor has proven itself to be a very useful
// component, greatly reducing the total amount of monitoring data that
// must be collected and managed."
//
// Workload: a day of intermittent FTP sessions at several duty cycles;
// the same netstat+vmstat sensors run either always-on or port-triggered.
// Reports events collected and the reduction factor per duty cycle.
#include <cstdio>

#include "gateway/gateway.hpp"
#include "manager/sensor_manager.hpp"
#include "sensors/host_sensors.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

struct Outcome {
  std::uint64_t always_events = 0;
  std::uint64_t triggered_events = 0;
  std::uint64_t triggers = 0;
};

/// `active_minutes_per_hour`: how much of each hour has FTP traffic.
Outcome Run(int active_minutes_per_hour) {
  SimClock clock;
  sysmon::SimHost host("ftp.lbl.gov", clock);
  gateway::EventGateway gateway("gw", clock);
  manager::SensorManager::Options options;
  options.clock = &clock;
  options.host = &host;
  options.gateway = &gateway;
  options.gateway_address = "gw";
  options.port_idle_timeout = 10 * kSecond;
  manager::SensorManager manager(std::move(options));
  auto config = Config::ParseString(R"(
[sensor]
name = netstat-always
kind = netstat
interval_ms = 1000
mode = always

[sensor]
name = vmstat-always
kind = vmstat
interval_ms = 1000
mode = always

[sensor]
name = netstat-ftp
kind = netstat
interval_ms = 1000
mode = on-port
ports = 21

[sensor]
name = vmstat-ftp
kind = vmstat
interval_ms = 1000
mode = on-port
ports = 21
)");
  (void)manager.ApplyConfig(*config);

  // 24 simulated hours; each hour starts with the active window.
  for (int hour = 0; hour < 24; ++hour) {
    for (int second = 0; second < 3600; ++second) {
      if (second < active_minutes_per_hour * 60) {
        host.AddPortTraffic(21, 20000);  // FTP transfer in progress
      }
      manager.Tick();
      clock.Advance(kSecond);
    }
  }
  Outcome out;
  out.always_events = manager.FindSensor("netstat-always")->events_emitted() +
                      manager.FindSensor("vmstat-always")->events_emitted();
  out.triggered_events = manager.FindSensor("netstat-ftp")->events_emitted() +
                         manager.FindSensor("vmstat-ftp")->events_emitted();
  out.triggers = manager.stats().port_triggers;
  return out;
}

}  // namespace

int main() {
  std::printf("E6 / §2.2 — port-monitor data reduction "
              "(24 simulated hours of intermittent FTP)\n\n");
  std::printf("%-22s %14s %16s %10s %10s\n", "FTP duty cycle",
              "always-on", "port-triggered", "reduction", "triggers");
  for (int active : {1, 5, 15, 30, 60}) {
    Outcome out = Run(active);
    std::printf("%3d min/hour %9s %14llu %16llu %9.1fx %10llu\n", active,
                "", static_cast<unsigned long long>(out.always_events),
                static_cast<unsigned long long>(out.triggered_events),
                static_cast<double>(out.always_events) /
                    static_cast<double>(std::max<std::uint64_t>(
                        out.triggered_events, 1)),
                static_cast<unsigned long long>(out.triggers));
  }
  std::printf("\npaper: on-demand monitoring 'greatly reduces the total "
              "amount of data collected';\nshape: reduction grows as the "
              "monitored application idles more — OK if the factor above "
              "rises as duty cycle falls.\n");
  return 0;
}
