// Resilience layer overhead (ISSUE 2): the fault-injection decorator, the
// retry wrapper, and the circuit breaker all sit on hot send/call paths,
// so their no-fault cost must be negligible next to the transport itself.
//
// google-benchmark microbenchmarks:
//   * raw in-proc channel send/receive vs the same through FaultyChannel
//     with an all-pass plan (decorator tax);
//   * Retryer::Run on an immediately-successful call (wrapper tax);
//   * CircuitBreaker::Allow/RecordSuccess throughput (per-op gate tax).
#include <benchmark/benchmark.h>

#include <memory>

#include "common/clock.hpp"
#include "resilience/breaker.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"
#include "transport/inproc.hpp"

using namespace jamm;              // NOLINT: bench brevity
using namespace jamm::resilience;  // NOLINT

namespace {

void BM_RawChannelRoundTrip(benchmark::State& state) {
  auto [a, b] = transport::MakeChannelPair("bench");
  const transport::Message msg{"bench", "payload-of-reasonable-length"};
  for (auto _ : state) {
    (void)a->Send(msg);
    benchmark::DoNotOptimize(b->TryReceive());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RawChannelRoundTrip);

void BM_FaultyChannelPassThrough(benchmark::State& state) {
  auto [a, b] = transport::MakeChannelPair("bench");
  // An all-pass plan: every Send consults the plan and forwards.
  auto faulty = WrapWithFaults(std::move(a), FaultSpec{});
  const transport::Message msg{"bench", "payload-of-reasonable-length"};
  for (auto _ : state) {
    (void)faulty->Send(msg);
    benchmark::DoNotOptimize(b->TryReceive());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultyChannelPassThrough);

void BM_RetryerSuccessPath(benchmark::State& state) {
  SimClock clock;
  Retryer retryer({}, clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(retryer.Run([] { return Status::Ok(); }));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RetryerSuccessPath);

void BM_CircuitBreakerAllow(benchmark::State& state) {
  SimClock clock;
  CircuitBreaker breaker({}, clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(breaker.Allow());
    breaker.RecordSuccess();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CircuitBreakerAllow);

}  // namespace

BENCHMARK_MAIN();
