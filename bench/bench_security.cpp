// ISSUE 10: the cost of the security fast path. Authorization sits on the
// subscribe/lookup/start control plane, not the per-event data plane, so
// the design claim is twofold: (1) control-plane checks are cheap — a
// capability token verifies with one signature check, and the sharded
// decision cache answers repeat (principal × resource × action) queries
// without re-running the Akenti evaluation; (2) the per-event publish →
// fan-out path through a secured gateway pays (near) zero authz tax,
// because enforcement happened once at subscribe time.
//
// Emits BENCH_security.json (path = argv[1], default ./BENCH_security.json)
// and enforces hard floors: the secured pipeline must keep >=95% of the
// plain pipeline's throughput (<5% authz tax), and the decision cache must
// not be slower than the full evaluation it memoizes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "gateway/gateway.hpp"
#include "security/akenti.hpp"
#include "security/certificate.hpp"
#include "security/crypto.hpp"
#include "security/token.hpp"
#include "ulm/record.hpp"

using namespace jamm;            // NOLINT: bench brevity
using namespace jamm::security;  // NOLINT

namespace {

constexpr int kPasses = 15;
constexpr int kMints = 5000;        // Mint calls per pass
constexpr int kVerifies = 20000;    // Verify calls per pass
constexpr int kChecks = 20000;      // Authorizer::Check calls per pass
constexpr int kEvents = 20000;      // records published per pipeline pass
constexpr int kSubscribers = 4;     // fan-out width in the pipeline

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Results {
  double token_mint_per_s = 0;
  double token_verify_per_s = 0;
  double uncached_check_per_s = 0;
  double cached_check_per_s = 0;
  double cache_speedup = 0;
  double plain_events_per_s = 0;
  double secured_events_per_s = 0;
  double authz_overhead_ratio = 0;  // secured / plain; 1.0 = zero tax
};

/// The LBNL subscriber condition every workload below evaluates against.
PolicyEngine MakePolicy() {
  PolicyEngine policy;
  policy.AddUseCondition("gw.bench",
                         {{action::kSubscribe, action::kQuery, action::kLookup},
                          "/O=LBNL/*",
                          "",
                          ""});
  return policy;
}

void BenchTokens(Results& out) {
  Rng rng(601);
  TokenAuthority authority("gw.bench", rng);
  const std::set<std::string> actions = {action::kSubscribe, action::kQuery};
  constexpr TimePoint kNotBefore = 0;
  constexpr TimePoint kNotAfter = kHour;

  {
    std::vector<double> per_s;
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      std::size_t sealed = 0;
      for (int i = 0; i < kMints; ++i) {
        sealed += authority
                      .Mint("/O=LBNL/CN=alice", "gw.bench", actions,
                            kNotBefore, kNotAfter, /*generation=*/1)
                      .actions.size();
      }
      const double secs = SecondsSince(t0);
      if (sealed != static_cast<std::size_t>(kMints) * actions.size()) {
        std::fprintf(stderr, "mint sealed wrong action count\n");
        std::exit(1);
      }
      per_s.push_back(kMints / secs);
    }
    out.token_mint_per_s = Median(per_s);
  }

  {
    const CapabilityToken token = authority.Mint(
        "/O=LBNL/CN=alice", "gw.bench", actions, kNotBefore, kNotAfter, 1);
    // Sanity: a tampered copy must never verify, whatever the throughput.
    CapabilityToken forged = token;
    forged.principal = "/O=Evil/CN=mallory";
    if (authority.Verify(forged, kMinute).ok()) {
      std::fprintf(stderr, "FAIL: forged token verified\n");
      std::exit(1);
    }
    std::vector<double> per_s;
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      int good = 0;
      for (int i = 0; i < kVerifies; ++i) {
        good += authority.Verify(token, kMinute + i % 100).ok();
      }
      const double secs = SecondsSince(t0);
      if (good != kVerifies) {
        std::fprintf(stderr, "genuine token failed to verify\n");
        std::exit(1);
      }
      per_s.push_back(kVerifies / secs);
    }
    out.token_verify_per_s = Median(per_s);
  }
}

/// One authenticated principal against MakePolicy(); `cached` toggles the
/// decision cache so the same Check() loop measures a full Akenti
/// evaluation vs a cache hit.
double BenchChecks(bool cached) {
  SimClock clock(kSecond);
  Rng rng(cached ? 611 : 612);
  CertificateAuthority ca("/O=Grid/CN=bench-ca", rng);
  PolicyEngine policy = MakePolicy();
  Authorizer authorizer(policy, {ca.ca_certificate()}, clock);
  if (cached) authorizer.EnableDecisionCache();

  KeyPair keys = GenerateKeyPair(rng);
  Certificate cert =
      ca.IssueIdentity("/O=LBNL/CN=alice", keys.public_key, 0, kHour);
  auto principal = authorizer.Authenticate(cert);
  if (!principal.ok()) {
    std::fprintf(stderr, "bench principal failed to authenticate\n");
    std::exit(1);
  }

  std::vector<double> per_s;
  for (int pass = 0; pass < kPasses; ++pass) {
    const auto t0 = std::chrono::steady_clock::now();
    int granted = 0;
    for (int i = 0; i < kChecks; ++i) {
      granted +=
          authorizer.Check("gw.bench", action::kSubscribe, *principal);
    }
    const double secs = SecondsSince(t0);
    if (granted != kChecks) {
      std::fprintf(stderr, "authorized principal was denied\n");
      std::exit(1);
    }
    per_s.push_back(kChecks / secs);
  }
  ResetKeyRegistryForTest();
  return Median(per_s);
}

/// Publish -> fan-out throughput through an EventGateway; `secured` wires
/// the full Authorizer checker and subscribes with an authenticated
/// principal, plain uses no checker at all. Enforcement runs once per
/// Subscribe, so the per-event delta IS the authz tax.
double BenchPipeline(bool secured) {
  SimClock clock(kSecond);
  Rng rng(secured ? 621 : 622);
  CertificateAuthority ca("/O=Grid/CN=bench-ca", rng);
  PolicyEngine policy = MakePolicy();
  Authorizer authorizer(policy, {ca.ca_certificate()}, clock);
  authorizer.EnableDecisionCache();

  gateway::EventGateway gw("gw.bench", clock);
  std::string principal;
  if (secured) {
    gw.SetAccessChecker(authorizer.GatewayChecker("gw.bench"));
    KeyPair keys = GenerateKeyPair(rng);
    Certificate cert =
        ca.IssueIdentity("/O=LBNL/CN=alice", keys.public_key, 0, kHour);
    auto authed = authorizer.Authenticate(cert);
    if (!authed.ok()) {
      std::fprintf(stderr, "pipeline principal failed to authenticate\n");
      std::exit(1);
    }
    principal = *authed;
  }

  std::size_t delivered = 0;
  for (int s = 0; s < kSubscribers; ++s) {
    auto sub = gw.Subscribe("consumer" + std::to_string(s), {},
                            [&delivered](const ulm::Record&) { ++delivered; },
                            principal);
    if (!sub.ok()) {
      std::fprintf(stderr, "pipeline subscribe denied\n");
      std::exit(1);
    }
  }

  const ulm::Record rec(clock.Now(), "h1", "bench", "Usage", "CPU_LOAD");
  std::vector<double> per_s;
  for (int pass = 0; pass < kPasses; ++pass) {
    const std::size_t before = delivered;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kEvents; ++i) gw.Publish(rec);
    const double secs = SecondsSince(t0);
    if (delivered - before !=
        static_cast<std::size_t>(kEvents) * kSubscribers) {
      std::fprintf(stderr, "pipeline lost events\n");
      std::exit(1);
    }
    per_s.push_back(kEvents / secs);
  }
  ResetKeyRegistryForTest();
  return Median(per_s);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_security.json";

  Results r;
  BenchTokens(r);
  ResetKeyRegistryForTest();
  r.uncached_check_per_s = BenchChecks(/*cached=*/false);
  r.cached_check_per_s = BenchChecks(/*cached=*/true);
  r.cache_speedup = r.cached_check_per_s / r.uncached_check_per_s;
  r.plain_events_per_s = BenchPipeline(/*secured=*/false);
  r.secured_events_per_s = BenchPipeline(/*secured=*/true);
  r.authz_overhead_ratio = r.secured_events_per_s / r.plain_events_per_s;

  std::printf("token mint %.0f/s  verify %.0f/s\n", r.token_mint_per_s,
              r.token_verify_per_s);
  std::printf("check: uncached %.0f/s  cached %.0f/s  (%.2fx)\n",
              r.uncached_check_per_s, r.cached_check_per_s, r.cache_speedup);
  std::printf("pipeline: plain %.0f ev/s  secured %.0f ev/s  (ratio %.3f)\n",
              r.plain_events_per_s, r.secured_events_per_s,
              r.authz_overhead_ratio);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"bench_security\",\n");
  std::fprintf(json,
               "  \"workload\": \"capability token mint/verify; "
               "Authorizer::Check with and without the decision cache; "
               "publish fan-out (%d subscribers) through a plain vs secured "
               "gateway\",\n",
               kSubscribers);
  std::fprintf(json,
               "  \"method\": \"median of %d passes per metric; ratios are "
               "machine-independent\",\n",
               kPasses);
  std::fprintf(json, "  \"results\": {\n");
  std::fprintf(json, "    \"token_mint_per_s\": %.0f,\n", r.token_mint_per_s);
  std::fprintf(json, "    \"token_verify_per_s\": %.0f,\n",
               r.token_verify_per_s);
  std::fprintf(json, "    \"uncached_check_per_s\": %.0f,\n",
               r.uncached_check_per_s);
  std::fprintf(json, "    \"cached_check_per_s\": %.0f,\n",
               r.cached_check_per_s);
  std::fprintf(json, "    \"cache_speedup\": %.2f,\n", r.cache_speedup);
  std::fprintf(json, "    \"plain_events_per_s\": %.0f,\n",
               r.plain_events_per_s);
  std::fprintf(json, "    \"secured_events_per_s\": %.0f,\n",
               r.secured_events_per_s);
  std::fprintf(json, "    \"authz_overhead_ratio\": %.3f\n",
               r.authz_overhead_ratio);
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  // Hard floors. The secured pipeline does no per-event security work by
  // design; 0.95 rather than 1.0 absorbs scheduler noise on loaded hosts
  // while still catching anyone who sneaks a check into the publish path.
  if (r.authz_overhead_ratio < 0.95) {
    std::fprintf(stderr, "FAIL: authz tax over 5%% (ratio %.3f)\n",
                 r.authz_overhead_ratio);
    return 1;
  }
  if (r.cache_speedup < 1.0) {
    std::fprintf(stderr,
                 "FAIL: decision cache slower than full evaluation (%.2fx)\n",
                 r.cache_speedup);
    return 1;
  }
  return 0;
}
