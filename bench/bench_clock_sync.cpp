// E10 (§4.3): NTP synchronization accuracy vs distance from the time
// source. Paper: "By installing a GPS-based NTP server on each subnet...
// all the hosts' clocks can be synchronized to within about 0.25ms. If
// the closest time source is several IP router hops away, accuracy may
// decrease somewhat... synchronization within 1 ms is accurate enough for
// many types of analysis."
//
// Sweep: router hops 0..8 with per-hop queueing jitter; per hop, run an
// xntpd-style daemon on a drifting clock and report the residual error.
#include <cmath>
#include <cstdio>

#include <algorithm>
#include <cmath>
#include <vector>

#include "netsim/network.hpp"
#include "ntp/ntp.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

struct Residuals {
  double median_us = 0;
  double p95_us = 0;
};

Residuals Run(int hops, Duration jitter_per_hop) {
  netsim::Simulator sim;
  netsim::Network net(sim, 97 + static_cast<std::uint64_t>(hops));
  netsim::LinkConfig link;
  link.bandwidth_bps = 100e6;
  link.delay = 300;  // 300 µs per hop
  link.jitter = jitter_per_hop;
  netsim::NodeId prev = net.AddNode("gps-ntp-server");
  const netsim::NodeId server_node = prev;
  for (int i = 0; i < hops; ++i) {
    netsim::NodeId router = net.AddNode("router" + std::to_string(i));
    net.Connect(prev, router, link);
    prev = router;
  }
  const netsim::NodeId client_node = net.AddNode("client");
  net.Connect(prev, client_node, link);

  ntp::HostClock clock(sim.clock(), /*initial_offset=*/700 * kMillisecond,
                       /*drift_ppm=*/80);
  ntp::SntpServer server(net, server_node);
  ntp::SntpClient client(net, client_node, clock, server);
  ntp::NtpDaemon daemon(sim, client, /*interval=*/64 * kSecond);
  daemon.Start();

  // Warm up, then sample the residual error once a second for 10 min.
  sim.RunFor(2 * kMinute);
  std::vector<double> errors;
  for (int s = 0; s < 600; ++s) {
    sim.RunFor(kSecond);
    errors.push_back(std::abs(static_cast<double>(clock.ErrorVsTrue())));
  }
  std::sort(errors.begin(), errors.end());
  return {errors[errors.size() / 2], errors[errors.size() * 95 / 100]};
}

}  // namespace

int main() {
  std::printf("E10 / §4.3 — NTP accuracy vs router hops to the GPS time "
              "source\n");
  std::printf("(xntpd-style daemon, 64 s poll, 80 ppm drifting clock, "
              "300 µs/hop + queueing jitter)\n\n");
  std::printf("%6s %16s %16s   %s\n", "hops", "median error", "p95 error",
              "paper reference");
  for (int hops : {0, 1, 2, 4, 6, 8}) {
    Residuals r = Run(hops, /*jitter_per_hop=*/200);
    const char* note = hops == 0   ? "≈0.25 ms on the GPS subnet"
                       : hops == 4 ? "'several hops': ≲1 ms"
                                   : "";
    std::printf("%6d %13.0f µs %13.0f µs   %s\n", hops, r.median_us,
                r.p95_us, note);
  }
  Residuals subnet = Run(0, 200);
  Residuals far = Run(6, 200);
  std::printf("\nshape checks:\n");
  std::printf("  subnet-local sync ≈ %.0f µs (paper ~250 µs)  %s\n",
              subnet.median_us, subnet.median_us < 600 ? "OK" : "OFF");
  std::printf("  several hops ≈ %.0f µs, still within the paper's "
              "'1 ms is accurate enough'  %s\n",
              far.median_us, far.median_us < 1500 ? "OK" : "OFF");
  std::printf("  accuracy degrades with hops  %s\n",
              far.median_us > subnet.median_us ? "OK" : "OFF");
  return 0;
}
