// ISSUE 4: the cost of the liveness plane. Leases turn the read-optimized
// directory into something managers write to on every heartbeat, so the
// write path must be cheap at fleet scale: this bench measures heartbeat
// renewal batches and reaper sweeps at 1k and 10k leased entries, plus the
// machine-independent ratio against naive re-publication (Upsert per
// entry — what a manager without RenewLeases would do every heartbeat,
// invalidating the search cache each time).
//
// Emits BENCH_liveness.json (path = argv[1], default ./BENCH_liveness.json)
// and enforces a hard floor: batched renewal must not be slower than
// re-publication.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "directory/schema.hpp"
#include "directory/server.hpp"

using namespace jamm;             // NOLINT: bench brevity
using namespace jamm::directory;  // NOLINT

namespace {

constexpr int kPasses = 15;
constexpr TimePoint kFarFuture = 1000 * kMinute;

Dn Suffix() { return *Dn::Parse("ou=sensors, o=jamm"); }

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Fleet {
  std::unique_ptr<DirectoryServer> server;
  std::vector<Dn> dns;          // every leased sensor entry
  std::vector<Entry> entries;   // the same entries, for re-publication
};

/// `n` leased sensor entries across n/10 hosts, leases at `expiry`.
Fleet Populate(int n, TimePoint expiry) {
  Fleet fleet;
  fleet.server = std::make_unique<DirectoryServer>(Suffix(), "ldap://bench");
  const int hosts = n / 10;
  for (int h = 0; h < hosts; ++h) {
    const std::string host = "host" + std::to_string(h);
    (void)fleet.server->Upsert(schema::MakeHostEntry(Suffix(), host));
    for (int s = 0; s < 10; ++s) {
      auto entry = schema::MakeSensorEntry(Suffix(), host,
                                           "sensor" + std::to_string(s),
                                           s % 2 ? "cpu" : "network",
                                           "gw." + host, 1000, 0);
      schema::StampLease(entry, expiry);
      (void)fleet.server->Upsert(entry);
      fleet.dns.push_back(entry.dn());
      fleet.entries.push_back(std::move(entry));
    }
  }
  return fleet;
}

struct Scale {
  int entries;
  double renew_per_s;      // entries renewed per second, batched
  double republish_per_s;  // entries re-upserted per second (naive)
  double sweep_scan_per_s; // reaper pass over N live entries, per second
  double sweep_reap_per_s; // entries tombstoned per second, all expired
};

Scale RunScale(int n) {
  Scale out{};
  out.entries = n;

  // Heartbeat renewal: one RenewLeases batch covering the fleet.
  {
    auto fleet = Populate(n, kFarFuture);
    std::vector<double> per_s;
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      auto renewed =
          fleet.server->RenewLeases(fleet.dns, kFarFuture + pass + 1);
      const double secs = SecondsSince(t0);
      if (!renewed.ok() || static_cast<int>(*renewed) != n) {
        std::fprintf(stderr, "renewal lost entries at scale %d\n", n);
        std::exit(1);
      }
      per_s.push_back(n / secs);
    }
    out.renew_per_s = Median(per_s);
  }

  // Naive alternative: re-publish every entry each heartbeat.
  {
    auto fleet = Populate(n, kFarFuture);
    std::vector<double> per_s;
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      for (auto& entry : fleet.entries) {
        schema::StampLease(entry, kFarFuture + pass + 1);
        (void)fleet.server->Upsert(entry);
      }
      per_s.push_back(n / SecondsSince(t0));
    }
    out.republish_per_s = Median(per_s);
  }

  // Reaper sweep over a healthy fleet: pure scan, nothing to tombstone.
  {
    auto fleet = Populate(n, kFarFuture);
    std::vector<double> per_s;
    for (int pass = 0; pass < kPasses; ++pass) {
      const auto t0 = std::chrono::steady_clock::now();
      auto reaped = fleet.server->ExpireLeases(kFarFuture - 1);
      const double secs = SecondsSince(t0);
      if (!reaped.ok() || *reaped != 0) {
        std::fprintf(stderr, "scan sweep reaped entries at scale %d\n", n);
        std::exit(1);
      }
      per_s.push_back(n / secs);
    }
    out.sweep_scan_per_s = Median(per_s);
  }

  // Worst-case sweep: the whole fleet's leases expired at once (a site
  // power loss) — every entry tombstoned in one pass.
  {
    std::vector<double> per_s;
    for (int pass = 0; pass < kPasses; ++pass) {
      auto fleet = Populate(n, /*expiry=*/kSecond);
      const auto t0 = std::chrono::steady_clock::now();
      auto reaped = fleet.server->ExpireLeases(2 * kSecond);
      const double secs = SecondsSince(t0);
      if (!reaped.ok() || static_cast<int>(*reaped) != n) {
        std::fprintf(stderr, "reap sweep missed entries at scale %d\n", n);
        std::exit(1);
      }
      per_s.push_back(n / secs);
    }
    out.sweep_reap_per_s = Median(per_s);
  }

  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_liveness.json";

  const Scale s1k = RunScale(1000);
  const Scale s10k = RunScale(10000);
  const double speedup_1k = s1k.renew_per_s / s1k.republish_per_s;
  const double speedup_10k = s10k.renew_per_s / s10k.republish_per_s;

  for (const Scale& s : {s1k, s10k}) {
    std::printf(
        "entries %5d: renew %.0f/s  republish %.0f/s  sweep(scan) %.0f/s  "
        "sweep(reap) %.0f/s\n",
        s.entries, s.renew_per_s, s.republish_per_s, s.sweep_scan_per_s,
        s.sweep_reap_per_s);
  }
  std::printf("renew vs republish: %.2fx at 1k, %.2fx at 10k\n", speedup_1k,
              speedup_10k);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"bench_liveness\",\n");
  std::fprintf(json,
               "  \"workload\": \"leased sensor entries, 10 per host; "
               "heartbeat renewal batch vs per-entry re-publication; reaper "
               "sweeps healthy and fully-expired\",\n");
  std::fprintf(json,
               "  \"method\": \"median of %d passes per metric; ratios are "
               "machine-independent\",\n",
               kPasses);
  std::fprintf(json, "  \"results\": {\n");
  std::fprintf(json, "    \"scales\": [\n");
  for (const Scale& s : {s1k, s10k}) {
    std::fprintf(json,
                 "      {\"entries\": %d, \"renew_per_s\": %.0f, "
                 "\"republish_per_s\": %.0f, \"sweep_scan_per_s\": %.0f, "
                 "\"sweep_reap_per_s\": %.0f}%s\n",
                 s.entries, s.renew_per_s, s.republish_per_s,
                 s.sweep_scan_per_s, s.sweep_reap_per_s,
                 s.entries == 10000 ? "" : ",");
  }
  std::fprintf(json, "    ],\n");
  std::fprintf(json, "    \"renew_vs_republish_speedup_1k\": %.2f,\n",
               speedup_1k);
  std::fprintf(json, "    \"renew_vs_republish_speedup_10k\": %.2f\n",
               speedup_10k);
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  // Hard floor: the batched renewal path must not be materially slower
  // than naive re-publication, or the heartbeat design is pointless
  // (0.9 rather than 1.0 absorbs scheduler noise on loaded hosts).
  if (speedup_10k < 0.9) {
    std::fprintf(stderr,
                 "FAIL: renewal slower than re-publication at 10k (%.2fx)\n",
                 speedup_10k);
    return 1;
  }
  return 0;
}
