// E13 (§3, Activatable RMI): the cost structure of activation-on-invoke.
// "Activatable RMI objects can be loaded and run simply by invoking one
// of their methods, and will unload themselves automatically after a
// period of inactivity." Measures: warm invocation, cold invocation
// (construction on the call path), the unload→reactivate cycle, and the
// marshalling overhead of the wire layer.
#include <benchmark/benchmark.h>

#include "rpc/registry.hpp"
#include "rpc/wire.hpp"

using namespace jamm;       // NOLINT: bench brevity
using namespace jamm::rpc;  // NOLINT

namespace {

/// Simulates the paper's agents: construction does real work (loading
/// config, binding sockets, ...), represented by building a small table.
std::unique_ptr<RemoteObject> MakeAgent() {
  auto obj = std::make_unique<MethodTableObject>();
  for (int i = 0; i < 32; ++i) {
    obj->Register("method" + std::to_string(i),
                  [](const std::vector<std::string>& args) {
                    return Result<std::string>(
                        args.empty() ? "" : args[0]);
                  });
  }
  return obj;
}

void BM_WarmInvoke(benchmark::State& state) {
  SimClock clock;
  Registry registry(clock);
  (void)registry.RegisterActivatable("agent", MakeAgent);
  (void)registry.Invoke("agent", "method0", {"x"});  // activate
  for (auto _ : state) {
    auto result = registry.Invoke("agent", "method0", {"x"});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_WarmInvoke);

void BM_ColdInvoke(benchmark::State& state) {
  // Every invocation hits an unloaded object: the activation cost is on
  // the call path.
  SimClock clock;
  Registry registry(clock);
  (void)registry.RegisterActivatable("agent", MakeAgent,
                                     /*idle_timeout=*/0);
  for (auto _ : state) {
    auto result = registry.Invoke("agent", "method0", {"x"});
    benchmark::DoNotOptimize(result);
    clock.Advance(kSecond);
    registry.MaintenanceTick();  // idle_timeout 0 → unload immediately
  }
  state.SetLabel(std::to_string(registry.stats().activations) +
                 " activations");
}
BENCHMARK(BM_ColdInvoke);

void BM_MaintenanceSweep(benchmark::State& state) {
  SimClock clock;
  Registry registry(clock);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    (void)registry.RegisterActivatable("agent" + std::to_string(i),
                                       MakeAgent, kMinute);
    (void)registry.Invoke("agent" + std::to_string(i), "method0", {});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.MaintenanceTick());
  }
  state.SetLabel(std::to_string(n) + " registered agents");
}
BENCHMARK(BM_MaintenanceSweep)->Arg(16)->Arg(256);

void BM_MarshalCall(benchmark::State& state) {
  const std::vector<std::string> parts = {"gateway", "subscribe",
                                          "consumer-1", "on-change|VMSTAT_*"};
  for (auto _ : state) {
    auto decoded = DecodeStrings(EncodeStrings(parts));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_MarshalCall);

void PrintColdWarmSummary() {
  // A single-shot comparison for the report: cold vs warm call cost.
  SimClock clock;
  Registry registry(clock);
  (void)registry.RegisterActivatable("agent", MakeAgent);
  (void)registry.Invoke("agent", "method0", {});
  std::printf("\nE13 summary: activation (object construction) happens on "
              "the first call only;\n'unload after inactivity' trades that "
              "reactivation cost for idle memory —\nthe paper's rationale "
              "for Activatable RMI. Stats: %llu invocations, %llu "
              "activations.\n",
              static_cast<unsigned long long>(registry.stats().invocations),
              static_cast<unsigned long long>(registry.stats().activations));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E13 / §3 — activatable-object overheads\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintColdWarmSummary();
  return 0;
}
