// ISSUE 6 satellite: federation tree benchmark.
//
// Part A — tree scaling. Builds republisher trees of depth {1,2,3} ×
// fan-out {2,4} over leaf EventGateways carrying 10k simulated hosts,
// subscribes one consumer at the root with a pushdown-able spec, and
// measures end-to-end events/s (publish at the leaves → delivery at the
// root, including every tier's wire hop) plus the median single-record
// propagation latency through the full tree.
//
// Part B — pushdown send reduction. One leaf, one republisher, a spec
// matching 1 of kEventSpecies event species. With pushdown the leaf
// serializes only matching records onto the wire; with the local-eval
// fallback (a downstream that predates pushdown) the leaf ships its whole
// base stream and the republisher filters. The ratio of leaf wire records
// is deterministic (≈ kEventSpecies) and machine-independent — it is the
// gated metric in scripts/check_bench.sh.
//
// Part C — stream floor (self-enforced, exit 1): with lazy base streams,
// the leaf gateway must carry exactly ONE outgoing stream regardless of
// how many root subscribers share the spec (1, 8, 64).
//
// Emits BENCH_federation.json (path = argv[1], default
// ./BENCH_federation.json) for scripts/check_bench.sh.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "federation/republisher.hpp"
#include "gateway/gateway.hpp"
#include "gateway/service.hpp"
#include "transport/inproc.hpp"
#include "ulm/record.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

constexpr int kHosts = 10000;
constexpr int kTreeEvents = 50000;
constexpr int kEventSpecies = 10;  // CPU plus 9 the spec never matches
constexpr int kLatencyTrips = 50;
constexpr double kMinSendReduction = 5.0;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* SpeciesName(int species) {
  static const char* kNames[kEventSpecies] = {
      "CPU",  "MEM",  "NET", "DSK", "SWAP",
      "LOAD", "PROC", "TCP", "UDP", "IRQ"};
  return kNames[species % kEventSpecies];
}

// ------------------------------------------------- Part A: tree scaling

/// A full federation tree: f^(depth-1) leaf gateways under depth-1 tiers
/// of republishers and a root republisher. Every inter-tier hop crosses
/// the in-proc transport through a real GatewayService.
struct Tree {
  SimClock clock;
  transport::InProcNetwork net;
  std::vector<std::unique_ptr<gateway::EventGateway>> leaves;
  std::vector<std::unique_ptr<gateway::GatewayService>> leaf_services;
  // tiers[0] is just above the leaves; tiers.back() holds only the root.
  std::vector<std::vector<std::unique_ptr<federation::RepublisherGateway>>>
      tiers;
  std::vector<std::vector<std::unique_ptr<gateway::GatewayService>>>
      tier_services;  // no service above the root

  federation::RepublisherGateway& root() { return *tiers.back().front(); }

  /// One bottom-up wave: leaf services flush, then each tier pumps and
  /// flushes. Advances the sim clock past batch_max_age so partial
  /// batches never linger.
  void Pump() {
    clock.Advance(60 * kMillisecond);
    for (auto& service : leaf_services) service->PollOnce();
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      for (auto& node : tiers[t]) node->Pump();
      if (t < tier_services.size()) {
        for (auto& service : tier_services[t]) service->PollOnce();
      }
    }
  }
};

std::unique_ptr<Tree> BuildTree(int depth, int fanout) {
  auto tree = std::make_unique<Tree>();
  federation::RepublisherGateway::Options options;
  options.lazy_base_stream = true;

  int leaf_count = 1;
  for (int d = 1; d < depth; ++d) leaf_count *= fanout;
  std::vector<std::string> below;  // dialable names of the tier below
  for (int i = 0; i < leaf_count; ++i) {
    const std::string name = "leaf-" + std::to_string(i);
    tree->leaves.push_back(
        std::make_unique<gateway::EventGateway>(name, tree->clock));
    auto listener = tree->net.Listen(name);
    tree->leaf_services.push_back(std::make_unique<gateway::GatewayService>(
        *tree->leaves.back(), std::move(*listener)));
    below.push_back(name);
  }

  for (int tier = 0; tier < depth; ++tier) {
    const bool is_root = tier == depth - 1;
    const int nodes = is_root ? 1 : leaf_count / fanout;
    leaf_count = nodes;
    std::vector<std::string> names;
    tree->tiers.emplace_back();
    if (!is_root) tree->tier_services.emplace_back();
    for (int i = 0; i < nodes; ++i) {
      const std::string name =
          is_root ? "root" : "t" + std::to_string(tier) + "-" +
                                 std::to_string(i);
      auto node = std::make_unique<federation::RepublisherGateway>(
          name, tree->clock, options);
      const int span = static_cast<int>(below.size()) / nodes;
      for (int c = i * span; c < (i + 1) * span; ++c) {
        const std::string child = below[static_cast<std::size_t>(c)];
        transport::InProcNetwork& net = tree->net;
        (void)node->AddDownstream(
            {child, [&net, child] { return net.Dial(child); }});
      }
      if (!is_root) {
        auto listener = tree->net.Listen(name);
        tree->tier_services.back().push_back(
            std::make_unique<gateway::GatewayService>(*node,
                                                      std::move(*listener)));
      }
      tree->tiers.back().push_back(std::move(node));
      names.push_back(name);
    }
    below = std::move(names);
  }
  return tree;
}

gateway::FilterSpec CpuSpec() {
  auto spec = gateway::FilterSpec::Parse("all|CPU");
  return spec.ok() ? *spec : gateway::FilterSpec{};
}

struct TreeRow {
  int depth;
  int fanout;
  int leaves;
  double events_per_s;   // published/s end-to-end, all species
  double latency_us;     // median single-record root arrival, wall clock
  std::uint64_t delivered;
  std::uint64_t expected;  // CPU-species records published
};

TreeRow MeasureTree(int depth, int fanout) {
  auto tree = BuildTree(depth, fanout);
  std::uint64_t delivered = 0;
  (void)tree->root().SubscribeEncoded(
      "bench", CpuSpec(),
      [&delivered](const ulm::EncodedRecord&) { ++delivered; });
  for (int i = 0; i < depth + 2; ++i) tree->Pump();  // propagate the spec

  const std::size_t leaves = tree->leaves.size();
  std::uint64_t expected = 0;
  TimePoint ts = kSecond;
  const double t0 = NowSeconds();
  for (int i = 0; i < kTreeEvents; ++i) {
    const int host = i % kHosts;
    const int species = i % kEventSpecies;
    ts += kMillisecond;
    ulm::Record rec(ts, "host" + std::to_string(host), "sensor", "Usage",
                    SpeciesName(species));
    rec.SetField("VAL", static_cast<double>(i % 100));
    tree->leaves[static_cast<std::size_t>(host) % leaves]->Publish(rec);
    if (species == 0) ++expected;
    if (i % 256 == 255) tree->Pump();
  }
  for (int i = 0; i < depth + 2; ++i) tree->Pump();  // drain stragglers
  const double elapsed = NowSeconds() - t0;

  // Median single-record propagation: publish one CPU record, pump waves
  // until the root sees it, and time the whole trip.
  std::vector<double> trips;
  for (int trip = 0; trip < kLatencyTrips; ++trip) {
    ts += kSecond;
    ulm::Record rec(ts, "host0", "sensor", "Usage", "CPU");
    rec.SetField("VAL", 1.0);
    const std::uint64_t before = delivered;
    const double s0 = NowSeconds();
    tree->leaves[0]->Publish(rec);
    while (delivered == before) tree->Pump();
    trips.push_back((NowSeconds() - s0) * 1e6);
  }
  std::sort(trips.begin(), trips.end());

  return {depth,
          fanout,
          static_cast<int>(leaves),
          kTreeEvents / elapsed,
          trips[trips.size() / 2],
          delivered - kLatencyTrips,
          expected};
}

// -------------------------------------- Part B: pushdown send reduction

/// Leaf wire records (sum of sent_records over the leaf's service
/// subscriptions) needed to serve one root subscriber of the CPU spec.
/// `pushdown` false forces the local-eval fallback: the leaf ships its
/// whole base stream.
std::uint64_t LeafWireRecords(bool pushdown) {
  SimClock clock;
  transport::InProcNetwork net;
  gateway::EventGateway leaf("leaf", clock);
  auto listener = net.Listen("leaf");
  gateway::GatewayService service(leaf, std::move(*listener));
  federation::RepublisherGateway::Options options;
  options.lazy_base_stream = true;
  federation::RepublisherGateway site("site", clock, options);
  (void)site.AddDownstream(
      {"leaf", [&net] { return net.Dial("leaf"); }, pushdown});

  std::uint64_t delivered = 0;
  (void)site.SubscribeEncoded(
      "bench", CpuSpec(),
      [&delivered](const ulm::EncodedRecord&) { ++delivered; });
  auto pump = [&] {
    clock.Advance(60 * kMillisecond);
    service.PollOnce();
    site.Pump();
  };
  pump();
  pump();  // second wave: the subscribe sent by the first Pump round-trips
  TimePoint ts = kSecond;
  for (int i = 0; i < kTreeEvents; ++i) {
    ts += kMillisecond;
    ulm::Record rec(ts, "host" + std::to_string(i % kHosts), "sensor",
                    "Usage", SpeciesName(i % kEventSpecies));
    rec.SetField("VAL", static_cast<double>(i % 100));
    leaf.Publish(rec);
    if (i % 256 == 255) pump();
  }
  pump();
  pump();
  if (delivered != kTreeEvents / kEventSpecies) {
    std::fprintf(stderr, "delivery mismatch: %llu of %d\n",
                 static_cast<unsigned long long>(delivered),
                 kTreeEvents / kEventSpecies);
  }
  std::uint64_t wire = 0;
  for (const auto& sub : service.QueueStats()) wire += sub.sent_records;
  return wire;
}

// ----------------------------------------- Part C: leaf stream floor

/// With lazy base streams, N root subscribers sharing a spec must
/// collapse to ONE leaf stream. Returns the leaf subscription count.
std::size_t LeafStreams(int root_subscribers) {
  SimClock clock;
  transport::InProcNetwork net;
  gateway::EventGateway leaf("leaf", clock);
  auto listener = net.Listen("leaf");
  gateway::GatewayService service(leaf, std::move(*listener));
  federation::RepublisherGateway::Options options;
  options.lazy_base_stream = true;
  federation::RepublisherGateway site("site", clock, options);
  (void)site.AddDownstream({"leaf", [&net] { return net.Dial("leaf"); }});
  for (int i = 0; i < root_subscribers; ++i) {
    (void)site.SubscribeEncoded("c" + std::to_string(i), CpuSpec(),
                                [](const ulm::EncodedRecord&) {});
  }
  site.Pump();
  service.PollOnce();
  return leaf.subscription_count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_federation.json";

  std::printf("federation tree — pushdown republisher scaling (%d simulated "
              "hosts)\n\n", kHosts);

  // Part A: depth × fan-out sweep.
  std::printf("tree scaling (%d events round-robin across leaves, spec "
              "matches 1 of %d species)\n", kTreeEvents, kEventSpecies);
  std::printf("%-6s | %-7s | %-6s | %12s | %12s | %10s\n", "depth", "fanout",
              "leaves", "events/s", "latency us", "delivered");
  std::vector<TreeRow> rows;
  for (int depth : {1, 2, 3}) {
    for (int fanout : {2, 4}) {
      if (depth == 1 && fanout == 2) continue;  // same tree as 1×4 modulo leaves
      rows.push_back(MeasureTree(depth, fanout));
      const auto& r = rows.back();
      std::printf("%-6d | %-7d | %-6d | %12.0f | %12.1f | %7llu/%llu\n",
                  r.depth, r.fanout, r.leaves, r.events_per_s, r.latency_us,
                  static_cast<unsigned long long>(r.delivered),
                  static_cast<unsigned long long>(r.expected));
    }
  }
  bool exact = true;
  for (const auto& r : rows) exact &= r.delivered == r.expected;

  // Part B: the gated ratio.
  const std::uint64_t wire_fallback = LeafWireRecords(/*pushdown=*/false);
  const std::uint64_t wire_pushdown = LeafWireRecords(/*pushdown=*/true);
  const double reduction =
      static_cast<double>(wire_fallback) /
      static_cast<double>(wire_pushdown ? wire_pushdown : 1);
  std::printf("\nleaf wire records for one filtered root subscriber:\n");
  std::printf("  local-eval fallback (base stream): %llu\n",
              static_cast<unsigned long long>(wire_fallback));
  std::printf("  pushdown (filter at the leaf):     %llu\n",
              static_cast<unsigned long long>(wire_pushdown));
  std::printf("  pushdown_send_reduction: %.1fx (floor %.1fx)\n", reduction,
              kMinSendReduction);

  // Part C: the stream floor.
  bool one_stream = true;
  std::printf("\nleaf streams vs root subscriber count (must stay 1):\n");
  for (int subs : {1, 8, 64}) {
    const std::size_t streams = LeafStreams(subs);
    std::printf("  %2d subscribers -> %zu leaf stream(s)\n", subs, streams);
    one_stream &= streams == 1;
  }

  // Machine-readable results for scripts/check_bench.sh.
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"bench_federation\",\n");
  std::fprintf(json, "  \"workload\": \"%d events, %d simulated hosts, "
               "republisher trees depth {1,2,3} x fan-out {2,4} over in-proc "
               "transport; spec matches 1 of %d event species\",\n",
               kTreeEvents, kHosts, kEventSpecies);
  std::fprintf(json, "  \"method\": \"events/s = wall time for all events "
               "leaf->root; latency = median of %d single-record trips; send "
               "reduction = leaf wire records fallback/pushdown\",\n",
               kLatencyTrips);
  std::fprintf(json, "  \"results\": {\n");
  std::fprintf(json, "    \"trees\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(json, "      {\"depth\": %d, \"fanout\": %d, \"leaves\": %d, "
                 "\"events_per_s\": %.0f, \"latency_us\": %.1f}%s\n",
                 r.depth, r.fanout, r.leaves, r.events_per_s, r.latency_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "    ],\n");
  std::fprintf(json, "    \"leaf_wire_records_fallback\": %llu,\n",
               static_cast<unsigned long long>(wire_fallback));
  std::fprintf(json, "    \"leaf_wire_records_pushdown\": %llu,\n",
               static_cast<unsigned long long>(wire_pushdown));
  std::fprintf(json, "    \"pushdown_send_reduction\": %.1f,\n", reduction);
  std::fprintf(json, "    \"pushdown_send_reduction_floor\": %.1f,\n",
               kMinSendReduction);
  std::fprintf(json, "    \"leaf_streams_stay_one\": %s\n",
               one_stream ? "true" : "false");
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!one_stream) {
    std::printf("FAIL: leaf stream count grew with root subscribers\n");
    return 1;
  }
  if (!exact) {
    std::printf("FAIL: tree lost or duplicated records\n");
    return 1;
  }
  if (reduction < kMinSendReduction) {
    std::printf("FAIL: pushdown send reduction below floor\n");
    return 1;
  }
  std::printf("PASS: pushdown floors met; delivery exact at every depth\n");
  return 0;
}
