// E9 (§2.2, directory service): "Current implementations of LDAP servers
// are optimized for read access, and do not work well in an environment
// with many updates." ISSUE 9 rebuilt the store so that claim no longer
// binds: RCU snapshot reads never take the write lock, and heartbeat
// renewals are lease-cell stores plus a compact WAL record. This bench
// proves it at fleet scale:
//
//   * 1M live leased entries, populated through UpsertBatch;
//   * heartbeat renewal throughput (target: >= 100k renewals/second);
//   * lookup throughput while the write path saturates (renewal batches
//     plus structural churn interleaved with every read chunk — on a
//     single-core host concurrency is modeled as per-op cost under
//     interleaving, not threaded wall-clock) vs idle: the snapshot read
//     path must stay within 10% of idle;
//   * WAL crash recovery: Crash() + Restart() replay of the full log,
//     compared against the initial populate rate (a machine-independent
//     ratio — recovery applies the same changes minus the re-encode and
//     per-batch publication, so it must not be slower);
//   * the original E9 observation, kept for the record: cached vs
//     uncached search at 10k entries, where structural writes still
//     poison the result cache by design.
//
// Emits BENCH_directory.json (path = argv[1], default ./BENCH_directory
// .json) and enforces the hard floors itself (non-zero exit).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "directory/schema.hpp"
#include "directory/server.hpp"
#include "directory/wal.hpp"

using namespace jamm;             // NOLINT: bench brevity
using namespace jamm::directory;  // NOLINT

namespace {

constexpr int kEntries = 1'000'000;
constexpr int kSensorsPerHost = 100;
constexpr int kBatch = 50'000;        // UpsertBatch chunk during populate
constexpr int kRenewBatch = 100'000;  // one heartbeat storm slice
constexpr int kRenewPasses = 7;
constexpr int kReadPasses = 7;
constexpr int kLookups = 50'000;      // lookups per read pass
constexpr TimePoint kFarFuture = 1000 * kMinute;

Dn Suffix() { return *Dn::Parse("ou=sensors, o=jamm"); }

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Fleet {
  std::shared_ptr<WalStorage> storage;
  std::unique_ptr<DirectoryServer> server;
  std::vector<Dn> dns;  // every leased sensor entry
  double populate_per_s = 0;
};

/// 1M lean leased entries (kSensorsPerHost per host), loaded parents-first
/// through UpsertBatch in kBatch chunks.
Fleet Populate() {
  Fleet fleet;
  fleet.storage = std::make_shared<WalStorage>();
  fleet.server =
      std::make_unique<DirectoryServer>(Suffix(), "ldap://bench",
                                        fleet.storage);
  fleet.dns.reserve(kEntries);
  std::vector<Entry> batch;
  batch.reserve(kBatch + kBatch / kSensorsPerHost + 1);
  const auto t0 = std::chrono::steady_clock::now();
  auto flush = [&] {
    if (batch.empty()) return;
    if (!fleet.server->UpsertBatch(batch).ok()) {
      std::fprintf(stderr, "populate batch failed\n");
      std::exit(1);
    }
    batch.clear();
  };
  for (int h = 0; h * kSensorsPerHost < kEntries; ++h) {
    const std::string host = "h" + std::to_string(h);
    batch.push_back(schema::MakeHostEntry(Suffix(), host));
    const Dn host_dn = schema::HostDn(Suffix(), host);
    for (int s = 0; s < kSensorsPerHost; ++s) {
      // Lean entries: objectclass + lease only, so the bench measures the
      // store, not attribute-string shoveling.
      Entry entry(host_dn.Child("cn", "s" + std::to_string(s)));
      entry.Set(schema::kAttrObjectClass, "jammSensor");
      schema::StampLease(entry, kFarFuture);
      fleet.dns.push_back(entry.dn());
      batch.push_back(std::move(entry));
    }
    if (static_cast<int>(batch.size()) >= kBatch) flush();
  }
  flush();
  fleet.populate_per_s = kEntries / SecondsSince(t0);
  return fleet;
}

/// Median renewal throughput over rotating kRenewBatch slices.
double RenewalsPerSecond(Fleet& fleet) {
  std::vector<double> per_s;
  for (int pass = 0; pass < kRenewPasses; ++pass) {
    const std::size_t start =
        (static_cast<std::size_t>(pass) * kRenewBatch) % fleet.dns.size();
    std::vector<Dn> slice;
    slice.reserve(kRenewBatch);
    for (int i = 0; i < kRenewBatch; ++i) {
      slice.push_back(fleet.dns[(start + i) % fleet.dns.size()]);
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto renewed = fleet.server->RenewLeases(slice, kFarFuture + pass + 1);
    const double secs = SecondsSince(t0);
    if (!renewed.ok() || static_cast<int>(*renewed) != kRenewBatch) {
      std::fprintf(stderr, "renewal lost entries\n");
      std::exit(1);
    }
    per_s.push_back(kRenewBatch / secs);
  }
  return Median(per_s);
}

/// Lookup throughput for one pass. When `saturate` is set, every chunk of
/// reads is interleaved with a 10k renewal batch and a structural write
/// (cache invalidation + snapshot swap) — the paper's "many updates"
/// regime. Only the lookups are inside the timed region either way.
double LookupPass(Fleet& fleet, bool saturate, int pass) {
  constexpr int kChunk = 5'000;
  static int churn = 0;
  double read_secs = 0;
  std::size_t cursor =
      (static_cast<std::size_t>(pass) * 7919) % fleet.dns.size();
  for (int done = 0; done < kLookups; done += kChunk) {
    if (saturate) {
      std::vector<Dn> slice;
      slice.reserve(10'000);
      for (int i = 0; i < 10'000; ++i) {
        slice.push_back(fleet.dns[(cursor + i * 101) % fleet.dns.size()]);
      }
      (void)fleet.server->RenewLeases(slice, kFarFuture + 2);
      auto host = schema::MakeHostEntry(Suffix(),
                                        "churn" + std::to_string(churn++ % 16));
      (void)fleet.server->Upsert(host);  // snapshot swap + cache clear
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChunk; ++i) {
      auto entry =
          fleet.server->Lookup(fleet.dns[cursor % fleet.dns.size()]);
      if (!entry.ok()) {
        std::fprintf(stderr, "lookup failed mid-bench\n");
        std::exit(1);
      }
      cursor += 6151;  // prime stride: spread across buckets
    }
    read_secs += SecondsSince(t0);
  }
  return kLookups / read_secs;
}

struct ReadSaturation {
  double idle_per_s = 0;
  double saturated_per_s = 0;
  double ratio = 0;
};

/// Idle and saturated passes run back-to-back in pairs and the gated
/// ratio is the median of the per-pass ratios, so slow machine-state
/// drift (another process winding down, thermal throttling) cancels
/// instead of landing entirely on one side of the division.
ReadSaturation MeasureReadSaturation(Fleet& fleet) {
  std::vector<double> idle, saturated, ratios;
  for (int pass = 0; pass < kReadPasses; ++pass) {
    idle.push_back(LookupPass(fleet, /*saturate=*/false, pass));
    saturated.push_back(LookupPass(fleet, /*saturate=*/true, pass));
    ratios.push_back(saturated.back() / idle.back());
  }
  return {Median(idle), Median(saturated), Median(ratios)};
}

struct Recovery {
  double seconds = 0;
  double records = 0;
  double replay_per_s = 0;
};

/// Hard-crash the fleet and replay the full WAL (adds + every renewal
/// record appended so far) back to the last acked write.
Recovery CrashAndRecover(Fleet& fleet) {
  fleet.server->Crash();
  const auto t0 = std::chrono::steady_clock::now();
  const auto stats = fleet.server->Restart();
  Recovery out;
  out.seconds = SecondsSince(t0);
  out.records = static_cast<double>(stats.records_replayed);
  out.replay_per_s = out.records / out.seconds;
  if (stats.entries < kEntries) {
    std::fprintf(stderr, "recovery lost entries: %llu\n",
                 static_cast<unsigned long long>(stats.entries));
    std::exit(1);
  }
  return out;
}

/// The original E9 story at 10k entries: repeated searches ride the result
/// cache; a write before every search invalidates it.
struct SearchStory {
  double cached_per_s = 0;
  double uncached_per_s = 0;
};

SearchStory SearchCachedVsUncached() {
  auto server = std::make_unique<DirectoryServer>(Suffix(), "ldap://e9");
  for (int h = 0; h < 100; ++h) {
    const std::string host = "host" + std::to_string(h);
    (void)server->Upsert(schema::MakeHostEntry(Suffix(), host));
    std::vector<Entry> batch;
    for (int s = 0; s < 100; ++s) {
      Entry entry(schema::HostDn(Suffix(), host)
                      .Child("cn", "s" + std::to_string(s)));
      entry.Set(schema::kAttrObjectClass, "jammSensor");
      batch.push_back(std::move(entry));
    }
    (void)server->UpsertBatch(batch);
  }
  const Filter filter = *Filter::Parse("(objectclass=jammSensor)");
  SearchStory out;
  constexpr int kSearches = 200;
  {
    (void)server->Search(Suffix(), SearchScope::kSubtree, filter);  // warm
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSearches; ++i) {
      auto result = server->Search(Suffix(), SearchScope::kSubtree, filter);
      if (!result.ok()) std::exit(1);
    }
    out.cached_per_s = kSearches / SecondsSince(t0);
  }
  {
    auto touch = schema::MakeHostEntry(Suffix(), "host0");
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSearches; ++i) {
      touch.Set("heartbeat", std::to_string(i));
      (void)server->Upsert(touch);
      auto result = server->Search(Suffix(), SearchScope::kSubtree, filter);
      if (!result.ok()) std::exit(1);
    }
    out.uncached_per_s = kSearches / SecondsSince(t0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_directory.json";
  std::printf("E9 / ISSUE 9 — directory at 1M leased entries: renewals, "
              "snapshot reads under saturation, WAL recovery\n");

  Fleet fleet = Populate();
  std::printf("populated %d entries at %.0f/s\n", kEntries,
              fleet.populate_per_s);

  const double renew_per_s = RenewalsPerSecond(fleet);
  std::printf("heartbeat renewals: %.0f/s (batch %d)\n", renew_per_s,
              kRenewBatch);

  const ReadSaturation reads = MeasureReadSaturation(fleet);
  std::printf("lookups: idle %.0f/s, under write saturation %.0f/s "
              "(paired-pass ratio %.3f)\n",
              reads.idle_per_s, reads.saturated_per_s, reads.ratio);

  const Recovery recovery = CrashAndRecover(fleet);
  const double recovery_speedup = recovery.replay_per_s / fleet.populate_per_s;
  std::printf("recovery: %.0f WAL records replayed in %.2fs (%.0f/s, "
              "%.2fx the populate rate)\n",
              recovery.records, recovery.seconds, recovery.replay_per_s,
              recovery_speedup);

  const SearchStory story = SearchCachedVsUncached();
  std::printf("E9 at 10k entries: cached search %.0f/s, write-poisoned "
              "%.0f/s\n",
              story.cached_per_s, story.uncached_per_s);

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"bench_directory\",\n");
  std::fprintf(json,
               "  \"workload\": \"1M lean leased entries via UpsertBatch; "
               "100k-entry heartbeat renewal slices; lookups idle vs "
               "interleaved with renewal batches and structural churn; "
               "Crash()+Restart() full-WAL replay; cached vs poisoned "
               "search at 10k\",\n");
  std::fprintf(json,
               "  \"method\": \"median of %d renewal / %d paired idle+saturated read passes "
               "(ratio = median of per-pass ratios); "
               "single-core host, saturation modeled as interleaved per-op "
               "cost; ratios are machine-independent\",\n",
               kRenewPasses, kReadPasses);
  std::fprintf(json, "  \"results\": {\n");
  std::fprintf(json, "    \"entries\": %d,\n", kEntries);
  std::fprintf(json, "    \"populate_per_s\": %.0f,\n", fleet.populate_per_s);
  std::fprintf(json, "    \"renew_batch\": %d,\n", kRenewBatch);
  std::fprintf(json, "    \"renew_per_s\": %.0f,\n", renew_per_s);
  std::fprintf(json, "    \"idle_lookup_per_s\": %.0f,\n",
               reads.idle_per_s);
  std::fprintf(json, "    \"saturated_lookup_per_s\": %.0f,\n",
               reads.saturated_per_s);
  std::fprintf(json, "    \"read_saturation_ratio\": %.3f,\n",
               reads.ratio);
  std::fprintf(json, "    \"recovery_records\": %.0f,\n", recovery.records);
  std::fprintf(json, "    \"recovery_s\": %.3f,\n", recovery.seconds);
  std::fprintf(json, "    \"recovery_replay_per_s\": %.0f,\n",
               recovery.replay_per_s);
  std::fprintf(json, "    \"recovery_vs_populate_speedup\": %.2f,\n",
               recovery_speedup);
  std::fprintf(json, "    \"search_cached_per_s\": %.0f,\n",
               story.cached_per_s);
  std::fprintf(json, "    \"search_uncached_per_s\": %.0f\n",
               story.uncached_per_s);
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());

  // Hard acceptance floors (ISSUE 9).
  int failures = 0;
  if (renew_per_s < 100'000) {
    std::fprintf(stderr, "FAIL: %.0f renewals/s < 100k floor\n", renew_per_s);
    ++failures;
  }
  if (reads.ratio < 0.9) {
    std::fprintf(stderr,
                 "FAIL: saturated reads at %.3f of idle (< 0.9 floor)\n",
                 reads.ratio);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
