// E9 (§2.2, directory service): "Current implementations of LDAP servers
// are optimized for read access, and do not work well in an environment
// with many updates." Plus the replication/failover requirement:
// "Replication is critical to JAMM."
//
// google-benchmark microbenchmarks: cached vs uncached search, lookup,
// update, and mixed read/write workloads showing updates poisoning the
// read cache; plus a replication-failover walkthrough printed at exit.
#include <benchmark/benchmark.h>

#include <memory>

#include "directory/replication.hpp"
#include "directory/schema.hpp"
#include "directory/server.hpp"

using namespace jamm;             // NOLINT: bench brevity
using namespace jamm::directory;  // NOLINT

namespace {

Dn Suffix() { return *Dn::Parse("ou=sensors, o=jamm"); }

std::unique_ptr<DirectoryServer> Populate(int hosts, int sensors_per_host) {
  auto server = std::make_unique<DirectoryServer>(Suffix(), "ldap://bench");
  for (int h = 0; h < hosts; ++h) {
    const std::string host = "host" + std::to_string(h);
    (void)server->Upsert(schema::MakeHostEntry(Suffix(), host));
    for (int s = 0; s < sensors_per_host; ++s) {
      (void)server->Upsert(schema::MakeSensorEntry(
          Suffix(), host, "sensor" + std::to_string(s),
          s % 2 ? "cpu" : "network", "gw." + host, 1000, 0));
    }
  }
  return server;
}

void BM_SearchCached(benchmark::State& state) {
  auto server = Populate(static_cast<int>(state.range(0)), 8);
  const Filter filter = *Filter::Parse("(objectclass=jammSensor)");
  for (auto _ : state) {
    auto result = server->Search(Suffix(), SearchScope::kSubtree, filter);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(server->stats().entries) + " entries");
}
BENCHMARK(BM_SearchCached)->Arg(8)->Arg(64)->Arg(256);

void BM_SearchUncached(benchmark::State& state) {
  // A write before every search invalidates the cache — the paper's
  // "many updates" environment.
  auto server = Populate(static_cast<int>(state.range(0)), 8);
  const Filter filter = *Filter::Parse("(objectclass=jammSensor)");
  auto touch = schema::MakeHostEntry(Suffix(), "host0");
  int beat = 0;
  for (auto _ : state) {
    touch.Set("heartbeat", std::to_string(++beat));
    (void)server->Upsert(touch);
    auto result = server->Search(Suffix(), SearchScope::kSubtree, filter);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(server->stats().entries) + " entries");
}
BENCHMARK(BM_SearchUncached)->Arg(8)->Arg(64)->Arg(256);

void BM_Lookup(benchmark::State& state) {
  auto server = Populate(64, 8);
  const Dn dn = schema::SensorDn(Suffix(), "host32", "sensor3");
  for (auto _ : state) {
    auto entry = server->Lookup(dn);
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_Lookup);

void BM_Update(benchmark::State& state) {
  auto server = Populate(64, 8);
  auto entry = schema::MakeSensorEntry(Suffix(), "host32", "sensor3", "cpu",
                                       "gw", 1000, 0);
  int beat = 0;
  for (auto _ : state) {
    entry.Set("lastmessage", std::to_string(++beat));
    auto status = server->Upsert(entry);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_Update);

void BM_MixedReadWrite(benchmark::State& state) {
  // write_pct of operations are updates; shows search cost rising with
  // write share (cache hit rate collapsing).
  const int write_pct = static_cast<int>(state.range(0));
  auto server = Populate(64, 8);
  const Filter filter = *Filter::Parse("(sensortype=cpu)");
  auto entry = schema::MakeHostEntry(Suffix(), "host1");
  int i = 0;
  for (auto _ : state) {
    if (++i % 100 < write_pct) {
      entry.Set("heartbeat", std::to_string(i));
      (void)server->Upsert(entry);
    } else {
      auto result = server->Search(Suffix(), SearchScope::kSubtree, filter);
      benchmark::DoNotOptimize(result);
    }
  }
  const auto stats = server->stats();
  state.SetLabel("cache hit rate " +
                 std::to_string(stats.cache_hits * 100 /
                                std::max<std::uint64_t>(
                                    stats.cache_hits + stats.cache_misses,
                                    1)) +
                 "%");
}
BENCHMARK(BM_MixedReadWrite)->Arg(0)->Arg(5)->Arg(25)->Arg(75);

void BM_ReplicationSync(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto primary = std::make_shared<DirectoryServer>(Suffix(), "primary");
    auto replica = std::make_shared<DirectoryServer>(Suffix(), "replica");
    Replicator replicator(primary);
    replicator.AddReplica(replica);
    for (int h = 0; h < static_cast<int>(state.range(0)); ++h) {
      (void)primary->Upsert(
          schema::MakeHostEntry(Suffix(), "h" + std::to_string(h)));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(replicator.SyncAll());
  }
  state.SetLabel(std::to_string(state.range(0)) + " changes");
}
BENCHMARK(BM_ReplicationSync)->Arg(16)->Arg(256);

void FailoverWalkthrough() {
  auto primary = std::make_shared<DirectoryServer>(Suffix(), "ldap://primary");
  auto replica = std::make_shared<DirectoryServer>(Suffix(), "ldap://replica");
  Replicator replicator(primary);
  replicator.AddReplica(replica);
  DirectoryPool pool;
  pool.AddServer(primary);
  pool.AddServer(replica);
  (void)primary->Upsert(schema::MakeHostEntry(Suffix(), "dpss1"));
  (void)replicator.SyncAll();

  std::printf("\nE9 failover walkthrough (paper: 'Replication is critical "
              "to JAMM'):\n");
  (void)pool.Lookup(schema::HostDn(Suffix(), "dpss1"));
  std::printf("  lookup served by %s\n", pool.last_served_by().c_str());
  primary->SetAlive(false);
  auto after = pool.Lookup(schema::HostDn(Suffix(), "dpss1"));
  std::printf("  primary killed; lookup %s via %s\n",
              after.ok() ? "still succeeds" : "FAILS",
              pool.last_served_by().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E9 / §2.2 — directory service: read-optimized store vs "
              "updates\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  FailoverWalkthrough();
  return 0;
}
