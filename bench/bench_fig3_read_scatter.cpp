// E2 (Figure 3): the read() scatter plot. The paper instrumented
// low-level read() calls and found "the (unexpected) clustering of the
// data around two distinct values". We run the 4-server Matisse pipeline,
// record every application read() size, render the scatter, and report
// the two cluster centers.
#include <cmath>
#include <cstdio>

#include "matisse/matisse.hpp"
#include "netlogger/analysis.hpp"
#include "netlogger/nlv.hpp"

using namespace jamm;  // NOLINT: bench brevity

int main() {
  netsim::Simulator sim;
  netsim::Network net(sim, 31);
  auto topo = netsim::BuildMatisseWan(net, 4);
  matisse::MatisseConfig config;
  config.dpss_servers = 4;
  matisse::MatisseApp app(sim, net, topo, config);
  app.Start();
  sim.RunUntil(20 * kSecond);

  const auto& sizes = app.read_sizes();
  std::printf("E2 / Figure 3 — scatter of application read() sizes\n");
  std::printf("paper: reads cluster around two distinct values "
              "(point primitive scaled to the byte count).\n\n");

  // ASCII scatter: x = time bucket, y = size decile.
  constexpr int kWidth = 100, kRows = 12;
  double max_size = 1;
  for (double v : sizes) max_size = std::max(max_size, v);
  std::vector<std::string> grid(kRows, std::string(kWidth, ' '));
  const std::size_t per_col = std::max<std::size_t>(1, sizes.size() / kWidth);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int col = std::min<int>(kWidth - 1,
                                  static_cast<int>(i / per_col));
    const int row = std::min<int>(kRows - 1,
                                  static_cast<int>(sizes[i] / max_size *
                                                   (kRows - 1)));
    grid[static_cast<std::size_t>(kRows - 1 - row)]
        [static_cast<std::size_t>(col)] = 'x';
  }
  for (int r = 0; r < kRows; ++r) {
    std::printf("%7.0fB |%s|\n",
                max_size * (kRows - 1 - r) / (kRows - 1), grid[r].c_str());
  }
  std::printf("          time →  (%zu reads over 20 s)\n\n", sizes.size());

  auto centers = netlogger::FindClusters1D(sizes, 2);
  std::size_t lower = 0, upper = 0;
  const double midpoint = (centers[0] + centers[1]) / 2;
  for (double v : sizes) {
    (v > midpoint ? upper : lower)++;
  }
  std::printf("cluster centers: %.0f B (%zu reads) and %.0f B (%zu reads)\n",
              centers[0], lower, centers[1], upper);
  std::printf("separation: %.1fx; tightness within ±%0.0fB of a center: "
              "%.1f%%\n",
              centers[1] / std::max(centers[0], 1.0), centers[1] / 3,
              100 * netlogger::ClusterTightness(sizes, centers,
                                                centers[1] / 3));
  std::printf("\nshape check: two distinct, well-separated modes — %s\n",
              centers[1] > 3 * centers[0] ? "OK" : "NOT REPRODUCED");
  return 0;
}
