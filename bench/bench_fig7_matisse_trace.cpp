// E3 (Figure 7): "NetLogger real time analysis of JAMM managed Sensor
// data" — the full monitored Matisse run. The JAMM pipeline (manager →
// vmstat/netstat sensors → gateway → event collector) watches the
// receiving host while the striped transfer runs; the merged log is
// rendered in nlv form, and the paper's two correlations are checked:
// retransmit events line up with the frame-arrival gap, and system CPU on
// the receiving host is high.
#include <cstdio>

#include "consumers/collector.hpp"
#include "manager/sensor_manager.hpp"
#include "matisse/matisse.hpp"
#include "netlogger/analysis.hpp"
#include "netlogger/merge.hpp"
#include "netlogger/nlv.hpp"
#include "sensors/host_sensors.hpp"

using namespace jamm;  // NOLINT: bench brevity

int main() {
  netsim::Simulator sim;
  netsim::Network net(sim, 2026);
  auto topo = netsim::BuildMatisseWan(net, 4);
  matisse::MatisseConfig mconfig;
  mconfig.dpss_servers = 4;
  matisse::MatisseApp app(sim, net, topo, mconfig);

  gateway::EventGateway gateway("gw.compute", sim.clock());
  manager::SensorManager::Options options;
  options.clock = &sim.clock();
  options.host = &app.compute_host();
  options.gateway = &gateway;
  options.gateway_address = "gw.compute";
  manager::SensorManager manager(std::move(options));
  auto cfg = Config::ParseString(
      "[sensor]\nname = vmstat\nkind = vmstat\ninterval_ms = 1000\n"
      "[sensor]\nname = netstat\nkind = netstat\ninterval_ms = 1000\n");
  (void)manager.ApplyConfig(*cfg);

  consumers::EventCollector collector(
      "real-time-monitor", [&](const std::string&) { return &gateway; });
  (void)collector.SubscribeTo(gateway, {});

  app.Start();
  std::function<void()> tick = [&] {
    manager.Tick();
    if (sim.Now() < 30 * kSecond) sim.Schedule(kSecond, tick);
  };
  sim.Schedule(0, tick);
  sim.RunUntil(30 * kSecond);

  auto merged = netlogger::MergeLogs({app.events(), collector.Merged()});
  std::printf("E3 / Figure 7 — NetLogger real-time analysis of JAMM "
              "managed sensor data\n");
  std::printf("paper: frame lifelines with a large no-data gap, TCP "
              "retransmit points inside it,\n       and high "
              "VMSTAT_SYS_TIME on the receiving host.\n\n");

  const TimePoint t1 = 30 * kSecond, t0 = t1 - 8 * kSecond;
  netlogger::NlvRenderer nlv(t0, t1, 100);
  nlv.AddPointRow("TCPD_RETRANSMITS",
                  netlogger::ExtractPoints(merged, "TCPD_RETRANSMITS"));
  nlv.AddLoadlineRow("VMSTAT_USER_TIME",
                     netlogger::ExtractSeries(merged, "VMSTAT_USER_TIME",
                                              "VAL"));
  nlv.AddLoadlineRow("VMSTAT_SYS_TIME",
                     netlogger::ExtractSeries(merged, "VMSTAT_SYS_TIME",
                                              "VAL"));
  nlv.AddLoadlineRow("VMSTAT_FREE_MEMORY",
                     netlogger::ExtractSeries(merged, "VMSTAT_FREE_MEMORY",
                                              "VAL"));
  auto lifelines = netlogger::BuildLifelines(merged, {"FRAME.ID"});
  nlv.AddLifelines({"MPLAY_START_READ_FRAME", "MPLAY_END_READ_FRAME",
                    "MPLAY_START_PUT_IMAGE", "MPLAY_END_PUT_IMAGE"},
                   lifelines);
  std::printf("%s\n", nlv.Render().c_str());

  // Correlation 1: retransmits vs frame gaps.
  auto arrivals = netlogger::ExtractPoints(merged, "MPLAY_END_READ_FRAME");
  auto gaps = netlogger::FindGaps(arrivals, 2 * kSecond);
  auto retrans = netlogger::ExtractPoints(merged, "TCPD_RETRANSMITS");
  const std::size_t inside =
      netlogger::CountPointsInGaps(retrans, gaps, 500 * kMillisecond);
  std::printf("frames completed: %llu; gaps >2s: %zu\n",
              static_cast<unsigned long long>(app.frames_completed()),
              gaps.size());
  std::printf("retransmit events: %zu total, %zu inside/near gaps "
              "(%.0f%%)\n",
              retrans.size(), inside,
              retrans.empty() ? 0.0
                              : 100.0 * static_cast<double>(inside) /
                                    static_cast<double>(retrans.size()));

  // Correlation 2: high system CPU on the receiving host.
  auto sys = netlogger::ExtractSeries(merged, "VMSTAT_SYS_TIME", "VAL");
  double sys_peak = 0, sys_sum = 0;
  for (const auto& p : sys) {
    sys_peak = std::max(sys_peak, p.value);
    sys_sum += p.value;
  }
  std::printf("VMSTAT_SYS_TIME on receiving host: mean %.0f%%, peak "
              "%.0f%% (paper: 'high level of system CPU usage')\n",
              sys.empty() ? 0 : sys_sum / static_cast<double>(sys.size()),
              sys_peak);

  // Correlation 3: no SNMP errors on the path routers → not the network.
  std::int64_t router_errors = 0;
  for (netsim::NodeId node : {topo.lbl_router, topo.supernet,
                              topo.isi_router}) {
    for (std::uint32_t ifidx = 1; ifidx <= 4; ++ifidx) {
      router_errors +=
          net.Snmp(node).Counter(sysmon::oid::IfInErrors(ifidx)).value_or(0);
    }
  }
  std::printf("SNMP errors on routers/switches: %lld (paper: 'no errors "
              "were reported')\n",
              static_cast<long long>(router_errors));
  std::printf("\nconclusion: %s\n",
              (inside > 0 && sys_peak > 50 && router_errors == 0)
                  ? "the receiving host is the bottleneck — REPRODUCED"
                  : "shape not fully reproduced");
  return 0;
}
