// E7 (§2.2, event gateway): per-subscription filtering and summary data.
//
// Paper: "the netstat sensor may output the value of the TCP
// retransmission counter every second, but most consumers only want to be
// notified when the counter changes"; threshold example "if CPU load
// becomes greater than 50%"; delta example "if load changes by more than
// 20%"; summaries: "1, 10, and 60 minute averages of CPU usage".
//
// Workload: one hour of 1 Hz netstat + vmstat data with occasional
// retransmission bursts and a load wave; one subscriber per filter mode.
#include <cmath>
#include <cstdio>

#include "gateway/gateway.hpp"
#include "sensors/host_sensors.hpp"
#include "sysmon/simhost.hpp"

using namespace jamm;  // NOLINT: bench brevity

int main() {
  SimClock clock;
  Rng rng(4);
  sysmon::SimHost host("dpss1.lbl.gov", clock);
  gateway::EventGateway gateway("gw", clock);
  gateway.EnableSummary(sensors::event::kVmstatSysTime);

  sensors::NetstatSensor netstat("netstat", clock, host, kSecond);
  sensors::VmstatSensor vmstat("vmstat", clock, host, kSecond);
  (void)netstat.Start();
  (void)vmstat.Start();

  const char* modes[] = {"all", "on-change|NETSTAT_RETRANS",
                         "threshold:50|VMSTAT_SYS_TIME",
                         "delta:20|VMSTAT_SYS_TIME"};
  std::map<std::string, std::uint64_t> delivered;
  for (const char* mode : modes) {
    auto spec = gateway::FilterSpec::Parse(mode);
    std::string key = mode;
    (void)gateway.Subscribe(key, *spec, [&delivered, key](const ulm::Record&) {
      ++delivered[key];
    });
  }

  // One hour: load wave (sys CPU swings across 50%), sparse retransmit
  // bursts.
  std::uint64_t published = 0;
  for (int second = 0; second < 3600; ++second) {
    const double wave = 45 + 25 * std::sin(second / 120.0);
    host.SetBaseLoad(10, wave);
    if (second % 300 == 120) host.AddTcpRetransmits(rng.Uniform(1, 5));
    std::vector<ulm::Record> events;
    netstat.Poll(events);
    vmstat.Poll(events);
    for (const auto& rec : events) {
      gateway.Publish(rec);
      ++published;
    }
    clock.Advance(kSecond);
  }

  std::printf("E7 / §2.2 — gateway filtering over one hour of 1 Hz "
              "sensors (%llu events published)\n\n",
              static_cast<unsigned long long>(published));
  std::printf("%-34s %12s %12s\n", "subscription filter", "delivered",
              "reduction");
  for (const char* mode : modes) {
    const std::uint64_t n = delivered[mode];
    std::printf("%-34s %12llu %11.1fx\n", mode,
                static_cast<unsigned long long>(n),
                static_cast<double>(published) /
                    static_cast<double>(std::max<std::uint64_t>(n, 1)));
  }

  auto summary = gateway.GetSummary(sensors::event::kVmstatSysTime);
  if (summary.ok()) {
    std::printf("\nsummary data (paper: '1, 10, and 60 minute averages of "
                "CPU usage'):\n");
    std::printf("  1m avg %.1f%% (%zu samples), 10m avg %.1f%%, "
                "60m avg %.1f%%\n",
                summary->avg_1m, summary->count_1m, summary->avg_10m,
                summary->avg_60m);
  }
  std::printf("\nshape check: on-change delivers only counter changes; "
              "threshold only crossings; delta only ±20%% moves — OK if "
              "reductions above are 10-1000x.\n");
  return 0;
}
