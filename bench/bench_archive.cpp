// E12 (§2.2, event archives): ingest rate (with and without sampling) and
// historical time-range query latency vs archive size — the archive must
// keep up as "just another consumer" and still answer "compare the
// current system to a previously working system" queries.
#include <benchmark/benchmark.h>

#include "archive/archive.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

ulm::Record MakeEvent(TimePoint ts, int i) {
  ulm::Record rec(ts, "host" + std::to_string(i % 8), "vmstat",
                  i % 50 ? "Usage" : "Warning",
                  i % 2 ? "VMSTAT_SYS_TIME" : "VMSTAT_FREE_MEMORY");
  rec.SetField("VAL", static_cast<std::int64_t>(i % 100));
  return rec;
}

void BM_IngestKeepAll(benchmark::State& state) {
  archive::EventArchive ar("bench");
  int i = 0;
  for (auto _ : state) {
    ar.Ingest(MakeEvent(i * kSecond, i));
    ++i;
  }
  state.SetItemsProcessed(i);
}
BENCHMARK(BM_IngestKeepAll);

void BM_IngestSampled10pct(benchmark::State& state) {
  archive::EventArchive ar("bench");
  ar.SetSamplingPolicy(0.1);
  int i = 0;
  for (auto _ : state) {
    ar.Ingest(MakeEvent(i * kSecond, i));
    ++i;
  }
  state.SetItemsProcessed(i);
  state.SetLabel("kept " + std::to_string(ar.size()) + "/" +
                 std::to_string(ar.ingested()));
}
BENCHMARK(BM_IngestSampled10pct);

void BM_QueryRange(benchmark::State& state) {
  archive::EventArchive ar("bench");
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) ar.Ingest(MakeEvent(i * kSecond, i));
  // Query a fixed-width hour window in the middle.
  const TimePoint mid = (n / 2) * kSecond;
  for (auto _ : state) {
    auto slice = ar.QueryRange(mid, mid + kHour);
    benchmark::DoNotOptimize(slice);
  }
  state.SetLabel(std::to_string(n) + " stored");
}
BENCHMARK(BM_QueryRange)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_QueryEventGlob(benchmark::State& state) {
  archive::EventArchive ar("bench");
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) ar.Ingest(MakeEvent(i * kSecond, i));
  for (auto _ : state) {
    auto slice = ar.QueryEvents("VMSTAT_SYS*", 0, n * kSecond);
    benchmark::DoNotOptimize(slice);
  }
  state.SetLabel(std::to_string(n) + " stored");
}
BENCHMARK(BM_QueryEventGlob)->Arg(1000)->Arg(10000);

void BM_QueryHost(benchmark::State& state) {
  archive::EventArchive ar("bench");
  for (int i = 0; i < 10000; ++i) ar.Ingest(MakeEvent(i * kSecond, i));
  for (auto _ : state) {
    auto slice = ar.QueryHost("host3", 0, 10000 * kSecond);
    benchmark::DoNotOptimize(slice);
  }
}
BENCHMARK(BM_QueryHost);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E12 / §2.2 — event archive: ingest and historical query\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
