// ISSUE 5: the segmented archive's scaling story. The seed archive was a
// single-mutex time-ordered store — every ArchiverAgent thread serialized
// on one lock and every query walked the whole index. This bench replays
// that design (LegacySeedStore below) against the lock-striped segmented
// store across an ingest-thread × segment-size sweep at 1M events, and
// sweeps query selectivity to show segment pruning: a narrow time-range
// glob query must scan only covering segments, not the whole archive.
//
// The segmented store is measured three ways: record-at-a-time Ingest
// (the seed's API shape), IngestBatch over owned Record vectors (the PR 6
// production path, now a conversion shim that transcribes each Record
// into the flat arena at ingest), and IngestBatch over FlatBatch frames
// (ISSUE 7) — the zero-copy arena splice the archiver pump and gateway
// frames feed directly. The headline speedup compares the best batched
// mode against the legacy store at the same thread count.
//
// Emits BENCH_archive.json (path = argv[1], default ./BENCH_archive.json)
// and enforces the hard acceptance floors itself:
//   * segmented ingest at 4 threads >= 5x the legacy store at 4 threads;
//   * flat-frame ingest >= 3x the Record-vector shim at 4 threads;
//   * the Record-vector shim >= 2x the legacy store at 4 threads;
//   * the narrow query scans fewer segments than the archive holds.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.hpp"
#include "ulm/flat.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

constexpr int kEvents = 1000000;
constexpr int kIngestPasses = 3;
constexpr int kQueryPasses = 7;
constexpr Duration kTick = 10 * kMillisecond;  // event spacing → ~2.8 h span

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

ulm::Record MakeEvent(int i) {
  ulm::Record rec(static_cast<TimePoint>(i) * kTick,
                  "host" + std::to_string(i % 8), "vmstat",
                  i % 50 ? "Usage" : "Warning",
                  "EVT_" + std::to_string(i % 8));
  rec.SetField("VAL", static_cast<std::int64_t>(i % 100));
  return rec;
}

/// The pre-ISSUE-5 archive store, reconstructed for comparison: one
/// mutex, one time-ordered multimap, queries scan the index range with no
/// segment pruning.
class LegacySeedStore {
 public:
  void Ingest(const ulm::Record& rec) {
    std::lock_guard lock(mu_);
    records_.emplace(rec.timestamp(), rec);
  }

  std::vector<ulm::Record> QueryRange(TimePoint t0, TimePoint t1) const {
    std::lock_guard lock(mu_);
    std::vector<ulm::Record> out;
    for (auto it = records_.lower_bound(t0);
         it != records_.end() && it->first < t1; ++it) {
      out.push_back(it->second);
    }
    return out;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return records_.size();
  }

 private:
  mutable std::mutex mu_;
  std::multimap<TimePoint, ulm::Record> records_;
};

/// Events pre-built once so the measured loops time the stores, not
/// record construction. Thread `t` of `threads` takes every threads-th
/// event, so every thread's stream spans the whole time range (the worst
/// case for time-partitioned sealing).
const std::vector<ulm::Record>& AllEvents() {
  static const std::vector<ulm::Record> events = [] {
    std::vector<ulm::Record> out;
    out.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) out.push_back(MakeEvent(i));
    return out;
  }();
  return events;
}

template <typename Store>
double IngestEventsPerSec(Store& store, int threads) {
  const auto& events = AllEvents();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&store, &events, t, threads] {
      for (std::size_t i = t; i < events.size();
           i += static_cast<std::size_t>(threads)) {
        store.Ingest(events[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  return kEvents / SecondsSince(t0);
}

constexpr std::size_t kBatchRecords = 256;  // gateway batch frame size

/// Each thread's stride-share of the event stream, copied and pre-chunked
/// into gateway-sized frames outside the timed region: the batched path
/// measures the store moving owned records, not the copy that made them.
std::vector<std::vector<std::vector<ulm::Record>>> BuildFrames(int threads) {
  const auto& events = AllEvents();
  std::vector<std::vector<std::vector<ulm::Record>>> per_thread(
      static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    auto& frames = per_thread[static_cast<std::size_t>(t)];
    std::vector<ulm::Record> frame;
    frame.reserve(kBatchRecords);
    for (std::size_t i = static_cast<std::size_t>(t); i < events.size();
         i += static_cast<std::size_t>(threads)) {
      frame.push_back(events[i]);
      if (frame.size() == kBatchRecords) {
        frames.push_back(std::move(frame));
        frame = {};
        frame.reserve(kBatchRecords);
      }
    }
    if (!frame.empty()) frames.push_back(std::move(frame));
  }
  return per_thread;
}

double IngestBatchedPerSec(archive::EventArchive& ar, int threads) {
  auto per_thread = BuildFrames(threads);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&ar, frames = &per_thread[static_cast<std::size_t>(
                                     t)]] {
      for (auto& frame : *frames) ar.IngestBatch(std::move(frame));
    });
  }
  for (auto& w : workers) w.join();
  return kEvents / SecondsSince(t0);
}

/// The ISSUE 7 flat path: the same stride-share pre-chunked into
/// FlatBatch arenas (what the archiver's remote pump hands over), so the
/// timed region is the splice — one stripe-lock acquisition and an O(1)
/// chunk adoption per batch, plus the per-record index update.
std::vector<std::vector<ulm::FlatBatch>> BuildFlatFrames(int threads) {
  const auto& events = AllEvents();
  std::vector<std::vector<ulm::FlatBatch>> per_thread(
      static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    auto& frames = per_thread[static_cast<std::size_t>(t)];
    ulm::FlatBatch batch;
    for (std::size_t i = static_cast<std::size_t>(t); i < events.size();
         i += static_cast<std::size_t>(threads)) {
      (void)batch.Append(events[i]);
      if (batch.size() == kBatchRecords) {
        frames.push_back(std::move(batch));
        batch = {};
      }
    }
    if (!batch.empty()) frames.push_back(std::move(batch));
  }
  return per_thread;
}

double IngestFlatPerSec(archive::EventArchive& ar, int threads) {
  auto per_thread = BuildFlatFrames(threads);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&ar, frames = &per_thread[static_cast<std::size_t>(
                                     t)]] {
      for (auto& frame : *frames) ar.IngestBatch(std::move(frame));
    });
  }
  for (auto& w : workers) w.join();
  return kEvents / SecondsSince(t0);
}

enum class Mode { kRecord, kBatch, kFlat };

struct IngestCell {
  int threads;
  std::size_t segment_records;  // 0 = legacy store
  Mode mode;
  double events_per_s;
};

IngestCell RunSegmented(int threads, std::size_t segment_records, Mode mode) {
  std::vector<double> per_s;
  for (int pass = 0; pass < kIngestPasses; ++pass) {
    archive::SegmentConfig config;
    config.max_records = segment_records;
    config.max_span = 1000 * kHour;  // record bound governs the sweep
    config.stripes = 8;
    archive::EventArchive ar("bench", 1, config);
    per_s.push_back(mode == Mode::kBatch   ? IngestBatchedPerSec(ar, threads)
                    : mode == Mode::kFlat ? IngestFlatPerSec(ar, threads)
                                          : IngestEventsPerSec(ar, threads));
    if (ar.size() != kEvents) {
      std::fprintf(stderr, "segmented store lost records: %zu of %d\n",
                   ar.size(), kEvents);
      std::exit(1);
    }
  }
  return {threads, segment_records, mode, Median(per_s)};
}

IngestCell RunLegacy(int threads) {
  std::vector<double> per_s;
  for (int pass = 0; pass < kIngestPasses; ++pass) {
    LegacySeedStore store;
    per_s.push_back(IngestEventsPerSec(store, threads));
    if (store.size() != kEvents) {
      std::fprintf(stderr, "legacy store lost records\n");
      std::exit(1);
    }
  }
  return {threads, 0, Mode::kRecord, Median(per_s)};
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kRecord: return "record";
    case Mode::kBatch: return "batch";
    default: return "flat";
  }
}

struct QueryCell {
  std::string name;
  double window_fraction;
  std::string glob;  // empty = plain range query
  double query_us;
  std::size_t records;
  std::size_t segments_scanned;
  std::size_t segments_total;
};

QueryCell RunQuery(const archive::EventArchive& ar, std::string name,
                   double window_fraction, std::string glob) {
  const TimePoint span = static_cast<TimePoint>(kEvents) * kTick;
  const auto width =
      static_cast<TimePoint>(static_cast<double>(span) * window_fraction);
  const TimePoint t0 = span / 2 - width / 2;
  archive::QueryStats stats;
  std::vector<double> micros;
  std::size_t records = 0;
  for (int pass = 0; pass < kQueryPasses; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    auto rows = glob.empty()
                    ? ar.QueryRange(t0, t0 + width, &stats)
                    : ar.QueryEvents(glob, t0, t0 + width, &stats);
    micros.push_back(SecondsSince(start) * 1e6);
    records = rows.size();
  }
  return {std::move(name), window_fraction, std::move(glob), Median(micros),
          records, stats.segments_scanned, stats.segments_total};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_archive.json";

  // ---- ingest sweep: threads × segment size, plus the legacy store
  const std::vector<int> thread_sweep = {1, 2, 4};
  const std::vector<std::size_t> segment_sweep = {1024, 8192, 65536};
  std::vector<IngestCell> cells;
  for (int threads : thread_sweep) {
    cells.push_back(RunLegacy(threads));
    for (std::size_t seg : segment_sweep) {
      cells.push_back(RunSegmented(threads, seg, Mode::kRecord));
      cells.push_back(RunSegmented(threads, seg, Mode::kBatch));
      cells.push_back(RunSegmented(threads, seg, Mode::kFlat));
    }
  }
  for (const auto& cell : cells) {
    if (cell.segment_records == 0) {
      std::printf("legacy          %dt:              %12.0f events/s\n",
                  cell.threads, cell.events_per_s);
    } else {
      std::printf("segmented %-6s %dt, seg %6zu: %12.0f events/s\n",
                  ModeName(cell.mode), cell.threads, cell.segment_records,
                  cell.events_per_s);
    }
  }

  auto rate = [&](int threads, std::size_t seg, Mode mode) {
    for (const auto& cell : cells) {
      if (cell.threads == threads && cell.segment_records == seg &&
          cell.mode == mode) {
        return cell.events_per_s;
      }
    }
    return 0.0;
  };
  // Best batched segmented configuration per thread count vs legacy at
  // the SAME thread count: what the production (gateway-framed) ingest
  // path sustains against the seed store fed the same events.
  auto best_segmented = [&](int threads, Mode mode) {
    double best = 0;
    for (std::size_t seg : segment_sweep) {
      best = std::max(best, rate(threads, seg, mode));
    }
    return best;
  };
  // "Segmented vs legacy" takes the segmented store's best batched mode.
  // Since ISSUE 7 that is the FlatBatch arena-splice path — the one the
  // production producers (archiver pump, gateway frames) actually feed —
  // while the owned-Record-vector overload survives as a compatibility
  // shim that now pays its flat conversion at ingest instead of deferring
  // string work to every query.
  auto best_batched = [&](int threads) {
    return std::max(best_segmented(threads, Mode::kBatch),
                    best_segmented(threads, Mode::kFlat));
  };
  const double speedup_1t = best_batched(1) / rate(1, 0, Mode::kRecord);
  const double speedup_4t = best_batched(4) / rate(4, 0, Mode::kRecord);
  std::printf("segmented vs legacy: %.2fx at 1 thread, %.2fx at 4 threads\n",
              speedup_1t, speedup_4t);
  // ISSUE 7: the flat arena-splice path against the PR 6 batched path
  // (owned Record vectors) at the same thread count, and the conversion
  // shim itself against the legacy store — it must stay a win even while
  // paying the Record→flat transcription.
  const double flat_speedup_4t =
      best_segmented(4, Mode::kFlat) / best_segmented(4, Mode::kBatch);
  const double convert_speedup_4t =
      best_segmented(4, Mode::kBatch) / rate(4, 0, Mode::kRecord);
  std::printf("flat vs batched ingest at 4 threads: %.2fx\n", flat_speedup_4t);
  std::printf("Record-vector conversion shim vs legacy at 4 threads: %.2fx\n",
              convert_speedup_4t);

  // ---- query selectivity sweep over a sealed 1M-event archive
  archive::SegmentConfig config;
  config.max_records = 8192;
  config.max_span = 1000 * kHour;
  config.stripes = 8;
  archive::EventArchive ar("bench", 1, config);
  (void)IngestEventsPerSec(ar, 4);
  ar.SealActive();
  std::vector<QueryCell> queries;
  queries.push_back(RunQuery(ar, "narrow_glob", 0.001, "EVT_3"));
  queries.push_back(RunQuery(ar, "narrow_range", 0.001, ""));
  queries.push_back(RunQuery(ar, "mid_range", 0.10, ""));
  queries.push_back(RunQuery(ar, "full_range", 1.0, ""));
  for (const auto& q : queries) {
    std::printf(
        "query %-12s window %5.1f%%: %9.0f us, %7zu records, scanned "
        "%zu/%zu segments\n",
        q.name.c_str(), q.window_fraction * 100, q.query_us, q.records,
        q.segments_scanned, q.segments_total);
  }

  // ---- hard acceptance floors
  if (speedup_4t < 5.0) {
    std::fprintf(stderr,
                 "FAIL: segmented ingest at 4 threads is %.2fx the legacy "
                 "store (floor: 5x)\n",
                 speedup_4t);
    return 1;
  }
  if (flat_speedup_4t < 3.0) {
    std::fprintf(stderr,
                 "FAIL: flat-batch ingest at 4 threads is %.2fx the Record "
                 "batched path (floor: 3x)\n",
                 flat_speedup_4t);
    return 1;
  }
  if (convert_speedup_4t < 2.0) {
    std::fprintf(stderr,
                 "FAIL: the Record-vector conversion shim at 4 threads is "
                 "%.2fx the legacy store (floor: 2x)\n",
                 convert_speedup_4t);
    return 1;
  }
  const QueryCell& narrow = queries.front();
  if (narrow.segments_scanned >= narrow.segments_total) {
    std::fprintf(stderr,
                 "FAIL: narrow query scanned %zu of %zu segments — pruning "
                 "is not working\n",
                 narrow.segments_scanned, narrow.segments_total);
    return 1;
  }

  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"bench_archive\",\n");
  std::fprintf(json,
               "  \"workload\": \"1M events, 8 hosts, 8 event names; "
               "lock-striped segmented store vs the seed single-mutex "
               "store; thread x segment-size ingest sweep in both "
               "record-at-a-time, batched (gateway-framed, move-based), and "
               "flat (FlatBatch arena-splice, ISSUE 7) modes; speedups "
               "compare the batched production path to legacy at the same "
               "thread count, and flat to batched; query selectivity sweep "
               "with pruning stats\",\n");
  std::fprintf(json,
               "  \"method\": \"median of %d ingest / %d query passes; "
               "ratios are machine-independent\",\n",
               kIngestPasses, kQueryPasses);
  std::fprintf(json, "  \"results\": {\n");
  std::fprintf(json, "    \"ingest\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    std::fprintf(json,
                 "      {\"store\": \"%s\", \"mode\": \"%s\", "
                 "\"threads\": %d, \"segment_records\": %zu, "
                 "\"events_per_s\": %.0f}%s\n",
                 cell.segment_records == 0 ? "legacy" : "segmented",
                 ModeName(cell.mode), cell.threads, cell.segment_records,
                 cell.events_per_s, i + 1 == cells.size() ? "" : ",");
  }
  std::fprintf(json, "    ],\n");
  std::fprintf(json, "    \"queries\": [\n");
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    std::fprintf(json,
                 "      {\"name\": \"%s\", \"window_fraction\": %.3f, "
                 "\"query_us\": %.0f, \"records\": %zu, "
                 "\"segments_scanned\": %zu, \"segments_total\": %zu}%s\n",
                 q.name.c_str(), q.window_fraction, q.query_us, q.records,
                 q.segments_scanned, q.segments_total,
                 i + 1 == queries.size() ? "" : ",");
  }
  std::fprintf(json, "    ],\n");
  std::fprintf(json, "    \"ingest_speedup_1t\": %.2f,\n", speedup_1t);
  std::fprintf(json, "    \"ingest_speedup_4t\": %.2f,\n", speedup_4t);
  std::fprintf(json, "    \"flat_ingest_speedup_4t\": %.2f,\n",
               flat_speedup_4t);
  std::fprintf(json, "    \"convert_ingest_speedup_4t\": %.2f,\n",
               convert_speedup_4t);
  std::fprintf(json,
               "    \"narrow_query_segment_scan_fraction\": %.4f\n",
               static_cast<double>(narrow.segments_scanned) /
                   static_cast<double>(narrow.segments_total));
  std::fprintf(json, "  }\n");
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
