// E11 (§3): event encoding costs. The paper plans "a binary format option
// for high throughput event data that can not tolerate the parsing
// overhead of ASCII formats" and a ULM→XML gateway filter. Measures
// serialize + parse throughput for all three encodings over a
// representative sensor record, plus sizes.
#include <benchmark/benchmark.h>

#include "common/time_util.hpp"
#include "ulm/binary.hpp"
#include "ulm/record.hpp"
#include "ulm/xml.hpp"

using namespace jamm;       // NOLINT: bench brevity
using namespace jamm::ulm;  // NOLINT

namespace {

Record SensorRecord(int user_fields) {
  Record rec(*ParseUlmDate("20000330112320.957943"), "dpss1.lbl.gov",
             "netstat", "Usage", "TCPD_RETRANSMITS");
  rec.SetField("VAL", std::int64_t{4});
  for (int i = 1; i < user_fields; ++i) {
    rec.SetField("F" + std::to_string(i), static_cast<std::int64_t>(i * 997));
  }
  return rec;
}

void BM_AsciiSerialize(benchmark::State& state) {
  Record rec = SensorRecord(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string line = rec.ToAscii();
    bytes += line.size();
    benchmark::DoNotOptimize(line);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AsciiSerialize)->Arg(1)->Arg(8)->Arg(32);

void BM_AsciiParse(benchmark::State& state) {
  const std::string line =
      SensorRecord(static_cast<int>(state.range(0))).ToAscii();
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto rec = Record::FromAscii(line);
    bytes += line.size();
    benchmark::DoNotOptimize(rec);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AsciiParse)->Arg(1)->Arg(8)->Arg(32);

void BM_BinaryEncode(benchmark::State& state) {
  Record rec = SensorRecord(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string data = EncodeBinary(rec);
    bytes += data.size();
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BinaryEncode)->Arg(1)->Arg(8)->Arg(32);

void BM_BinaryDecode(benchmark::State& state) {
  const std::string data =
      EncodeBinary(SensorRecord(static_cast<int>(state.range(0))));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::size_t offset = 0;
    auto rec = DecodeBinary(data, &offset);
    bytes += data.size();
    benchmark::DoNotOptimize(rec);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_BinaryDecode)->Arg(1)->Arg(8)->Arg(32);

void BM_XmlEmit(benchmark::State& state) {
  Record rec = SensorRecord(static_cast<int>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string xml = ToXml(rec);
    bytes += xml.size();
    benchmark::DoNotOptimize(xml);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_XmlEmit)->Arg(1)->Arg(8)->Arg(32);

void PrintSizes() {
  std::printf("\nE11 record sizes (8 user fields): ascii %zu B, binary "
              "%zu B, xml %zu B\n",
              SensorRecord(8).ToAscii().size(),
              EncodeBinary(SensorRecord(8)).size(),
              ToXml(SensorRecord(8)).size());
  std::printf("shape check: binary decode should beat ascii parse (the "
              "§3 motivation for a binary option).\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E11 / §3 — ULM codec throughput: ASCII vs binary vs XML\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintSizes();
  return 0;
}
