// ISSUE 3 tentpole: load-generator benchmark for the encode-once batched
// event pipeline.
//
// Part A — encode-once fan-out. Publishes vmstat records through an
// EventGateway whose N subscribers all want the binary wire format, twice:
// a baseline where every subscriber callback re-encodes the record itself
// (the pre-ISSUE-3 shape: O(subscribers) serializations per event) and the
// encode-once path where callbacks read the shared EncodedRecord cache
// (one serialization per event). Speedups are judged by the median of
// paired-pass ratios, like bench_telemetry_overhead, so noise shared by a
// pair cancels.
//
// Part B — batched wire delivery. Serves the gateway over the in-proc
// transport and streams events to one remote consumer, sweeping batch size
// × publish burst size (the event-rate proxy under SimClock). Counts
// transport frames on the wire and measures end-to-end records/s including
// the consumer-side decode (ASCII for the unbatched protocol, binary batch
// for the batched one).
//
// Emits BENCH_pipeline.json (path = argv[1], default ./BENCH_pipeline.json)
// for scripts/check_bench.sh, and exits 1 if the acceptance bars fail:
// >= 5x encode-once speedup at 64 binary subscribers, >= 10x fewer sends
// at batch size 16.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <map>
#include <thread>

#include "archive/archive.hpp"
#include "gateway/gateway.hpp"
#include "gateway/service.hpp"
#include "sensors/host_sensors.hpp"
#include "sysmon/simhost.hpp"
#include "transport/inproc.hpp"
#include "transport/net_sink.hpp"
#include "transport/ring.hpp"
#include "ulm/binary.hpp"
#include "ulm/flat.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

constexpr int kRepeats = 7;
constexpr int kFanoutPublishes = 20000;
constexpr int kWireEvents = 100000;
constexpr double kMinSpeedup64 = 5.0;
constexpr double kMinSendReduction16 = 10.0;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<ulm::Record> BenchEvents() {
  SimClock clock;
  sysmon::SimHost host("dpss1.lbl.gov", clock);
  sensors::VmstatSensor vmstat("vmstat", clock, host, kSecond);
  (void)vmstat.Start();
  std::vector<ulm::Record> events;
  vmstat.Poll(events);
  return events;
}

// ------------------------------------------------- Part A: encode-once

/// One timed pass: kFanoutPublishes events through a gateway with `nsubs`
/// binary-format subscribers. `encode_once` false re-encodes per
/// subscriber (the baseline the tentpole replaced).
double TimedFanoutPass(const std::vector<ulm::Record>& events, int nsubs,
                       bool encode_once) {
  SimClock clock;
  gateway::EventGateway gw("gw", clock);
  std::uint64_t sink = 0;
  for (int c = 0; c < nsubs; ++c) {
    gateway::EventGateway::EncodedCallback cb;
    if (encode_once) {
      cb = [&sink](const ulm::EncodedRecord& enc) {
        sink += enc.Binary().size();  // shared cache: 1 encode per publish
      };
    } else {
      cb = [&sink](const ulm::EncodedRecord& enc) {
        sink += ulm::EncodeBinary(enc.record()).size();  // per-subscriber
      };
    }
    (void)gw.SubscribeEncoded("c" + std::to_string(c), {}, std::move(cb));
  }
  const double t0 = NowSeconds();
  for (int i = 0; i < kFanoutPublishes; ++i) {
    gw.Publish(events[static_cast<std::size_t>(i) % events.size()]);
  }
  const double elapsed = NowSeconds() - t0;
  if (sink == 0) std::fprintf(stderr, "impossible: no deliveries\n");
  return elapsed;
}

struct FanoutRow {
  int subscribers;
  double baseline_rate;     // publishes/s, per-subscriber encode
  double encode_once_rate;  // publishes/s, shared EncodedRecord
  double speedup;           // median of paired ratios
};

FanoutRow MeasureFanout(const std::vector<ulm::Record>& events, int nsubs) {
  (void)TimedFanoutPass(events, nsubs, false);  // warm both paths
  (void)TimedFanoutPass(events, nsubs, true);
  double base = 1e30, once = 1e30;
  std::vector<double> ratios;
  for (int r = 0; r < kRepeats; ++r) {
    const double b = TimedFanoutPass(events, nsubs, false);
    const double o = TimedFanoutPass(events, nsubs, true);
    base = std::min(base, b);
    once = std::min(once, o);
    ratios.push_back(b / o);
  }
  std::sort(ratios.begin(), ratios.end());
  return {nsubs, kFanoutPublishes / base, kFanoutPublishes / once,
          ratios[ratios.size() / 2]};
}

// --------------------------------------------- Part B: batched delivery

struct WireRow {
  std::size_t batch;  // 0 = unbatched ASCII protocol
  int burst;          // publishes between consumer drains (rate proxy)
  std::uint64_t frames;
  double records_per_s;  // end-to-end, including consumer decode
};

/// One timed pass: kWireEvents records through gateway → service → in-proc
/// channel → raw consumer that counts frames and decodes every record.
WireRow TimedWirePass(const std::vector<ulm::Record>& events,
                      std::size_t batch, int burst) {
  SimClock clock;
  gateway::EventGateway gw("gw", clock);
  transport::InProcNetwork net;
  auto listener = net.Listen("gw");
  gateway::GatewayService service(gw, std::move(*listener));
  auto channel = net.Dial("gw");
  service.PollOnce();
  const std::string payload =
      batch == 0 ? "bench\nall"
                 : "bench\nall\nbatch:" + std::to_string(batch);
  (void)(*channel)->Send({"gw.subscribe", payload});
  service.PollOnce();
  (void)(*channel)->Receive(kSecond);  // gw.ok

  WireRow row{batch, burst, 0, 0};
  std::uint64_t decoded = 0;
  auto drain = [&] {
    while (auto msg = (*channel)->TryReceive()) {
      ++row.frames;
      if (msg->type == transport::kEventBatchMessageType) {
        auto records = transport::DecodeEventBatch(*msg);
        if (records.ok()) decoded += records->size();
      } else {
        if (ulm::Record::FromAscii(msg->payload).ok()) ++decoded;
      }
    }
  };
  const double t0 = NowSeconds();
  for (int i = 0; i < kWireEvents; ++i) {
    gw.Publish(events[static_cast<std::size_t>(i) % events.size()]);
    if (i % burst == burst - 1) drain();
  }
  clock.Advance(service.batch_max_age());
  service.PollOnce();  // flush the partial tail batch
  drain();
  row.records_per_s = kWireEvents / (NowSeconds() - t0);
  if (decoded != static_cast<std::uint64_t>(kWireEvents)) {
    std::fprintf(stderr, "record loss: decoded %llu of %d\n",
                 static_cast<unsigned long long>(decoded), kWireEvents);
  }
  return row;
}

WireRow MeasureWire(const std::vector<ulm::Record>& events, std::size_t batch,
                    int burst) {
  WireRow best = TimedWirePass(events, batch, burst);  // warm-up counts too
  for (int r = 0; r < 3; ++r) {
    WireRow row = TimedWirePass(events, batch, burst);
    if (row.records_per_s > best.records_per_s) best = row;
  }
  return best;
}

// ------------------------------------------- Part C: flat record hot path

constexpr int kFlatEvents = 200000;
constexpr int kFlatSubs = 8;
constexpr std::size_t kFlatFrame = 256;
constexpr double kMinFlatSpeedup = 3.0;

archive::EventArchive MakePipelineArchive() {
  archive::SegmentConfig config;
  config.max_records = 8192;
  config.max_span = 1000 * kHour;
  config.stripes = 8;
  return archive::EventArchive("bench", 1, config);
}

/// The pre-ISSUE-7 shape of one sensor→manager→gateway→republisher→archive
/// trip, reconstructed faithfully: a string-keyed Record is COPIED at each
/// hand-off (manager queue, gateway cache/fan-out, federation republish),
/// hop stamps go through string-keyed SetField, routing and summary
/// bookkeeping compare event-name strings, and the archive takes owned
/// Record frames (the PR 6 batched path).
double TimedLegacyPipelinePass(const std::vector<ulm::Record>& events) {
  auto ar = MakePipelineArchive();
  std::map<std::string, std::uint64_t> summary;
  ulm::Record last_event;  // gateway last-event caches (GetLastEvent)
  std::map<std::string, ulm::Record> last_by_event;
  std::vector<std::string> want;
  for (int s = 0; s < kFlatSubs; ++s) {
    want.push_back(s % 2 ? events[0].event_name() : "other.event");
  }
  std::vector<ulm::Record> frame;
  frame.reserve(kFlatFrame);
  std::uint64_t sink = 0;
  const double t0 = NowSeconds();
  for (int i = 0; i < kFlatEvents; ++i) {
    const auto& rec = events[static_cast<std::size_t>(i) % events.size()];
    ulm::Record hop1 = rec;                    // manager queue hand-off
    hop1.SetField("HOP.MGR", "1");
    ulm::Record hop2 = hop1;                   // gateway fan-out copy
    hop2.SetField("HOP.GW", "1");
    summary[hop2.event_name()]++;              // string-keyed summary
    last_event = hop2;                         // gateway caches: two full
    last_by_event[hop2.event_name()] = hop2;   // Record copies per publish
    ulm::EncodedRecord enc(hop2);
    for (const auto& w : want) {               // per-subscriber routing
      if (hop2.event_name() == w) sink += enc.Binary().size();
    }
    ulm::Record hop3 = hop2;                   // republisher hand-off
    hop3.SetField("HOP.FED", "1");
    frame.push_back(std::move(hop3));
    if (frame.size() == kFlatFrame) {
      ar.IngestBatch(std::move(frame));
      frame = {};
      frame.reserve(kFlatFrame);
    }
  }
  if (!frame.empty()) ar.IngestBatch(std::move(frame));
  const double elapsed = NowSeconds() - t0;
  if (sink == 0 || ar.size() != static_cast<std::size_t>(kFlatEvents)) {
    std::fprintf(stderr, "legacy pipeline lost records\n");
    std::exit(1);
  }
  return elapsed;
}

/// The same trip on the flat core. The sensor edge builds flat records
/// natively with pre-interned symbols (what the migrated SensorManager
/// does), so the corpus is flat before the timed region — symmetric with
/// the legacy pass, which starts from its native Record corpus. Each
/// event then pays the manager hand-off copy, symbol stamps, symbol-keyed
/// summary/routing, encode-once off the view, and a FlatBatch splice into
/// the archive.
double TimedFlatPipelinePass(const std::vector<ulm::Record>& events) {
  auto ar = MakePipelineArchive();
  std::map<ulm::Symbol, std::uint64_t> summary;
  ulm::FlatRecord last_event;  // gateway last-event caches (GetLastEvent)
  std::map<ulm::Symbol, ulm::FlatRecord> last_by_event;
  const ulm::Symbol hop_mgr = ulm::InternSymbol("HOP.MGR");
  const ulm::Symbol hop_gw = ulm::InternSymbol("HOP.GW");
  const ulm::Symbol hop_fed = ulm::InternSymbol("HOP.FED");
  std::vector<ulm::Symbol> want;
  for (int s = 0; s < kFlatSubs; ++s) {
    want.push_back(s % 2 ? ulm::InternSymbol(events[0].event_name())
                         : ulm::InternSymbol("other.event"));
  }
  std::vector<ulm::FlatRecord> corpus;  // the sensors' native output
  corpus.reserve(events.size());
  for (const auto& rec : events) corpus.push_back(ulm::FlatRecord::FromRecord(rec));
  ulm::FlatRecord scratch;
  ulm::FlatBatch batch;
  std::uint64_t sink = 0;
  const double t0 = NowSeconds();
  for (int i = 0; i < kFlatEvents; ++i) {
    scratch = corpus[static_cast<std::size_t>(i) % corpus.size()];
    scratch.SetField(hop_mgr, "1");
    scratch.SetField(hop_gw, "1");             // view rides the gateway hop
    const ulm::RecordView view = scratch.View();
    summary[view.event_sym()]++;               // symbol-keyed summary
    last_event = scratch;                      // gateway caches: two flat
    last_by_event[view.event_sym()] = scratch;  // buffer copies per publish
    ulm::EncodedRecord enc(view);
    for (ulm::Symbol w : want) {               // per-subscriber routing
      if (view.event_sym() == w) sink += enc.Binary().size();
    }
    scratch.SetField(hop_fed, "1");            // republisher stamp, in place
    (void)batch.Append(scratch.View());
    if (batch.size() == kFlatFrame) {
      ar.IngestBatch(std::move(batch));
      batch = {};
    }
  }
  if (!batch.empty()) ar.IngestBatch(std::move(batch));
  const double elapsed = NowSeconds() - t0;
  if (sink == 0 || ar.size() != static_cast<std::size_t>(kFlatEvents)) {
    std::fprintf(stderr, "flat pipeline lost records\n");
    std::exit(1);
  }
  return elapsed;
}

struct FlatRow {
  double legacy_rate;
  double flat_rate;
  double speedup;  // median of paired ratios
};

FlatRow MeasureFlatPipeline(const std::vector<ulm::Record>& events) {
  (void)TimedLegacyPipelinePass(events);  // warm both paths
  (void)TimedFlatPipelinePass(events);
  double legacy = 1e30, flat = 1e30;
  std::vector<double> ratios;
  for (int r = 0; r < kRepeats; ++r) {
    const double l = TimedLegacyPipelinePass(events);
    const double f = TimedFlatPipelinePass(events);
    legacy = std::min(legacy, l);
    flat = std::min(flat, f);
    ratios.push_back(l / f);
  }
  std::sort(ratios.begin(), ratios.end());
  return {kFlatEvents / legacy, kFlatEvents / flat, ratios[ratios.size() / 2]};
}

// ------------------------------------------------- Part D: ring channels

constexpr int kHopMessages = 400000;

/// One producer thread blasting small frames across a channel pair to a
/// consumer draining on the main thread — the in-proc sensor→manager hop.
double TimedHopPass(bool ring) {
  auto [tx, rx] = ring ? transport::MakeRingChannelPair("bench", 4096)
                       : transport::MakeChannelPair("bench", 4096);
  const transport::Message msg{"event", "DATE=x HOST=h PROG=p LVL=Usage"};
  const double t0 = NowSeconds();
  std::thread producer([tx = tx.get(), &msg] {
    for (int i = 0; i < kHopMessages; ++i) (void)tx->Send(msg);
  });
  std::uint64_t got = 0;
  while (got < static_cast<std::uint64_t>(kHopMessages)) {
    if (rx->Receive(kSecond).ok()) ++got;
  }
  producer.join();
  return NowSeconds() - t0;
}

double MeasureRingHopSpeedup(double* mutex_rate, double* ring_rate) {
  (void)TimedHopPass(false);  // warm
  (void)TimedHopPass(true);
  double mutexed = 1e30, ringed = 1e30;
  std::vector<double> ratios;
  for (int r = 0; r < kRepeats; ++r) {
    const double m = TimedHopPass(false);
    const double g = TimedHopPass(true);
    mutexed = std::min(mutexed, m);
    ringed = std::min(ringed, g);
    ratios.push_back(m / g);
  }
  std::sort(ratios.begin(), ratios.end());
  *mutex_rate = kHopMessages / mutexed;
  *ring_rate = kHopMessages / ringed;
  return ratios[ratios.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  const auto events = BenchEvents();

  std::printf("event pipeline throughput — encode-once fan-out and batched "
              "wire delivery\n\n");

  // Part A: subscriber sweep.
  std::printf("fan-out (%d publishes, binary subscribers, median of %d "
              "paired ratios)\n", kFanoutPublishes, kRepeats);
  std::printf("%-12s | %18s | %18s | %8s\n", "subscribers",
              "per-sub encode/s", "encode-once/s", "speedup");
  std::vector<FanoutRow> fanout;
  for (int nsubs : {1, 8, 64}) {
    fanout.push_back(MeasureFanout(events, nsubs));
    const auto& r = fanout.back();
    std::printf("%-12d | %18.0f | %18.0f | %7.2fx\n", r.subscribers,
                r.baseline_rate, r.encode_once_rate, r.speedup);
  }

  // Part B: batch × burst sweep. Unbatched (batch 0) first, as the frame
  // baseline for the send-reduction column.
  std::printf("\nwire delivery (%d records to one remote consumer, best of "
              "4)\n", kWireEvents);
  std::printf("%-8s | %6s | %8s | %12s | %10s\n", "batch", "burst", "frames",
              "records/s", "sends cut");
  std::vector<WireRow> wire;
  for (int burst : {32, 1024}) {
    for (std::size_t batch : {std::size_t{0}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}}) {
      wire.push_back(MeasureWire(events, batch, burst));
    }
  }
  auto unbatched_frames = [&](int burst) -> double {
    for (const auto& r : wire) {
      if (r.batch == 0 && r.burst == burst) return static_cast<double>(r.frames);
    }
    return 0;
  };
  for (const auto& r : wire) {
    const double cut = unbatched_frames(r.burst) / static_cast<double>(r.frames);
    std::printf("%-8s | %6d | %8llu | %12.0f | %9.1fx\n",
                r.batch == 0 ? "none" : std::to_string(r.batch).c_str(),
                r.burst, static_cast<unsigned long long>(r.frames),
                r.records_per_s, cut);
  }

  // Part C: flat record hot path (ISSUE 7).
  std::printf("\nflat pipeline (%d events, %d subscribers, 3 hops + archive, "
              "median of %d paired ratios)\n",
              kFlatEvents, kFlatSubs, kRepeats);
  const FlatRow flat = MeasureFlatPipeline(events);
  std::printf("string-keyed Record: %12.0f events/s\n", flat.legacy_rate);
  std::printf("flat RecordView:     %12.0f events/s  (%.2fx)\n",
              flat.flat_rate, flat.speedup);

  // Part D: ring vs mutex in-proc hop (ISSUE 7).
  double mutex_rate = 0, ring_rate = 0;
  const double ring_speedup = MeasureRingHopSpeedup(&mutex_rate, &ring_rate);
  std::printf("\nin-proc hop (%d messages, 1 producer thread, median of %d "
              "paired ratios)\n", kHopMessages, kRepeats);
  std::printf("mutex+condvar queue: %12.0f msgs/s\n", mutex_rate);
  std::printf("MPSC ring:           %12.0f msgs/s  (%.2fx)\n", ring_rate,
              ring_speedup);

  // Acceptance metrics.
  const double speedup64 = fanout.back().speedup;
  double reduction16 = 0;
  for (const auto& r : wire) {
    if (r.batch == 16 && r.burst == 1024) {
      reduction16 = unbatched_frames(r.burst) / static_cast<double>(r.frames);
    }
  }
  std::printf("\nencode-once speedup at 64 subscribers: %.2fx (floor %.1fx)\n",
              speedup64, kMinSpeedup64);
  std::printf("send reduction at batch 16: %.1fx (floor %.1fx)\n",
              reduction16, kMinSendReduction16);
  std::printf("flat pipeline speedup: %.2fx (floor %.1fx)\n", flat.speedup,
              kMinFlatSpeedup);
  std::printf("ring hop speedup: %.2fx\n", ring_speedup);

  // Machine-readable results for scripts/check_bench.sh.
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(json, "{\n");
  std::fprintf(json, "  \"bench\": \"bench_pipeline_throughput\",\n");
  std::fprintf(json, "  \"workload\": \"vmstat records; fan-out %d publishes "
               "x {1,8,64} binary subscribers; wire %d records x batch "
               "{none,4,16,64} x burst {32,1024} over in-proc transport\",\n",
               kFanoutPublishes, kWireEvents);
  std::fprintf(json, "  \"method\": \"fan-out speedup = median of %d paired "
               "baseline/encode-once ratios; wire rows = best of 4 passes; "
               "frames counted at the consumer\",\n", kRepeats);
  std::fprintf(json, "  \"results\": {\n");
  std::fprintf(json, "    \"fanout\": [\n");
  for (std::size_t i = 0; i < fanout.size(); ++i) {
    const auto& r = fanout[i];
    std::fprintf(json, "      {\"subscribers\": %d, \"baseline_per_s\": %.0f, "
                 "\"encode_once_per_s\": %.0f, \"speedup\": %.2f}%s\n",
                 r.subscribers, r.baseline_rate, r.encode_once_rate, r.speedup,
                 i + 1 < fanout.size() ? "," : "");
  }
  std::fprintf(json, "    ],\n");
  std::fprintf(json, "    \"wire\": [\n");
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const auto& r = wire[i];
    std::fprintf(json, "      {\"batch\": %llu, \"burst\": %d, \"frames\": "
                 "%llu, \"records_per_s\": %.0f}%s\n",
                 static_cast<unsigned long long>(r.batch), r.burst,
                 static_cast<unsigned long long>(r.frames), r.records_per_s,
                 i + 1 < wire.size() ? "," : "");
  }
  std::fprintf(json, "    ],\n");
  std::fprintf(json, "    \"encode_once_speedup_64subs\": %.2f,\n", speedup64);
  std::fprintf(json, "    \"encode_once_speedup_floor\": %.1f,\n",
               kMinSpeedup64);
  std::fprintf(json, "    \"send_reduction_batch16\": %.1f,\n", reduction16);
  std::fprintf(json, "    \"send_reduction_floor\": %.1f,\n",
               kMinSendReduction16);
  std::fprintf(json, "    \"flat_pipeline\": {\"legacy_per_s\": %.0f, "
               "\"flat_per_s\": %.0f},\n", flat.legacy_rate, flat.flat_rate);
  std::fprintf(json, "    \"flat_speedup\": %.2f,\n", flat.speedup);
  std::fprintf(json, "    \"flat_speedup_floor\": %.1f,\n", kMinFlatSpeedup);
  std::fprintf(json, "    \"ring_hop\": {\"mutex_per_s\": %.0f, "
               "\"ring_per_s\": %.0f},\n", mutex_rate, ring_rate);
  std::fprintf(json, "    \"ring_hop_speedup\": %.2f\n", ring_speedup);
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (speedup64 < kMinSpeedup64 || reduction16 < kMinSendReduction16) {
    std::printf("FAIL: pipeline acceptance bars not met\n");
    return 1;
  }
  if (flat.speedup < kMinFlatSpeedup) {
    std::printf("FAIL: flat pipeline speedup %.2fx below floor %.1fx\n",
                flat.speedup, kMinFlatSpeedup);
    return 1;
  }
  std::printf("PASS: encode-once, batching, and the flat hot path meet "
              "their floors\n");
  return 0;
}
