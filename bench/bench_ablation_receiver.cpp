// Ablation bench — which model ingredients produce the paper's §6 WAN
// anomaly? (DESIGN.md §8 flags the receiver model as the one calibrated
// component; this bench shows what each knob contributes.)
//
// Sweeps, all on the Matisse WAN with 1 and 4 streams:
//   A. per-hot-socket cost 0 → 180 µs   (0 = no multi-socket penalty)
//   B. hot-window threshold sweep       (who counts as "hot")
//   C. hot-dwell 0 vs 30 s              (hysteresis through recovery)
//   D. SACK on vs off                   (recovery model sensitivity)
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/profiles.hpp"
#include "netsim/tcp.hpp"

using namespace jamm;          // NOLINT: bench brevity
using namespace jamm::netsim;  // NOLINT

namespace {

double RunWan(int streams, const ReceiverModel& model, bool sack,
              Duration span = 15 * kSecond) {
  Simulator sim;
  Network net(sim, 42);
  MatisseTopology topo = BuildMatisseWan(net, streams);
  net.SetReceiverModel(topo.compute, model);  // override the default
  std::vector<std::unique_ptr<TcpFlow>> flows;
  for (int i = 0; i < streams; ++i) {
    TcpConfig config = PaperTcpConfig();
    config.total_bytes = 1ull << 40;
    config.enable_sack = sack;
    flows.push_back(std::make_unique<TcpFlow>(
        net, topo.dpss[static_cast<std::size_t>(i)], topo.compute, config));
    flows.back()->Start();
  }
  sim.RunUntil(span);
  double total = 0;
  for (const auto& flow : flows) total += flow->ThroughputBps() / 1e6;
  return total;
}

}  // namespace

int main() {
  std::printf("Ablation — receiver-model knobs vs the §6 WAN shape "
              "(target: 1 stream ≈ 140, 4 streams ≈ 30 Mbit/s)\n\n");

  std::printf("A. per-hot-socket cost (paper calibration: 90 µs)\n");
  std::printf("   %-12s %12s %12s %10s\n", "cost (µs)", "1 stream",
              "4 streams", "collapse");
  for (double cost : {0.0, 30.0, 60.0, 90.0, 140.0, 180.0}) {
    ReceiverModel model = PaperReceiverModel();
    model.per_hot_socket_cost_us = cost;
    const double one = RunWan(1, model, true);
    const double four = RunWan(4, model, true);
    std::printf("   %-12.0f %9.1f Mb %9.1f Mb %9.1fx\n", cost, one, four,
                one / four);
  }
  std::printf("   → with no penalty (0 µs) four streams do NOT collapse: "
              "the multi-socket cost is the anomaly's cause.\n\n");

  std::printf("B. hot-window threshold (paper calibration: 384 KB)\n");
  std::printf("   %-12s %12s %12s\n", "threshold", "4 WAN", "4 LAN");
  for (double kb : {64.0, 192.0, 384.0, 1024.0}) {
    ReceiverModel model = PaperReceiverModel();
    model.hot_window_bytes = kb * 1024;
    const double wan = RunWan(4, model, true);
    // LAN with the same model override.
    Simulator sim;
    Network net(sim, 42);
    LanTopology lan = BuildGigabitLan(net, 4);
    net.SetReceiverModel(lan.receiver, model);
    std::vector<std::unique_ptr<TcpFlow>> flows;
    for (int i = 0; i < 4; ++i) {
      TcpConfig config = PaperTcpConfig();
      config.total_bytes = 1ull << 40;
      flows.push_back(std::make_unique<TcpFlow>(
          net, lan.senders[static_cast<std::size_t>(i)], lan.receiver,
          config));
      flows.back()->Start();
    }
    sim.RunUntil(15 * kSecond);
    double lan_total = 0;
    for (const auto& flow : flows) lan_total += flow->ThroughputBps() / 1e6;
    std::printf("   %-9.0fKB %9.1f Mb %9.1f Mb\n", kb, wan, lan_total);
  }
  std::printf("   → too low a threshold drags the LAN down too; too high "
              "and WAN sockets never count as hot.\n     The WAN/LAN "
              "separation exists because WAN windows (~1 MB) and LAN "
              "windows (~10s of KB) straddle it.\n\n");

  std::printf("C. hot-dwell hysteresis (paper calibration: 30 s)\n");
  std::printf("   %-12s %12s\n", "dwell", "4 WAN streams");
  for (Duration dwell : {Duration{0}, 2 * kSecond, 30 * kSecond}) {
    ReceiverModel model = PaperReceiverModel();
    model.hot_dwell = dwell;
    std::printf("   %-9.0fs %12.1f Mb\n", ToSeconds(dwell),
                RunWan(4, model, true));
  }
  std::printf("   → without hysteresis the penalty flaps with the cwnd "
              "sawtooth and throughput partially recovers.\n\n");

  std::printf("D. recovery model (SACK vs plain NewReno)\n");
  const double sack1 = RunWan(1, PaperReceiverModel(), true);
  const double sack4 = RunWan(4, PaperReceiverModel(), true);
  const double reno1 = RunWan(1, PaperReceiverModel(), false);
  const double reno4 = RunWan(4, PaperReceiverModel(), false);
  std::printf("   %-14s %12s %12s\n", "", "1 stream", "4 streams");
  std::printf("   %-14s %9.1f Mb %9.1f Mb\n", "SACK (default)", sack1, sack4);
  std::printf("   %-14s %9.1f Mb %9.1f Mb\n", "NewReno only", reno1, reno4);
  std::printf("   → one-hole-per-RTT recovery on a 60 ms path exaggerates "
              "the collapse far beyond the paper's 30 Mbit/s;\n     "
              "2000-era stacks had SACK, so the SACK model is the "
              "faithful one.\n");
  return 0;
}
