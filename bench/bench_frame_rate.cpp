// E5 (§6): frame-rate burstiness. "Performance from the point of view of
// the client was quite bursty. Sometimes images arrived at 6 frames/sec,
// and other times only 1-2 frames/sec." — with 4 DPSS servers; a single
// server (the fix) delivers a steady ~6 fps. Prints per-2s frame-rate
// series for both configurations.
#include <cmath>
#include <cstdio>

#include "matisse/matisse.hpp"
#include "netlogger/analysis.hpp"
#include "netlogger/nlv.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

std::vector<netlogger::SeriesPoint> RunFps(int servers, Duration span) {
  netsim::Simulator sim;
  netsim::Network net(sim, 2000);
  auto topo = netsim::BuildMatisseWan(net, servers);
  matisse::MatisseConfig config;
  config.dpss_servers = servers;
  matisse::MatisseApp app(sim, net, topo, config);
  app.Start();
  sim.RunUntil(span);
  return netlogger::RatePerSecond(app.frame_arrivals(), 0, span,
                                  2 * kSecond);
}

void Print(const char* label, const std::vector<netlogger::SeriesPoint>& fps) {
  std::printf("%s\n  t(s): ", label);
  for (const auto& p : fps) std::printf("%5.0f", ToSeconds(p.ts));
  std::printf("\n  fps : ");
  double lo = 1e9, hi = 0, sum = 0;
  for (const auto& p : fps) {
    std::printf("%5.1f", p.value);
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
    sum += p.value;
  }
  std::printf("\n  min %.1f / mean %.1f / max %.1f fps\n\n", lo,
              sum / static_cast<double>(fps.size()), hi);
}

}  // namespace

int main() {
  constexpr Duration kSpan = 40 * kSecond;
  std::printf("E5 / §6 — frame rate at the client (2-second buckets)\n");
  std::printf("paper: bursty 1-6 fps with 4 servers; the single-server "
              "fix gives steady ~6 fps.\n\n");

  auto four = RunFps(4, kSpan);
  auto one = RunFps(1, kSpan);
  Print("4 DPSS servers (demo configuration):", four);
  Print("1 DPSS server (the fix):", one);

  // Shape: the 4-server run dips to <2 fps; the 1-server run holds a
  // tight band near 6 once past slow start.
  double four_min = 1e9, one_steady_min = 1e9, one_steady_max = 0;
  for (const auto& p : four) four_min = std::min(four_min, p.value);
  for (const auto& p : one) {
    if (p.ts >= 10 * kSecond) {
      one_steady_min = std::min(one_steady_min, p.value);
      one_steady_max = std::max(one_steady_max, p.value);
    }
  }
  std::printf("shape checks:\n");
  std::printf("  4-server rate dips to %.1f fps (paper: 'other times only "
              "1-2')  %s\n",
              four_min, four_min < 2.5 ? "OK" : "NOT REPRODUCED");
  std::printf("  1-server steady band %.1f-%.1f fps (paper: ~6 steady)  "
              "%s\n",
              one_steady_min, one_steady_max,
              (one_steady_min > 4 && one_steady_max < 8) ? "OK"
                                                         : "NOT REPRODUCED");
  return 0;
}
