// E4 (§6, the Iperf comparison): single vs parallel TCP streams over the
// Matisse WAN and over a gigabit LAN.
//
// Paper numbers: WAN 1 stream ≈ 140 Mbit/s, 4 streams ≈ 30 Mbit/s
// aggregate; LAN ≈ 200 Mbit/s for both; using a single DPSS server
// (one socket) restored 140 Mbit/s and lowered system CPU.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/profiles.hpp"
#include "netsim/tcp.hpp"

using namespace jamm;          // NOLINT: bench brevity
using namespace jamm::netsim;  // NOLINT

namespace {

struct RunOutcome {
  double mbit = 0;
  double cpu = 0;
  std::uint64_t retransmits = 0;
};

RunOutcome Run(bool wan, int streams, Duration span) {
  Simulator sim;
  Network net(sim, 42);
  std::vector<NodeId> sources;
  NodeId sink;
  if (wan) {
    auto topo = BuildMatisseWan(net, streams);
    sources = topo.dpss;
    sink = topo.compute;
  } else {
    auto topo = BuildGigabitLan(net, streams);
    sources = topo.senders;
    sink = topo.receiver;
  }
  std::vector<std::unique_ptr<TcpFlow>> flows;
  for (int i = 0; i < streams; ++i) {
    TcpConfig config = PaperTcpConfig();
    config.total_bytes = 1ull << 40;  // runs for the whole span
    flows.push_back(std::make_unique<TcpFlow>(
        net, sources[static_cast<std::size_t>(i)], sink, config));
    flows.back()->Start();
  }
  sim.RunUntil(span);
  RunOutcome out;
  for (const auto& flow : flows) {
    out.mbit += flow->ThroughputBps() / 1e6;
    out.retransmits += flow->stats().retransmits;
  }
  out.cpu = net.ReceiverCpuPct(sink);
  return out;
}

}  // namespace

int main() {
  constexpr Duration kSpan = 20 * kSecond;
  std::printf("E4 / §6 — Iperf: parallel-stream throughput "
              "(20 s simulated runs)\n\n");
  std::printf("%-8s %-8s | %-8s %-12s | %10s %8s %12s\n", "path",
              "streams", "paper", "(aggregate)", "measured", "rx CPU",
              "retransmits");

  struct Row {
    const char* path;
    bool wan;
    int streams;
    const char* paper;
  };
  const Row rows[] = {
      {"WAN", true, 1, "140"},  {"WAN", true, 2, "-"},
      {"WAN", true, 4, "30"},   {"WAN", true, 8, "-"},
      {"LAN", false, 1, "200"}, {"LAN", false, 4, "200"},
  };
  double wan1 = 0, wan4 = 0, lan1 = 0, lan4 = 0;
  for (const Row& row : rows) {
    RunOutcome out = Run(row.wan, row.streams, kSpan);
    std::printf("%-8s %-8d | %8s %-12s | %7.1f Mb %7.0f%% %12llu\n",
                row.path, row.streams, row.paper, "Mbit/s", out.mbit,
                out.cpu, static_cast<unsigned long long>(out.retransmits));
    if (row.wan && row.streams == 1) wan1 = out.mbit;
    if (row.wan && row.streams == 4) wan4 = out.mbit;
    if (!row.wan && row.streams == 1) lan1 = out.mbit;
    if (!row.wan && row.streams == 4) lan4 = out.mbit;
  }

  std::printf("\nshape checks:\n");
  std::printf("  WAN collapse 1→4 streams: %.1fx (paper: ~4.7x)  %s\n",
              wan1 / wan4, wan1 / wan4 > 2.5 ? "OK" : "NOT REPRODUCED");
  std::printf("  LAN unaffected by stream count: %.1f vs %.1f Mbit/s  %s\n",
              lan1, lan4,
              std::abs(lan1 - lan4) / lan1 < 0.25 ? "OK" : "NOT REPRODUCED");
  std::printf("  'the fix': 1 WAN socket ≈ %.0f Mbit/s (paper: back to "
              "140)  %s\n",
              wan1, wan1 > 100 ? "OK" : "NOT REPRODUCED");
  return 0;
}
