// E8 (§2.3, scalability): "In the case where many consumers are
// requesting the same event data, the use of an event gateway reduces the
// amount of work on and the amount of network traffic from the host being
// monitored."
//
// Two deployments of the same 60 s / 1 Hz sensor workload:
//   without gateway — every consumer subscribes at the host, so the host
//   transmits each event N times;
//   with gateway    — the host sends each event once to the gateway
//   (typically on another machine), which does the N-way fan-out.
// Reports events and bytes leaving the monitored host vs consumer count.
#include <cstdio>

#include "gateway/gateway.hpp"
#include "sensors/host_sensors.hpp"
#include "sysmon/simhost.hpp"

using namespace jamm;  // NOLINT: bench brevity

namespace {

struct Outcome {
  std::uint64_t host_events_sent = 0;  // event transmissions by the host
  std::uint64_t host_bytes_sent = 0;   // bytes on the host's uplink
  std::uint64_t consumer_events = 0;   // events received by all consumers
};

Outcome Run(int consumers, bool with_gateway) {
  SimClock clock;
  sysmon::SimHost host("dpss1.lbl.gov", clock);
  sensors::VmstatSensor vmstat("vmstat", clock, host, kSecond);
  (void)vmstat.Start();

  Outcome out;
  // The "gateway" in both cases is an EventGateway object; the difference
  // is where the fan-out happens relative to the monitored host's uplink.
  gateway::EventGateway fanout("gw", clock);
  for (int c = 0; c < consumers; ++c) {
    (void)fanout.Subscribe("consumer-" + std::to_string(c), {},
                           [&out](const ulm::Record&) {
                             ++out.consumer_events;
                           });
  }

  for (int second = 0; second < 60; ++second) {
    std::vector<ulm::Record> events;
    vmstat.Poll(events);
    for (const auto& rec : events) {
      const std::uint64_t wire_bytes = rec.ToAscii().size() + 8;
      if (with_gateway) {
        // Host → gateway once; gateway multiplies off-host.
        ++out.host_events_sent;
        out.host_bytes_sent += wire_bytes;
        fanout.Publish(rec);
      } else {
        // Host itself serves every consumer.
        out.host_events_sent += static_cast<std::uint64_t>(consumers);
        out.host_bytes_sent += wire_bytes *
                               static_cast<std::uint64_t>(consumers);
        fanout.Publish(rec);
      }
    }
    clock.Advance(kSecond);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("E8 / §2.3 — gateway fan-out: load on the monitored host "
              "vs consumer count (60 s @ 1 Hz vmstat)\n\n");
  std::printf("%10s | %22s | %22s | %9s\n", "consumers",
              "host sends (direct)", "host sends (gateway)", "saving");
  std::printf("%10s | %10s %11s | %10s %11s |\n", "", "events", "KB",
              "events", "KB");
  for (int consumers : {1, 2, 4, 8, 16, 32, 64}) {
    Outcome direct = Run(consumers, /*with_gateway=*/false);
    Outcome via_gw = Run(consumers, /*with_gateway=*/true);
    std::printf("%10d | %10llu %10.1f | %10llu %10.1f | %8.1fx\n",
                consumers,
                static_cast<unsigned long long>(direct.host_events_sent),
                static_cast<double>(direct.host_bytes_sent) / 1024.0,
                static_cast<unsigned long long>(via_gw.host_events_sent),
                static_cast<double>(via_gw.host_bytes_sent) / 1024.0,
                static_cast<double>(direct.host_events_sent) /
                    static_cast<double>(via_gw.host_events_sent));
  }
  std::printf("\nshape check: with the gateway the monitored host's "
              "transmissions are constant in the consumer count (the "
              "saving column ≈ N) — the §2.3 'impedance matching'.\n");
  return 0;
}
